"""Ablation: masking-window time dilation tracks the hazard mass."""

from conftest import emit

from repro.harness.registry import get_experiment


def test_ablation_dilation(benchmark):
    experiment = get_experiment("ablation.dilation")
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    emit(result)
    avfs = [float(c) for c in result.tables[0].column("AVF")]
    errors = [
        abs(float(c.strip("%+-"))) / 100
        for c in result.tables[0].column("AVF-step error")
    ]
    assert max(avfs) - min(avfs) < 1e-9  # AVF is dilation-invariant
    assert errors[-1] > errors[0]  # error follows the dilated mass
