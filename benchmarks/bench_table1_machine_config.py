"""Table 1: base machine configuration + simulator behaviour."""

from conftest import emit

from repro.harness.registry import get_experiment


def test_table1_machine_config(benchmark):
    experiment = get_experiment("table1")
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    emit(result)
    assert len(result.tables[0]) >= 17  # every Table-1 row present
