"""Figure 3: AVF-step error for the analytical busy/idle loop.

Paper: errors negligible at the baseline rate, significant at 3x/5x
rates with multi-day loops (the curves grow with L and the rate scale).
"""

from conftest import BENCH_TRIALS, emit

from repro.harness.registry import get_experiment


def test_fig3_avf_analytical(benchmark):
    experiment = get_experiment("fig3")
    result = benchmark.pedantic(
        lambda: experiment.run(trials=BENCH_TRIALS),
        rounds=1,
        iterations=1,
    )
    emit(result)
    errors = [float(c.strip("%+")) / 100 for c in
              result.tables[0].column("rel. error")]
    # Shape assertions: error grows along each curve and with the scale.
    assert errors[-1] > errors[0]
    assert max(errors) > 0.15  # 5x, 16-day loop is deep double digits
    assert min(errors) < 0.005  # 1x, 1-day loop is negligible
