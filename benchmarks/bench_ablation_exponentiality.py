"""Ablation: masked-TTF departure from exponential (why SOFR breaks)."""

from conftest import BENCH_TRIALS, emit

from repro.harness.registry import get_experiment


def test_ablation_exponentiality(benchmark):
    experiment = get_experiment("ablation.exponentiality")
    result = benchmark.pedantic(
        lambda: experiment.run(trials=BENCH_TRIALS),
        rounds=1,
        iterations=1,
    )
    emit(result)
    verdicts = result.tables[0].column("looks exponential")
    # Small hazard mass: exponential; large: decisively not.
    assert verdicts[0] == "yes"
    assert verdicts[-1] == "no"
