"""Section 5.1: AVF+SOFR on a modern uniprocessor running SPEC.

Paper: < 0.5% discrepancy for all four components and every benchmark;
the processor-level SOFR MTTF matches as well.
"""

from conftest import BENCH_TRIALS, emit

from repro.harness.registry import get_experiment


def test_sec51_uniprocessor_spec(benchmark):
    experiment = get_experiment("sec5.1")
    result = benchmark.pedantic(
        lambda: experiment.run(trials=BENCH_TRIALS),
        rounds=1,
        iterations=1,
    )
    emit(result)
    component_errors = [
        abs(float(c.strip("%+-"))) / 100
        for c in result.tables[0].column("AVF-step error")
    ]
    sofr_errors = [
        abs(float(c.strip("%+-"))) / 100
        for c in result.tables[1].column("error")
    ]
    assert max(component_errors) < 0.005  # the paper's 0.5% bound
    assert max(sofr_errors) < 0.005
