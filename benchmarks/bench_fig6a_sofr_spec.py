"""Figure 6(a): SOFR-step error for SPEC workloads across C and N x S.

Paper: accurate for small systems (C = 2 or 8) at every N x S studied;
significant errors only once C >= 5000 *and* N x S is very large
(baseline scaled ~2000x on 1e9-bit processors).
"""

from conftest import BENCH_TRIALS, emit

from repro.harness.registry import get_experiment


def test_fig6a_sofr_spec(benchmark):
    experiment = get_experiment("fig6a")
    result = benchmark.pedantic(
        lambda: experiment.run(trials=BENCH_TRIALS),
        rounds=1,
        iterations=1,
    )
    emit(result)
    table = result.tables[0]
    errors = [
        float(c.strip("%").replace("+", "")) / 100
        for c in table.column("error")
    ]
    counts = [int(c) for c in table.column("C")]
    small_c = [abs(e) for e, c in zip(errors, counts) if c <= 8]
    large_c = [abs(e) for e, c in zip(errors, counts) if c >= 5000]
    assert max(small_c) < 0.01  # SOFR fine for small clusters
    assert max(large_c) > max(small_c)  # breakdown needs large C
