"""Figure 6(b): SOFR-step error for synthesized workloads.

Paper (N x S = 1e8): day 11% at C=5000 and 50% at C=50000; week 32% and
80%; combined smaller but still significant. We reproduce the structure
under two loop-phase conventions (see the experiment notes): errors are
negligible for C <= 8, break by tens of percent for C >= 5000, grow
with C, and order week > day > combined in the unsaturated regime.
"""

from conftest import BENCH_TRIALS, emit

from repro.harness.registry import get_experiment


def test_fig6b_sofr_synth(benchmark):
    experiment = get_experiment("fig6b")
    result = benchmark.pedantic(
        lambda: experiment.run(trials=BENCH_TRIALS),
        rounds=1,
        iterations=1,
    )
    emit(result)
    table = result.tables[0]
    counts = [int(c) for c in table.column("C")]
    workloads = table.column("workload")
    n_times_s = [float(c) for c in table.column("N x S")]
    rand_errors = [
        abs(float(c.strip("%").replace("+", ""))) / 100
        for c in table.column("error (random phase)")
    ]
    zero_errors = [
        abs(float(c.strip("%").replace("+", ""))) / 100
        for c in table.column("error (zero phase)")
    ]
    # The paper's quoted regime (N x S = 1e8): small clusters accurate
    # under either convention.
    for errs in (rand_errors, zero_errors):
        small = [
            e
            for e, c, ns in zip(errs, counts, n_times_s)
            if c <= 8 and ns <= 1e8
        ]
        assert max(small) < 0.05
    # Large clusters break by tens of percent.
    big = [e for e, c in zip(rand_errors, counts) if c >= 5000]
    assert max(big) > 0.3
    # week > day > combined at the paper's key point (C=5000, 1e8).
    keyed = {
        (w, c, ns): e
        for w, c, ns, e in zip(workloads, counts, n_times_s, rand_errors)
    }
    assert keyed[("week", 5000, 1e8)] > keyed[("day", 5000, 1e8)]
    assert keyed[("combined", 5000, 1e8)] < keyed[("day", 5000, 1e8)]
