"""Ablation: the validity-aware hybrid methodology."""

from conftest import emit

from repro.harness.registry import get_experiment


def test_ablation_hybrid(benchmark):
    experiment = get_experiment("ablation.hybrid")
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    emit(result)
    hybrid_errors = [
        abs(float(c.strip("%+-"))) / 100
        for c in result.tables[0].column("hybrid error")
    ]
    plain_errors = [
        abs(float(c.strip("%+-"))) / 100
        for c in result.tables[0].column("AVF+SOFR error")
    ]
    assert max(hybrid_errors) < 0.01
    assert max(plain_errors) > 0.3  # blind AVF+SOFR fails the sweep
