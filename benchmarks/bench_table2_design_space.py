"""Table 2: the design-space grid."""

from conftest import emit

from repro.harness.registry import get_experiment


def test_table2_design_space(benchmark):
    experiment = get_experiment("table2")
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    emit(result)
    # 5 workload families x 5 N x 5 S x 5 C = 625 points.
    assert "625" in result.headline
