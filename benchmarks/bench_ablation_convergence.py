"""Ablation: Monte-Carlo trial-count convergence (1/sqrt(n) law)."""

from conftest import BENCH_TRIALS, emit

from repro.harness.registry import get_experiment


def test_ablation_convergence(benchmark):
    experiment = get_experiment("ablation.convergence")
    result = benchmark.pedantic(
        lambda: experiment.run(trials=BENCH_TRIALS),
        rounds=1,
        iterations=1,
    )
    emit(result)
    rel_ses = [
        abs(float(c.strip("%+-"))) / 100
        for c in result.tables[0].column("stderr/mean")
    ]
    assert rel_ses[0] > rel_ses[-1]  # stderr shrinks with trials
