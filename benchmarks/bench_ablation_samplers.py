"""Ablation: the paper's arrival sampler vs the fast inverse sampler."""

from conftest import BENCH_TRIALS, emit

from repro.harness.registry import get_experiment


def test_ablation_samplers(benchmark):
    experiment = get_experiment("ablation.samplers")
    result = benchmark.pedantic(
        lambda: experiment.run(trials=BENCH_TRIALS),
        rounds=1,
        iterations=1,
    )
    emit(result)
    sigmas = [
        float(c) for c in result.tables[0].column("difference (sigma)")
    ]
    assert max(sigmas) < 5.0  # statistically indistinguishable means
