"""Figure 4: SOFR error for the half-normal-square counter-example.

Paper: the error grows from 15% for two components to about 32% for 32
components.
"""

from conftest import BENCH_TRIALS, emit

from repro.harness.registry import get_experiment


def test_fig4_sofr_halfnormal(benchmark):
    experiment = get_experiment("fig4")
    result = benchmark.pedantic(
        lambda: experiment.run(trials=BENCH_TRIALS),
        rounds=1,
        iterations=1,
    )
    emit(result)
    errors = [abs(float(c.strip("%+-"))) / 100 for c in
              result.tables[0].column("rel. error")]
    assert 0.13 < errors[0] < 0.17  # ~15% at N=2
    assert 0.30 < errors[-1] < 0.37  # ~32% at N=32
    assert all(a < b for a, b in zip(errors, errors[1:]))
