"""Figure 5: AVF-step error for day/week/combined across N x S.

Paper: significant errors (up to ~90%) once N x S >= 1e9; both signs
occur, so AVF may over- or under-estimate the MTTF.
"""

from conftest import BENCH_TRIALS, emit

from repro.harness.registry import get_experiment


def test_fig5_avf_design_space(benchmark):
    experiment = get_experiment("fig5")
    result = benchmark.pedantic(
        lambda: experiment.run(trials=BENCH_TRIALS),
        rounds=1,
        iterations=1,
    )
    emit(result)
    errors = [
        float(c.strip("%").replace("+", "")) / 100
        for c in result.tables[0].column("error")
    ]
    # Shape: errors at the small-N*S end are negligible, the large end
    # reaches tens of percent, and both signs occur (Section 5.2).
    assert min(abs(e) for e in errors) < 0.01
    assert max(abs(e) for e in errors) > 0.3
    assert any(e > 0 for e in errors) and any(e < 0 for e in errors)
