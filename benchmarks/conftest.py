"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` regenerates one paper artifact through
pytest-benchmark. Trials and SPEC window sizes default to fast settings;
set ``REPRO_MC_TRIALS`` / ``REPRO_SPEC_INSTRUCTIONS`` for paper-scale
runs. Every benchmark prints the regenerated table so ``--benchmark-only
-s`` output doubles as the artifact log.
"""

from __future__ import annotations

import os

import pytest

#: Trials for Monte-Carlo-backed benchmarks (paper: 1,000,000).
BENCH_TRIALS = int(os.environ.get("REPRO_MC_TRIALS", "50000"))


@pytest.fixture(scope="session")
def bench_trials() -> int:
    return BENCH_TRIALS


def emit(result) -> None:
    """Print an experiment result into the bench log."""
    print()
    print(result.render())
