"""Timing benchmark runner: the repository's performance trajectory.

Times a representative slice of the estimation engine — serial vs
fanned-out sweeps, fixed-count vs adaptive Monte Carlo, compiled
sampling kernels vs the legacy sampler, cold vs warm cache — and
writes the measurements to ``BENCH_<rev>.json`` so the
perf impact of engine changes is a diffable artifact, not an anecdote::

    PYTHONPATH=src python benchmarks/run_benchmarks.py
    PYTHONPATH=src python benchmarks/run_benchmarks.py \\
        --output-dir benchmarks --trials 100000 --repeat 3

Each case records best-of-``--repeat`` wall time plus enough metadata
(trials, chunking, workers, executor, point count, reference trial
counts for adaptive runs) to interpret a regression. Defaults are sized
to finish in well under a minute; raise ``--trials`` for paper-scale
numbers.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core import Component, MonteCarloConfig, StoppingRule, SystemModel
from repro.errors import ConfigurationError
from repro.masking import busy_idle_profile
from repro.methods import (
    BudgetLedger,
    ComponentCache,
    DiskCache,
    LedgerState,
    ShardDeparted,
    evaluate_design_space,
    merge_result_sets,
)
from repro.units import SECONDS_PER_DAY


def repo_revision() -> str:
    """Short git revision, or 'worktree' outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=10,
        )
    except OSError:
        return "worktree"
    return out.stdout.strip() if out.returncode == 0 else "worktree"


def _cluster_space(points: int):
    profile = busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY)
    rate = 2.0 / SECONDS_PER_DAY
    counts = [2, 8, 100, 5000, 50000]
    return [
        (
            f"day/C={counts[i % len(counts)]}/v={i}",
            SystemModel(
                [
                    Component(
                        "node",
                        rate * (1.0 + 0.01 * i),
                        profile,
                        multiplicity=counts[i % len(counts)],
                    )
                ]
            ),
        )
        for i in range(points)
    ]


def _nested_space(points: int):
    """Nested-hazard grid: a day cycle nested inside a week cycle.

    The compiled-kernel layer exists for exactly this shape: every
    legacy chunk task rebuilds the combined ``NestedHazard`` from the
    component wire forms and walks it with per-call ``np.unique``
    segment scans, while a compiled plan flattens the whole profile
    into dense arrays once per design point and ships by fingerprint.
    """
    from repro.workloads.longrun import (
        combined_workload,
        day_workload,
        week_workload,
    )

    space = []
    for i in range(points):
        workload = combined_workload(day_workload(0.5), week_workload(5.0))
        space.append(
            (
                f"nested/day-in-week/v={i}",
                SystemModel(
                    [
                        Component("core", 1e-6 * (1.0 + 0.01 * i), workload),
                        Component("io", 5e-7 * (1.0 + 0.01 * i), workload),
                    ]
                ),
            )
        )
    return space


def _timed(fn, repeat: int) -> tuple[float, object]:
    """Best-of-``repeat`` wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def benchmark_cases(trials: int, points: int, workers: int):
    """(name, metadata, thunk) for every timed case."""
    space = _cluster_space(points)
    fixed = MonteCarloConfig(trials=trials, seed=7, chunks=8)
    adaptive = MonteCarloConfig(
        trials=trials,
        seed=7,
        chunks=8,
        stopping=StoppingRule(target_rel_stderr=0.02),
    )
    run = lambda **kw: evaluate_design_space(
        space, methods=["sofr_only", "first_principles"], **kw
    )
    cases = [
        (
            "sweep_serial_fixed",
            {"trials": trials, "chunks": 8, "workers": 1,
             "executor": "thread"},
            lambda: run(mc_config=fixed, cache=False),
        ),
        (
            "sweep_threads_fixed",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "thread"},
            lambda: run(mc_config=fixed, workers=workers, cache=False),
        ),
        (
            "sweep_process_streaming_fixed",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "process"},
            lambda: run(
                mc_config=fixed, workers=workers, executor="process",
                cache=False,
            ),
        ),
        (
            "sweep_serial_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": 1,
             "executor": "thread", "target_rel_stderr": 0.02},
            lambda: run(mc_config=adaptive, cache=False),
        ),
        (
            "sweep_process_streaming_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "process", "target_rel_stderr": 0.02},
            lambda: run(
                mc_config=adaptive, workers=workers, executor="process",
                cache=False,
            ),
        ),
        # Pipelined-vs-phased. Like-for-like for the method-pipelining
        # claim is the process pair (sweep_process_streaming_adaptive
        # vs sweep_process_pipelined_adaptive: both stream reference
        # chunks, only the method schedule differs). The thread pair
        # additionally buys per-point chunk fan-out — the classic
        # thread path runs each point's whole adaptive plan serially
        # inside one task — so its delta conflates the two effects;
        # read it as "scheduler vs classic thread path". The
        # reallocating case also spends freed early-stop budget on the
        # stragglers (its reference_trials metadata shows where the
        # budget went).
        (
            "sweep_threads_phased_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "thread", "target_rel_stderr": 0.02,
             "pipeline_methods": False},
            lambda: run(mc_config=adaptive, workers=workers, cache=False),
        ),
        (
            "sweep_threads_pipelined_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "thread", "target_rel_stderr": 0.02,
             "pipeline_methods": True},
            lambda: run(
                mc_config=adaptive, workers=workers, cache=False,
                pipeline_methods=True,
            ),
        ),
        (
            "sweep_process_pipelined_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "process", "target_rel_stderr": 0.02,
             "pipeline_methods": True},
            lambda: run(
                mc_config=adaptive, workers=workers, executor="process",
                cache=False, pipeline_methods=True,
            ),
        ),
        (
            "sweep_threads_pipelined_realloc_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "thread", "target_rel_stderr": 0.02,
             "pipeline_methods": True, "reallocate_budget": True},
            lambda: run(
                mc_config=adaptive, workers=workers, cache=False,
                pipeline_methods=True, reallocate_budget=True,
            ),
        ),
    ]
    return cases


def kernel_cases(trials: int, workers: int, repeat: int):
    """Compiled sampling kernels vs the legacy object-graph sampler (PR 7).

    Three measurements, all on nested-hazard points (the shape the
    compiled layer targets) and all bit-identical across kernels by
    construction, so every delta is pure overhead:

    * ``kernel_nested_chunk_compute_*`` — one paper-scale chunk
      (``trials``/8 draws) sampled in-process against a hydrated plan
      vs the legacy sampler. The legacy sampler is already vectorized
      over trials, so the compiled plan's compute win is confined to
      the intensity rebuild and the ``np.unique`` segment scans it
      deletes.
    * ``kernel_dispatch_marginal_*`` — marginal wall-clock per extra
      chunk through the streaming process engine, as the difference
      quotient between a 256-chunk and a 16-chunk run of the same
      40k-trial sweep (which cancels pool startup). This is the
      regime batched plan dispatch targets: the legacy path ships one
      pickled-system task per chunk, the plan path ships
      fingerprint-keyed batches.
    * ``kernel_nested_sweep_*`` — the end-to-end nested sweep at
      ``trials``, serial vs streaming-process, both kernels. On a
      single-CPU host the process rows record what fan-out actually
      costs there; read them next to the serial rows, not as a win.

    A final ``kernel_numba_availability`` record documents whether the
    optional JIT backend could run at all on this host — when numba is
    absent the fused-loop headroom simply was not measured, rather
    than silently standing in for the NumPy numbers.
    """
    import dataclasses

    from repro.core import kernel as _kernel
    from repro.core.montecarlo import (
        adaptive_chunk_configs,
        system_chunk_moments,
    )

    records = []
    space = _nested_space(2)
    _, system = space[0]

    # Per-chunk sampling compute at the paper-scale chunk size.
    chunk = adaptive_chunk_configs(
        MonteCarloConfig(trials=trials, seed=7, chunks=8)
    )[0]
    plan = _kernel.plan_for_system(system)
    compute_seconds = {}
    for kernel_name, fn in (
        (
            "legacy",
            lambda: system_chunk_moments(
                system, dataclasses.replace(chunk, kernel="legacy")
            ),
        ),
        (
            "numpy",
            lambda: plan.chunk_moments(
                dataclasses.replace(chunk, kernel="numpy")
            ),
        ),
    ):
        fn()  # hydrate the plan and warm the allocator before timing
        seconds, _ = _timed(fn, max(repeat, 3))
        compute_seconds[kernel_name] = seconds
        record = {
            "name": f"kernel_nested_chunk_compute_{kernel_name}",
            "seconds": round(seconds, 5),
            "kernel": kernel_name,
            "chunk_trials": chunk.trials,
            "trials_per_second": round(chunk.trials / seconds),
        }
        if kernel_name != "legacy":
            record["speedup_vs_legacy"] = round(
                compute_seconds["legacy"] / seconds, 2
            )
        records.append(record)

    def sweep_seconds(kernel_name, chunks, sweep_trials, n_workers,
                      executor):
        mc = MonteCarloConfig(
            trials=sweep_trials, seed=7, chunks=chunks, kernel=kernel_name
        )
        seconds, _ = _timed(
            lambda: evaluate_design_space(
                space,
                methods=["sofr_only", "first_principles"],
                mc_config=mc,
                workers=n_workers,
                executor=executor,
                cache=False,
            ),
            repeat,
        )
        return seconds

    # Marginal per-chunk dispatch cost through the process engine.
    lo_chunks, hi_chunks, dispatch_trials = 16, 256, 40_000
    marginal = {}
    for kernel_name in ("legacy", "numpy"):
        lo = sweep_seconds(
            kernel_name, lo_chunks, dispatch_trials, workers, "process"
        )
        hi = sweep_seconds(
            kernel_name, hi_chunks, dispatch_trials, workers, "process"
        )
        per_chunk = (hi - lo) / ((hi_chunks - lo_chunks) * len(space))
        marginal[kernel_name] = per_chunk
        record = {
            "name": f"kernel_dispatch_marginal_{kernel_name}",
            "seconds": round(hi, 4),
            "kernel": kernel_name,
            "trials": dispatch_trials,
            "chunks_lo": lo_chunks,
            "chunks_hi": hi_chunks,
            "workers": workers,
            "executor": "process",
            "marginal_ms_per_chunk": round(per_chunk * 1000, 3),
        }
        if kernel_name != "legacy":
            record["speedup_vs_legacy"] = round(
                marginal["legacy"] / per_chunk, 2
            )
        records.append(record)

    # End-to-end nested sweeps at the requested scale.
    serial_seconds = {}
    for name, kernel_name, n_workers, executor in (
        ("kernel_nested_sweep_serial_legacy", "legacy", 1, "thread"),
        ("kernel_nested_sweep_serial_numpy", "numpy", 1, "thread"),
        ("kernel_nested_sweep_process_legacy", "legacy", workers,
         "process"),
        ("kernel_nested_sweep_process_numpy", "numpy", workers,
         "process"),
    ):
        seconds = sweep_seconds(
            kernel_name, 8, trials, n_workers, executor
        )
        if executor == "thread":
            serial_seconds[kernel_name] = seconds
        record = {
            "name": name,
            "seconds": round(seconds, 4),
            "kernel": kernel_name,
            "trials": trials,
            "chunks": 8,
            "workers": n_workers,
            "executor": executor,
        }
        if executor == "process":
            record["vs_serial_same_kernel"] = round(
                serial_seconds[kernel_name] / seconds, 2
            )
        records.append(record)

    records.append(
        {
            "name": "kernel_numba_availability",
            "seconds": 0.0,
            "numba_available": "numba" in _kernel.available_kernels(),
            "available_kernels": list(_kernel.available_kernels()),
        }
    )
    return records


def fleet_cases(trials: int, points: int, shards: int = 2):
    """Ledger-coordinated vs independent co-running shards (PR 5).

    Both variants run the same adaptive sweep as ``shards`` co-running
    reallocating shards (threads standing in for machines); only the
    cross-shard ledger differs. The grid is deliberately *asymmetric*:
    exactly one hard point (C=2, the largest MTTF) at global index 0,
    so it lands on shard 0 while every other shard's early stoppers
    free budget that shard-local re-allocation can only strand. The
    tight absolute half-width target keeps the straggler hungry past
    its own shard's freed budget — the regime where coordination
    matters. Each case records total trials spent, wall-clock, and the
    worst point's achieved precision, so the artifact shows what the
    fleet bought: the coordinated run converts stranded budget into
    precision at the fleet's worst point.
    """
    import threading

    profile = busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY)
    rate = 2.0 / SECONDS_PER_DAY
    easy_counts = (100, 5000, 50000, 8, 1000)
    counts = [2] + [
        easy_counts[i % len(easy_counts)] for i in range(points - 1)
    ]
    space = [
        (
            f"day/C={count}/v={i}",
            SystemModel(
                [
                    Component(
                        "node",
                        rate * (1.0 + 0.01 * i),
                        profile,
                        multiplicity=count,
                    )
                ]
            ),
        )
        for i, count in enumerate(counts)
    ]
    mc = MonteCarloConfig(
        trials=trials,
        seed=7,
        chunks=8,
        stopping=StoppingRule(target_ci_halfwidth=100.0),
    )

    def run_shards(ledger_dir: str | None):
        results = [None] * shards

        def one(index):
            ledger = None
            if ledger_dir is not None:
                ledger = BudgetLedger(
                    Path(ledger_dir) / "bench.ledger",
                    shard=(index, shards),
                    poll_interval=0.01,
                    timeout=300.0,
                )
            results[index] = evaluate_design_space(
                space,
                methods=["first_principles"],
                mc_config=mc,
                shard=(index, shards),
                workers=2,
                pipeline_methods=True,
                reallocate_budget=True,
                cache=False,
                budget_ledger=ledger,
            )

        threads = [
            threading.Thread(target=one, args=(index,))
            for index in range(shards)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - started
        return seconds, merge_result_sets(results)

    cases = []
    for name, ledgered in (
        ("xshard_fleet_independent", False),
        ("xshard_fleet_ledger", True),
    ):
        if ledgered:
            with tempfile.TemporaryDirectory(
                prefix="bench-ledger-"
            ) as ledger_dir:
                seconds, merged = run_shards(ledger_dir)
                totals = LedgerState.scan(
                    Path(ledger_dir) / "bench.ledger", shards
                ).totals()
        else:
            seconds, merged = run_shards(None)
            totals = None
        halfwidths = [
            mc.stopping.z * c.reference.std_error_seconds
            for c in merged
        ]
        record = {
            "name": name,
            "seconds": round(seconds, 4),
            "trials": trials,
            "chunks": 8,
            "shards": shards,
            "workers": 2,
            "executor": "thread",
            "target_ci_halfwidth": mc.stopping.target_ci_halfwidth,
            "total_reference_trials": sum(
                merged.reference_trials().values()
            ),
            "worst_ci_halfwidth_seconds": round(max(halfwidths), 2),
        }
        if totals is not None:
            record["ledger"] = {
                "freed_trials": totals["freed_trials"],
                "claimed_trials": totals["claimed_trials"],
                "rounds": totals["rounds"],
            }
        cases.append(record)
    return cases


def elastic_cases(trials: int, points: int, shards: int = 3):
    """Fixed membership vs kill+rejoin on one ledger fleet (PR 10).

    Three fleets over the same asymmetric grid — one straggler per
    slot, so every member stays active across grant rounds:

    * ``elastic_fleet_fixed`` — plain PR-5 fleet, no lease: the
      baseline the membership machinery must not tax.
    * ``elastic_fleet_leased`` — same fixed fleet with heartbeats and
      lease checks on: the record's ``membership_overhead`` ratio is
      the standing cost of failure detection.
    * ``elastic_fleet_kill_adopt`` — one member departs before its
      first grant round (the cooperative stand-in for a kill: the
      ledger trail and the recovery path are identical) and a survivor
      adopts its points; the record carries the epoch trail and the
      trials the adoption recomputed, the real price of elasticity.
    * ``elastic_fleet_kill_rejoin`` — same kill, but a replacement
      takes the slot over mid-run (the ``--join`` path) as soon as the
      depart record lands.

    All three merges are asserted byte-identical — elasticity may cost
    wall-clock, never bits.
    """
    import threading

    profile = busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY)
    rate = 2.0 / SECONDS_PER_DAY
    easy_counts = (100, 5000, 50000, 1000)
    counts = [2, 3, 4] + [
        easy_counts[i % len(easy_counts)] for i in range(max(points, 4) - 3)
    ]
    space = [
        (
            f"day/C={count}/v={i}",
            SystemModel(
                [
                    Component(
                        "node",
                        rate * (1.0 + 0.01 * i),
                        profile,
                        multiplicity=count,
                    )
                ]
            ),
        )
        for i, count in enumerate(counts)
    ]
    mc = MonteCarloConfig(
        trials=trials,
        seed=7,
        chunks=8,
        stopping=StoppingRule(target_ci_halfwidth=100.0),
    )

    def member(ledger_path, slot, results, *, lease, leave_after=None,
               takeover=False):
        ledger = BudgetLedger(
            ledger_path,
            shard=(slot, shards),
            poll_interval=0.01,
            timeout=300.0,
            lease=lease,
            leave_after=leave_after,
            takeover=takeover,
        )
        try:
            results[slot] = evaluate_design_space(
                space,
                methods=["first_principles"],
                mc_config=mc,
                shard=(slot, shards),
                workers=2,
                pipeline_methods=True,
                reallocate_budget=True,
                cache=False,
                budget_ledger=ledger,
            )
        except ShardDeparted:
            pass
        except ConfigurationError:
            if not takeover:
                raise
            # The joiner raced an adopter that already finished the
            # slot (and the run): a refused join of a finished run is
            # the documented loud behaviour, and the survivors'
            # adopted sets cover the slot in the merge.

    def run_fleet(ledger_dir, *, lease, mode=None):
        ledger_path = Path(ledger_dir) / "bench.ledger"
        results = [None] * shards
        threads = [
            threading.Thread(
                target=member,
                args=(ledger_path, slot, results),
                kwargs={
                    "lease": lease,
                    "leave_after": (
                        0 if mode and slot == shards - 1 else None
                    ),
                },
            )
            for slot in range(shards)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        if mode == "rejoin":
            # A replacement joins the running fleet once the departed
            # slot is on the ledger (the --join path).
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                # depart_event, not departed(): an adopter's takeover
                # handle re-joins the slot, flipping departed() back.
                if LedgerState.scan(ledger_path, shards).depart_event(
                    shards - 1
                ):
                    break
                time.sleep(0.02)
            joiner_results = [None] * shards
            joiner = threading.Thread(
                target=member,
                args=(ledger_path, shards - 1, joiner_results),
                kwargs={"lease": lease, "takeover": True},
            )
            joiner.start()
            joiner.join()
            results[shards - 1] = joiner_results[shards - 1]
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - started
        merged = merge_result_sets([r for r in results if r is not None])
        state = LedgerState.scan(ledger_path, shards)
        return seconds, merged, results, state

    cases = []
    merges = {}
    for name, lease, mode in (
        ("elastic_fleet_fixed", None, None),
        ("elastic_fleet_leased", 5.0, None),
        ("elastic_fleet_kill_adopt", 2.0, "adopt"),
        ("elastic_fleet_kill_rejoin", 2.0, "rejoin"),
    ):
        with tempfile.TemporaryDirectory(
            prefix="bench-elastic-"
        ) as ledger_dir:
            seconds, merged, results, state = run_fleet(
                ledger_dir, lease=lease, mode=mode
            )
        merges[name] = merged
        record = {
            "name": name,
            "seconds": round(seconds, 4),
            "trials": trials,
            "chunks": 8,
            "shards": shards,
            "workers": 2,
            "executor": "thread",
            "lease_seconds": lease,
            "target_ci_halfwidth": mc.stopping.target_ci_halfwidth,
            "total_reference_trials": sum(
                merged.reference_trials().values()
            ),
            "epoch": state.epoch(),
            "heartbeat_beats": sum(state.heartbeats.values()),
        }
        if mode:
            record["trials_recomputed_by_adoption"] = sum(
                sum(adopted.reference_trials().values())
                for result in results
                if result is not None
                for adopted in result.adopted
            )
            record["epoch_history"] = [
                list(event) for event in state.epoch_history()
            ]
        cases.append(record)
    fixed = merges["elastic_fleet_fixed"]
    for name, merged in merges.items():
        assert merged.comparisons == fixed.comparisons, (
            f"{name} changed the merged bits"
        )
    baseline = cases[0]["seconds"]
    for record in cases[1:]:
        record["overhead_vs_fixed"] = round(
            record["seconds"] / baseline, 3
        )
    return cases


def _result_hash(result_set) -> str:
    """Short content hash of a ResultSet's canonical JSON bytes."""
    canonical = json.dumps(result_set.to_dict(), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def executor_cases(trials: int, points: int, workers: int, repeat: int):
    """Backend shoot-out on one fixed sweep (the PR-8 executor layer).

    The same fixed-count sweep runs through every registered backend —
    serial inline, thread pool, process pool, and a two-worker loopback
    ``repro-worker`` fleet — and each record carries the canonical
    content hash of its ResultSet next to ``identical_to_serial``, so
    the artifact *proves* the determinism invariant on the hardware
    that produced the timings instead of asserting it. ``cpu_count``
    rides along in every record: on a 1-CPU host the fan-out rows
    document what parallelism costs there (the honest number), not a
    hoped-for speedup. The remote row measures loopback TCP framing +
    JSON codec overhead, i.e. the protocol tax in isolation from any
    real network.
    """
    from repro.methods import RemoteExecutor
    from repro.methods.worker import BackgroundWorker

    space = _cluster_space(points)
    mc = MonteCarloConfig(trials=trials, seed=7, chunks=8)
    cpus = os.cpu_count() or 1

    def run(n_workers, executor):
        return evaluate_design_space(
            space,
            methods=["sofr_only", "first_principles"],
            mc_config=mc,
            workers=n_workers,
            executor=executor,
            cache=False,
        )

    records = []
    serial_hash = None
    for name, n_workers, executor, label in (
        ("executors_serial", 1, "thread", "thread"),
        ("executors_thread", workers, "thread", "thread"),
        ("executors_process", workers, "process", "process"),
        ("executors_remote_2loopback", 2, None, "remote"),
    ):
        if label == "remote":
            with BackgroundWorker() as w1, BackgroundWorker() as w2:
                backend = RemoteExecutor([w1.address, w2.address])
                seconds, result_set = _timed(
                    lambda: run("auto", backend), repeat
                )
        else:
            seconds, result_set = _timed(
                lambda: run(n_workers, executor), repeat
            )
        digest = _result_hash(result_set)
        if serial_hash is None:
            serial_hash = digest
        records.append(
            {
                "name": name,
                "seconds": round(seconds, 4),
                "trials": trials,
                "chunks": 8,
                "workers": n_workers,
                "executor": label,
                "cpu_count": cpus,
                "result_hash": digest,
                "identical_to_serial": digest == serial_hash,
            }
        )
    return records


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list."""
    rank = max(
        0, min(len(sorted_values) - 1,
               round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[rank]


def service_load_cases(
    trials: int, jobs: int = 12, distinct: int = 4, workers: int = 2
):
    """Concurrent load against a live analysis server (the PR-6 layer).

    ``jobs`` clients submit simultaneously, but only ``distinct``
    fingerprints exist among them — the rest are duplicates the server
    must coalesce, which is the serving layer's whole value
    proposition: under bursty duplicate-heavy load (dashboards,
    retried CI jobs) the engine runs each unique spec once. The record
    carries submission throughput, the observed dedup hit rate, and
    p50/p95 submit-to-done latency so serving-layer changes carry
    numbers just like engine changes do.
    """
    import threading

    from repro.service import BackgroundServer, JobSpec, ServiceClient

    space = _cluster_space(2)
    specs = [
        JobSpec(
            space=tuple(space),
            methods=("sofr_only",),
            mc=MonteCarloConfig(
                trials=trials, seed=100 + (i % distinct), chunks=4
            ),
        )
        for i in range(jobs)
    ]
    latencies: list[float] = []
    coalesced_flags: list[bool] = []
    lock = threading.Lock()

    with BackgroundServer(workers=workers) as server:
        def one(spec):
            client = ServiceClient(server.address)
            started = time.perf_counter()
            submitted = client.submit(spec)
            client.wait(submitted["job"]["id"], timeout=600)
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                coalesced_flags.append(submitted["coalesced"])

        threads = [
            threading.Thread(target=one, args=(spec,)) for spec in specs
        ]
        wall_started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_started
        fleet = ServiceClient(server.address).fleet()

    latencies.sort()
    return [
        {
            "name": "service_load",
            "seconds": round(wall, 4),
            "trials": trials,
            "jobs": jobs,
            "distinct_specs": distinct,
            "service_workers": workers,
            "engine_workers": 1,
            "engine_executor": "thread",
            "submissions": fleet["submissions"],
            "coalesced": sum(coalesced_flags),
            "dedup_hit_rate": round(sum(coalesced_flags) / jobs, 4),
            "throughput_jobs_per_s": round(jobs / wall, 2),
            "p50_latency_s": round(_percentile(latencies, 0.50), 4),
            "p95_latency_s": round(_percentile(latencies, 0.95), 4),
        }
    ]


def lint_cases(repeat: int):
    """Wall time of the repro-lint gate over the real src/ tree.

    The lint-gate CI job pays this cost on every push; recording it
    here keeps "the linter is slow" a diffable number. The record also
    carries the scan size (files, rules, audited suppressions) so a
    timing shift can be attributed to tree growth vs rule cost, and
    asserts the tree is actually clean — a benchmark of a failing gate
    would time the wrong thing.
    """
    from repro.lint import available_rules, run_lint

    src = Path(__file__).resolve().parent.parent / "src"
    seconds, report = _timed(lambda: run_lint([src]), repeat)
    return [
        {
            "name": "lint_full_src_tree",
            "seconds": round(seconds, 4),
            "files_scanned": report.files_scanned,
            "rules_run": len(available_rules()),
            "findings": len(report.findings),
            "audited_suppressions": len(report.suppressed),
        }
    ]


#: Benchmark sections selectable via --scenario.
SCENARIOS = (
    "all", "engine", "kernel", "cache", "executors", "fleet",
    "elastic", "service_load", "lint",
)


def run_benchmarks(argv: list[str] | None = None) -> Path:
    parser = argparse.ArgumentParser(
        description="Time the estimation engine; write BENCH_<rev>.json"
    )
    parser.add_argument("--trials", type=int, default=40_000)
    parser.add_argument("--points", type=int, default=6)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument(
        "--scenario", choices=SCENARIOS, default="all",
        help="run one benchmark section instead of the full suite",
    )
    parser.add_argument(
        "--output-dir", default=".", help="where BENCH_<rev>.json lands"
    )
    parser.add_argument(
        "--rev",
        default=None,
        help="revision label for the artifact (default: git short rev; "
        "pass an explicit label when measuring an uncommitted tree)",
    )
    args = parser.parse_args(argv)

    def wants(section: str) -> bool:
        return args.scenario in ("all", section)

    rev = args.rev or repo_revision()
    results = []
    if wants("engine"):
        for name, metadata, thunk in benchmark_cases(
            args.trials, args.points, args.workers
        ):
            seconds, result_set = _timed(thunk, args.repeat)
            record = {
                "name": name, "seconds": round(seconds, 4), **metadata
            }
            if "adaptive" in name:
                trials_used = list(result_set.reference_trials().values())
                record["reference_trials"] = {
                    "min": min(trials_used),
                    "max": max(trials_used),
                    "total": sum(trials_used),
                }
            results.append(record)
            print(f"{name:44s} {seconds:8.3f}s")

    # Compiled sampling kernels vs the legacy sampler on nested points.
    if wants("kernel"):
        for record in kernel_cases(
            args.trials, args.workers, args.repeat
        ):
            results.append(record)
            extra = ""
            if "speedup_vs_legacy" in record:
                extra = f"  ({record['speedup_vs_legacy']}x vs legacy)"
            elif "vs_serial_same_kernel" in record:
                extra = (
                    f"  ({record['vs_serial_same_kernel']}x vs serial)"
                )
            elif "numba_available" in record:
                extra = f"  numba_available={record['numba_available']}"
            print(f"{record['name']:44s} {record['seconds']:8.3f}s{extra}")

    # Cold vs warm disk cache on the same sweep (one repeat each; the
    # warm number is the content-addressed lookup overhead).
    if wants("cache"):
        space = _cluster_space(args.points)
        mc = MonteCarloConfig(trials=args.trials, seed=7, chunks=8)
        with tempfile.TemporaryDirectory(
            prefix="bench-cache-"
        ) as cache_dir:
            for phase in ("cold", "warm"):
                cache = ComponentCache(disk=DiskCache(cache_dir))
                seconds, _ = _timed(
                    lambda: evaluate_design_space(
                        space, methods=["sofr_only"], mc_config=mc,
                        cache=cache,
                    ),
                    1,
                )
                results.append(
                    {
                        "name": f"sweep_disk_cache_{phase}",
                        "seconds": round(seconds, 4),
                        "trials": args.trials,
                        "chunks": 8,
                        "workers": 1,
                        "executor": "thread",
                        "entries": len(cache),
                    }
                )
                print(f"sweep_disk_cache_{phase:39s} {seconds:8.3f}s")

    # Backend shoot-out: every executor on one sweep, hashes attached.
    if wants("executors"):
        for record in executor_cases(
            args.trials, args.points, args.workers, args.repeat
        ):
            results.append(record)
            print(
                f"{record['name']:44s} {record['seconds']:8.3f}s  "
                f"identical_to_serial={record['identical_to_serial']}"
            )

    # Cross-shard fleet: ledger-coordinated vs independent shards.
    if wants("fleet"):
        for record in fleet_cases(args.trials, args.points):
            results.append(record)
            extra = ""
            if "ledger" in record:
                extra = (
                    f"  (claimed {record['ledger']['claimed_trials']} of "
                    f"{record['ledger']['freed_trials']} freed trials)"
                )
            print(
                f"{record['name']:44s} {record['seconds']:8.3f}s  "
                f"trials={record['total_reference_trials']} "
                f"worst_hw={record['worst_ci_halfwidth_seconds']}s{extra}"
            )

    # Elastic membership: fixed fleet vs leased fleet vs kill+rejoin.
    if wants("elastic"):
        for record in elastic_cases(args.trials, args.points):
            results.append(record)
            extra = ""
            if "overhead_vs_fixed" in record:
                extra = f"  ({record['overhead_vs_fixed']}x vs fixed)"
            if "trials_recomputed_by_adoption" in record:
                extra += (
                    f"  readopted="
                    f"{record['trials_recomputed_by_adoption']} trials"
                )
            print(
                f"{record['name']:44s} {record['seconds']:8.3f}s  "
                f"epoch={record['epoch']}{extra}"
            )

    # Serving layer: concurrent duplicate-heavy load over HTTP.
    if wants("service_load"):
        for record in service_load_cases(args.trials):
            results.append(record)
            print(
                f"{record['name']:44s} {record['seconds']:8.3f}s  "
                f"{record['throughput_jobs_per_s']} jobs/s  "
                f"dedup={record['coalesced']}/{record['jobs']}  "
                f"p50={record['p50_latency_s']}s "
                f"p95={record['p95_latency_s']}s"
            )

    # Static-analysis gate: repro-lint wall time over src/.
    if wants("lint"):
        for record in lint_cases(args.repeat):
            results.append(record)
            print(
                f"{record['name']:44s} {record['seconds']:8.3f}s  "
                f"files={record['files_scanned']} "
                f"findings={record['findings']} "
                f"suppressions={record['audited_suppressions']}"
            )

    payload = {
        "schema": "repro.bench/v1",
        "revision": rev,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "trials": args.trials,
            "points": args.points,
            "workers": args.workers,
            "repeat": args.repeat,
            "cpu_count": os.cpu_count() or 1,
        },
        "results": results,
    }
    output = Path(args.output_dir) / f"BENCH_{rev}.json"
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    return output


if __name__ == "__main__":
    sys.exit(0 if run_benchmarks() else 1)
