"""Timing benchmark runner: the repository's performance trajectory.

Times a representative slice of the estimation engine — serial vs
fanned-out sweeps, fixed-count vs adaptive Monte Carlo, cold vs warm
cache — and writes the measurements to ``BENCH_<rev>.json`` so the
perf impact of engine changes is a diffable artifact, not an anecdote::

    PYTHONPATH=src python benchmarks/run_benchmarks.py
    PYTHONPATH=src python benchmarks/run_benchmarks.py \\
        --output-dir benchmarks --trials 100000 --repeat 3

Each case records best-of-``--repeat`` wall time plus enough metadata
(trials, chunking, workers, executor, point count, reference trial
counts for adaptive runs) to interpret a regression. Defaults are sized
to finish in well under a minute; raise ``--trials`` for paper-scale
numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core import Component, MonteCarloConfig, StoppingRule, SystemModel
from repro.masking import busy_idle_profile
from repro.methods import DiskCache, ComponentCache, evaluate_design_space
from repro.units import SECONDS_PER_DAY


def repo_revision() -> str:
    """Short git revision, or 'worktree' outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=10,
        )
    except OSError:
        return "worktree"
    return out.stdout.strip() if out.returncode == 0 else "worktree"


def _cluster_space(points: int):
    profile = busy_idle_profile(0.5 * SECONDS_PER_DAY, SECONDS_PER_DAY)
    rate = 2.0 / SECONDS_PER_DAY
    counts = [2, 8, 100, 5000, 50000]
    return [
        (
            f"day/C={counts[i % len(counts)]}/v={i}",
            SystemModel(
                [
                    Component(
                        "node",
                        rate * (1.0 + 0.01 * i),
                        profile,
                        multiplicity=counts[i % len(counts)],
                    )
                ]
            ),
        )
        for i in range(points)
    ]


def _timed(fn, repeat: int) -> tuple[float, object]:
    """Best-of-``repeat`` wall time and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def benchmark_cases(trials: int, points: int, workers: int):
    """(name, metadata, thunk) for every timed case."""
    space = _cluster_space(points)
    fixed = MonteCarloConfig(trials=trials, seed=7, chunks=8)
    adaptive = MonteCarloConfig(
        trials=trials,
        seed=7,
        chunks=8,
        stopping=StoppingRule(target_rel_stderr=0.02),
    )
    run = lambda **kw: evaluate_design_space(
        space, methods=["sofr_only", "first_principles"], **kw
    )
    cases = [
        (
            "sweep_serial_fixed",
            {"trials": trials, "chunks": 8, "workers": 1,
             "executor": "thread"},
            lambda: run(mc_config=fixed, cache=False),
        ),
        (
            "sweep_threads_fixed",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "thread"},
            lambda: run(mc_config=fixed, workers=workers, cache=False),
        ),
        (
            "sweep_process_streaming_fixed",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "process"},
            lambda: run(
                mc_config=fixed, workers=workers, executor="process",
                cache=False,
            ),
        ),
        (
            "sweep_serial_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": 1,
             "executor": "thread", "target_rel_stderr": 0.02},
            lambda: run(mc_config=adaptive, cache=False),
        ),
        (
            "sweep_process_streaming_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "process", "target_rel_stderr": 0.02},
            lambda: run(
                mc_config=adaptive, workers=workers, executor="process",
                cache=False,
            ),
        ),
        # Pipelined-vs-phased. Like-for-like for the method-pipelining
        # claim is the process pair (sweep_process_streaming_adaptive
        # vs sweep_process_pipelined_adaptive: both stream reference
        # chunks, only the method schedule differs). The thread pair
        # additionally buys per-point chunk fan-out — the classic
        # thread path runs each point's whole adaptive plan serially
        # inside one task — so its delta conflates the two effects;
        # read it as "scheduler vs classic thread path". The
        # reallocating case also spends freed early-stop budget on the
        # stragglers (its reference_trials metadata shows where the
        # budget went).
        (
            "sweep_threads_phased_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "thread", "target_rel_stderr": 0.02,
             "pipeline_methods": False},
            lambda: run(mc_config=adaptive, workers=workers, cache=False),
        ),
        (
            "sweep_threads_pipelined_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "thread", "target_rel_stderr": 0.02,
             "pipeline_methods": True},
            lambda: run(
                mc_config=adaptive, workers=workers, cache=False,
                pipeline_methods=True,
            ),
        ),
        (
            "sweep_process_pipelined_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "process", "target_rel_stderr": 0.02,
             "pipeline_methods": True},
            lambda: run(
                mc_config=adaptive, workers=workers, executor="process",
                cache=False, pipeline_methods=True,
            ),
        ),
        (
            "sweep_threads_pipelined_realloc_adaptive_2pct",
            {"trials": trials, "chunks": 8, "workers": workers,
             "executor": "thread", "target_rel_stderr": 0.02,
             "pipeline_methods": True, "reallocate_budget": True},
            lambda: run(
                mc_config=adaptive, workers=workers, cache=False,
                pipeline_methods=True, reallocate_budget=True,
            ),
        ),
    ]
    return cases


def run_benchmarks(argv: list[str] | None = None) -> Path:
    parser = argparse.ArgumentParser(
        description="Time the estimation engine; write BENCH_<rev>.json"
    )
    parser.add_argument("--trials", type=int, default=40_000)
    parser.add_argument("--points", type=int, default=6)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument(
        "--output-dir", default=".", help="where BENCH_<rev>.json lands"
    )
    parser.add_argument(
        "--rev",
        default=None,
        help="revision label for the artifact (default: git short rev; "
        "pass an explicit label when measuring an uncommitted tree)",
    )
    args = parser.parse_args(argv)

    rev = args.rev or repo_revision()
    results = []
    for name, metadata, thunk in benchmark_cases(
        args.trials, args.points, args.workers
    ):
        seconds, result_set = _timed(thunk, args.repeat)
        record = {"name": name, "seconds": round(seconds, 4), **metadata}
        if "adaptive" in name:
            trials_used = list(result_set.reference_trials().values())
            record["reference_trials"] = {
                "min": min(trials_used),
                "max": max(trials_used),
                "total": sum(trials_used),
            }
        results.append(record)
        print(f"{name:44s} {seconds:8.3f}s")

    # Cold vs warm disk cache on the same sweep (one repeat each; the
    # warm number is the content-addressed lookup overhead).
    space = _cluster_space(args.points)
    mc = MonteCarloConfig(trials=args.trials, seed=7, chunks=8)
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as cache_dir:
        for phase in ("cold", "warm"):
            cache = ComponentCache(disk=DiskCache(cache_dir))
            seconds, _ = _timed(
                lambda: evaluate_design_space(
                    space, methods=["sofr_only"], mc_config=mc,
                    cache=cache,
                ),
                1,
            )
            results.append(
                {
                    "name": f"sweep_disk_cache_{phase}",
                    "seconds": round(seconds, 4),
                    "trials": args.trials,
                    "chunks": 8,
                    "entries": len(cache),
                }
            )
            print(f"sweep_disk_cache_{phase:39s} {seconds:8.3f}s")

    payload = {
        "schema": "repro.bench/v1",
        "revision": rev,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "trials": args.trials,
            "points": args.points,
            "workers": args.workers,
            "repeat": args.repeat,
        },
        "results": results,
    }
    output = Path(args.output_dir) / f"BENCH_{rev}.json"
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    return output


if __name__ == "__main__":
    sys.exit(0 if run_benchmarks() else 1)
