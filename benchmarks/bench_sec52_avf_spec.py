"""Section 5.2: the AVF step for SPEC across all N x S.

Paper: relative error < 0.5% for each SPEC benchmark, all N and S.
"""

from conftest import emit

from repro.harness.registry import get_experiment


def test_sec52_avf_spec(benchmark):
    experiment = get_experiment("sec5.2")
    result = benchmark.pedantic(
        lambda: experiment.run(), rounds=1, iterations=1
    )
    emit(result)
    errors = [
        abs(float(c.strip("%+-"))) / 100
        for c in result.tables[0].column("AVF-step error")
    ]
    assert max(errors) < 0.005
