"""Section 5.4: SoftArch across the design space.

Paper: SoftArch's MTTF error relative to Monte Carlo is < 1% for single
components and < 2% for full systems at every design point.
"""

from conftest import BENCH_TRIALS, emit

from repro.harness.registry import get_experiment


def test_sec54_softarch(benchmark):
    experiment = get_experiment("sec5.4")
    result = benchmark.pedantic(
        lambda: experiment.run(trials=BENCH_TRIALS),
        rounds=1,
        iterations=1,
    )
    emit(result)
    errors = [
        abs(float(c.strip("%").replace("+", ""))) / 100
        for c in result.tables[0].column("SoftArch vs exact")
    ]
    assert max(errors) < 0.01  # single-component bound from the paper
