"""Time and failure-rate unit conventions and conversions.

The library's internal convention is:

* time is measured in **seconds** (float),
* failure/error rates are measured in **errors per second** (float).

The soft-error literature, and the reproduced paper in particular, quotes
rates in FIT (failures per billion device-hours) and in errors/year. This
module holds the conversion helpers and the paper's named constants.

The paper equates ``0.001 FIT/bit`` with ``1e-8 errors/year/bit`` (a
rounding: 0.001 FIT = 8.76e-9 errors/year with an 8760-hour year). We keep
the paper's rounded per-year number as the baseline constant because every
figure in the paper is parameterised from it.
"""

from __future__ import annotations

from .errors import ConfigurationError

#: Hours in a (non-leap) year, the reliability-engineering convention.
HOURS_PER_YEAR = 8760.0

#: Seconds per hour.
SECONDS_PER_HOUR = 3600.0

#: Seconds per day.
SECONDS_PER_DAY = 86400.0

#: Seconds per week.
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

#: Seconds per (8760-hour) year.
SECONDS_PER_YEAR = HOURS_PER_YEAR * SECONDS_PER_HOUR

#: Device-hours per FIT: a FIT is one failure per 1e9 device-hours.
FIT_HOURS = 1.0e9

#: The paper's baseline terrestrial raw error rate per storage bit,
#: in errors/year ("about 1e-8 errors/year (0.001 FIT)", Section 4.2).
BASELINE_RATE_PER_BIT_YEAR = 1.0e-8

#: The same baseline expressed in errors/second (library-internal unit).
BASELINE_RATE_PER_BIT_SEC = BASELINE_RATE_PER_BIT_YEAR / SECONDS_PER_YEAR

#: The paper's base processor clock (Table 1): 2.0 GHz.
BASE_CLOCK_HZ = 2.0e9


def fit_to_rate_per_second(fit: float) -> float:
    """Convert a FIT value to a failure rate in failures/second."""
    if fit < 0:
        raise ConfigurationError(f"FIT value must be non-negative, got {fit}")
    return fit / (FIT_HOURS * SECONDS_PER_HOUR)


def rate_per_second_to_fit(rate: float) -> float:
    """Convert a failure rate in failures/second to FIT."""
    if rate < 0:
        raise ConfigurationError(f"rate must be non-negative, got {rate}")
    return rate * FIT_HOURS * SECONDS_PER_HOUR


def per_year_to_per_second(rate_per_year: float) -> float:
    """Convert a rate in errors/year to errors/second."""
    if rate_per_year < 0:
        raise ConfigurationError(
            f"rate must be non-negative, got {rate_per_year}"
        )
    return rate_per_year / SECONDS_PER_YEAR


def per_second_to_per_year(rate_per_second: float) -> float:
    """Convert a rate in errors/second to errors/year."""
    if rate_per_second < 0:
        raise ConfigurationError(
            f"rate must be non-negative, got {rate_per_second}"
        )
    return rate_per_second * SECONDS_PER_YEAR


def fit_to_per_year(fit: float) -> float:
    """Convert a FIT value to errors/year (8760-hour year)."""
    return fit_to_rate_per_second(fit) * SECONDS_PER_YEAR


def per_year_to_fit(rate_per_year: float) -> float:
    """Convert errors/year to FIT."""
    return rate_per_second_to_fit(per_year_to_per_second(rate_per_year))


def mttf_seconds_to_fit(mttf_seconds: float) -> float:
    """Convert an MTTF in seconds to FIT using ``FIT = 1e9 / MTTF_hours``.

    As the paper notes (Section 2.1), this equation embeds the assumption
    of an exponentially distributed time to failure. It is provided for
    reporting, not for reasoning.
    """
    if mttf_seconds <= 0:
        raise ConfigurationError(
            f"MTTF must be positive, got {mttf_seconds}"
        )
    return FIT_HOURS / (mttf_seconds / SECONDS_PER_HOUR)


def cycles_to_seconds(cycles: float, clock_hz: float = BASE_CLOCK_HZ) -> float:
    """Convert a cycle count at ``clock_hz`` to seconds."""
    if clock_hz <= 0:
        raise ConfigurationError(f"clock must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float = BASE_CLOCK_HZ) -> float:
    """Convert seconds to a cycle count at ``clock_hz``."""
    if clock_hz <= 0:
        raise ConfigurationError(f"clock must be positive, got {clock_hz}")
    return seconds * clock_hz


def days(n: float) -> float:
    """``n`` days in seconds; reads naturally at call sites (``days(16)``)."""
    return n * SECONDS_PER_DAY


def hours(n: float) -> float:
    """``n`` hours in seconds."""
    return n * SECONDS_PER_HOUR


def years(n: float) -> float:
    """``n`` (8760-hour) years in seconds."""
    return n * SECONDS_PER_YEAR
