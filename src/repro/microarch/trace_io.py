"""Instruction-trace serialisation.

Lets users persist synthesized traces or bring their own (e.g. converted
from a binary-instrumentation tool) into the simulator. The format is a
compressed ``.npz`` of parallel arrays — compact and loadable without
any custom parsing:

* ``op``        — int8 op-class codes (:class:`~repro.microarch.isa.OpClass`);
* ``dest``      — int16 destination register, -1 for none;
* ``srcs``      — int16 array of shape ``(n, 3)``, -1 padding;
* ``pc``        — int64 instruction addresses;
* ``mem_addr``  — int64 effective addresses, -1 for non-memory ops;
* ``taken``     — bool branch outcomes.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import TraceError
from .isa import InstructionRecord, OpClass

_FORMAT_VERSION = 1


def save_trace(trace: list[InstructionRecord], path: "str | Path") -> None:
    """Serialise a trace to a compressed ``.npz`` file."""
    if not trace:
        raise TraceError("refusing to save an empty trace")
    n = len(trace)
    op = np.empty(n, dtype=np.int8)
    dest = np.full(n, -1, dtype=np.int16)
    srcs = np.full((n, 3), -1, dtype=np.int16)
    pc = np.empty(n, dtype=np.int64)
    mem_addr = np.full(n, -1, dtype=np.int64)
    taken = np.zeros(n, dtype=bool)
    for i, record in enumerate(trace):
        op[i] = int(record.op)
        if record.dest is not None:
            dest[i] = record.dest
        for j, src in enumerate(record.srcs):
            srcs[i, j] = src
        pc[i] = record.pc
        if record.mem_addr is not None:
            mem_addr[i] = record.mem_addr
        taken[i] = record.taken
    np.savez_compressed(
        Path(path),
        version=np.asarray(_FORMAT_VERSION),
        op=op,
        dest=dest,
        srcs=srcs,
        pc=pc,
        mem_addr=mem_addr,
        taken=taken,
    )


def load_trace(path: "str | Path") -> list[InstructionRecord]:
    """Load a trace saved by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        try:
            version = int(data["version"])
            op = data["op"]
            dest = data["dest"]
            srcs = data["srcs"]
            pc = data["pc"]
            mem_addr = data["mem_addr"]
            taken = data["taken"]
        except KeyError as exc:
            raise TraceError(f"{path}: missing field {exc}") from exc
    if version != _FORMAT_VERSION:
        raise TraceError(
            f"{path}: unsupported trace format version {version}"
        )
    lengths = {arr.shape[0] for arr in (op, dest, srcs, pc, mem_addr, taken)}
    if len(lengths) != 1:
        raise TraceError(f"{path}: inconsistent array lengths {lengths}")
    trace: list[InstructionRecord] = []
    for i in range(op.shape[0]):
        sources = tuple(int(s) for s in srcs[i] if s >= 0)
        trace.append(
            InstructionRecord(
                op=OpClass(int(op[i])),
                dest=int(dest[i]) if dest[i] >= 0 else None,
                srcs=sources,
                pc=int(pc[i]),
                mem_addr=int(mem_addr[i]) if mem_addr[i] >= 0 else None,
                taken=bool(taken[i]),
            )
        )
    return trace
