"""Machine configuration (Table 1 of the paper).

:func:`MachineConfig.power4_like` reproduces the paper's base
configuration exactly; every field can be overridden for sensitivity
studies (the ablation benchmarks vary several).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError
from .isa import OpClass


@dataclass(frozen=True)
class FunctionalUnitSpec:
    """One functional-unit pool (e.g. the two integer units)."""

    name: str
    count: int
    pipelined: bool = True

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(
                f"{self.name}: need at least one unit, got {self.count}"
            )


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ConfigurationError(f"{self.name}: sizes must be positive")
        if self.associativity < 1:
            raise ConfigurationError(
                f"{self.name}: associativity must be >= 1"
            )
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ConfigurationError(
                f"{self.name}: size must be a multiple of "
                "line_bytes * associativity"
            )
        if self.latency < 0:
            raise ConfigurationError(f"{self.name}: latency must be >= 0")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class TlbSpec:
    """A fully-associative TLB."""

    name: str
    entries: int
    page_bytes: int = 4096
    miss_penalty: int = 30

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ConfigurationError(f"{self.name}: need >= 1 entry")
        if self.page_bytes <= 0:
            raise ConfigurationError(f"{self.name}: bad page size")
        if self.miss_penalty < 0:
            raise ConfigurationError(f"{self.name}: bad miss penalty")


@dataclass(frozen=True)
class MachineConfig:
    """The full machine description (defaults = the paper's Table 1)."""

    clock_hz: float = 2.0e9
    fetch_width: int = 8
    finish_width: int = 8
    dispatch_group_size: int = 5
    retire_groups_per_cycle: int = 1
    rob_entries: int = 150
    register_file_entries: int = 256
    int_register_entries: int = 80
    fp_register_entries: int = 72
    memory_queue_entries: int = 32
    issue_queue_entries: int = 64

    int_units: FunctionalUnitSpec = field(
        default_factory=lambda: FunctionalUnitSpec("int", 2)
    )
    fp_units: FunctionalUnitSpec = field(
        default_factory=lambda: FunctionalUnitSpec("fp", 2)
    )
    ls_units: FunctionalUnitSpec = field(
        default_factory=lambda: FunctionalUnitSpec("ls", 2)
    )
    br_units: FunctionalUnitSpec = field(
        default_factory=lambda: FunctionalUnitSpec("br", 1)
    )

    #: Execution latency per op class (Table 1: INT 1/4/35, FP 5 / 28 div).
    latencies: dict = field(
        default_factory=lambda: {
            OpClass.INT_ALU: 1,
            OpClass.INT_MUL: 4,
            OpClass.INT_DIV: 35,
            OpClass.FP_ADD: 5,
            OpClass.FP_MUL: 5,
            OpClass.FP_DIV: 28,
            OpClass.LOAD: 1,   # address generation; cache latency added
            OpClass.STORE: 1,
            OpClass.BRANCH: 1,
        }
    )
    #: Op classes that monopolise their unit for the whole latency.
    unpipelined_ops: frozenset = frozenset({OpClass.INT_DIV})

    l1d: CacheSpec = field(
        default_factory=lambda: CacheSpec("L1D", 32 * 1024, 2, 128, 1)
    )
    l1i: CacheSpec = field(
        default_factory=lambda: CacheSpec("L1I", 64 * 1024, 1, 128, 1)
    )
    l2: CacheSpec = field(
        default_factory=lambda: CacheSpec("L2", 1024 * 1024, 4, 128, 10)
    )
    memory_latency: int = 77
    itlb: TlbSpec = field(default_factory=lambda: TlbSpec("iTLB", 128))
    dtlb: TlbSpec = field(default_factory=lambda: TlbSpec("dTLB", 128))

    branch_predictor_entries: int = 4096
    mispredict_redirect_penalty: int = 3

    def __post_init__(self) -> None:
        if self.fetch_width < 1 or self.dispatch_group_size < 1:
            raise ConfigurationError("widths must be >= 1")
        if self.rob_entries < self.dispatch_group_size:
            raise ConfigurationError(
                "ROB must hold at least one dispatch group"
            )
        if self.register_file_entries < (
            self.int_register_entries + self.fp_register_entries
        ):
            raise ConfigurationError(
                "register file smaller than its int+fp partitions"
            )
        if self.memory_queue_entries < 1 or self.issue_queue_entries < 1:
            raise ConfigurationError("queues must have >= 1 entry")
        if self.memory_latency < 0 or self.mispredict_redirect_penalty < 0:
            raise ConfigurationError("latencies must be >= 0")
        missing = [op for op in OpClass if op not in self.latencies]
        if missing:
            raise ConfigurationError(f"latencies missing for {missing}")

    @classmethod
    def power4_like(cls, **overrides) -> "MachineConfig":
        """The paper's base configuration, with optional field overrides."""
        return replace(cls(), **overrides) if overrides else cls()

    def unit_pool(self, kind: str) -> FunctionalUnitSpec:
        """Look up a functional-unit pool by kind ('int'/'fp'/'ls'/'br')."""
        pools = {
            "int": self.int_units,
            "fp": self.fp_units,
            "ls": self.ls_units,
            "br": self.br_units,
        }
        if kind not in pools:
            raise ConfigurationError(f"unknown unit kind {kind!r}")
        return pools[kind]

    def latency_of(self, op: OpClass) -> int:
        return self.latencies[op]

    def table1_rows(self) -> list[tuple[str, str]]:
        """The Table-1 rows, for the table1 benchmark and docs."""
        return [
            ("Processor frequency", f"{self.clock_hz / 1e9:.1f} GHz"),
            ("Fetch/finish rate", f"{self.fetch_width} per cycle"),
            (
                "Retirement rate",
                f"{self.retire_groups_per_cycle} dispatch-group "
                f"(={self.dispatch_group_size}, max) per cycle",
            ),
            (
                "Functional units",
                f"{self.int_units.count} integer, {self.fp_units.count} FP, "
                f"{self.ls_units.count} load-store, "
                f"{self.br_units.count} branch",
            ),
            (
                "Integer FU latencies",
                f"{self.latencies[OpClass.INT_ALU]}/"
                f"{self.latencies[OpClass.INT_MUL]}/"
                f"{self.latencies[OpClass.INT_DIV]} add/multiply/divide",
            ),
            (
                "FP FU latencies",
                f"{self.latencies[OpClass.FP_ADD]} default, "
                f"{self.latencies[OpClass.FP_DIV]} divide (pipelined)",
            ),
            ("Reorder buffer size", f"{self.rob_entries} entries"),
            (
                "Register file size",
                f"{self.register_file_entries} entries "
                f"({self.int_register_entries} integer, "
                f"{self.fp_register_entries} FP, and various control)",
            ),
            ("Memory queue size", f"{self.memory_queue_entries} entries"),
            ("iTLB", f"{self.itlb.entries} entries"),
            ("dTLB", f"{self.dtlb.entries} entries"),
            (
                "L1 Dcache",
                f"{self.l1d.size_bytes // 1024}KB, {self.l1d.associativity}-way, "
                f"{self.l1d.line_bytes}-byte line",
            ),
            (
                "L1 Icache",
                f"{self.l1i.size_bytes // 1024}KB, {self.l1i.associativity}-way, "
                f"{self.l1i.line_bytes}-byte line",
            ),
            (
                "L2 (Unified)",
                f"{self.l2.size_bytes // (1024 * 1024)}MB, "
                f"{self.l2.associativity}-way, {self.l2.line_bytes}-byte line",
            ),
            ("L1 Latency", f"{self.l1d.latency} cycles"),
            ("L2 Latency", f"{self.l2.latency} cycles"),
            ("Main memory Latency", f"{self.memory_latency} cycles"),
        ]
