"""The out-of-order pipeline timing model.

A trace-driven scheduler in the Turandot tradition: it walks the dynamic
instruction stream once, in program order, computing for every
instruction the cycle of each pipeline event (fetch, dispatch, issue,
complete, retire) subject to the machine's structural and data
constraints:

* fetch bandwidth, I-cache/iTLB misses, branch-mispredict redirects;
* POWER4-style dispatch groups (up to 5 instructions, broken at
  branches), one group dispatched and one retired per cycle;
* reorder-buffer, issue-queue, and memory-queue occupancy;
* operand readiness through architectural register dependences;
* functional-unit pools (2 INT / 2 FP / 2 LS / 1 BR) with the paper's
  latencies; the integer divider is unpipelined;
* D-cache/dTLB hierarchy latencies for loads.

Two deliberate approximations versus an RTL-faithful core, both standard
for trace-driven timing models and both irrelevant to masking-trace
statistics: functional-unit slots are allocated in program order among
ready instructions (a younger instruction may still issue earlier if its
operands are ready earlier), and the issue-queue constraint uses FIFO
ordering. Wrong-path instructions after mispredicted branches are not
simulated; the redirect penalty models their cost (Turandot's own
default trace-driven mode does the same).

The scheduler's second product is the paper's masking trace: per-cycle
busy fractions for the unit pools, per-cycle dispatch (decode) activity,
and per-value register live intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from .branch import BimodalPredictor
from .caches import Cache, MemoryHierarchy, Tlb
from .config import MachineConfig
from .isa import NUM_ARCH_REGS, InstructionRecord, OpClass
from .stats import PipelineStats


@dataclass
class ScheduleResult:
    """Per-instruction event cycles plus activity records."""

    fetch: list[int]
    dispatch: list[int]
    issue: list[int]
    complete: list[int]
    retire: list[int]
    #: (start_cycle, end_cycle, pool) busy intervals per executed op.
    unit_intervals: dict = field(default_factory=dict)
    #: cycles in which at least one instruction was dispatched (decode busy).
    dispatch_cycles: list[int] = field(default_factory=list)
    #: per-value register live intervals: (reg, start_cycle, end_cycle).
    live_intervals: list[tuple[int, int, int]] = field(default_factory=list)
    stats: PipelineStats = field(default_factory=PipelineStats)

    @property
    def total_cycles(self) -> int:
        return self.retire[-1] + 1 if self.retire else 0


class _UnitPool:
    """Functional-unit instances with per-instance availability."""

    def __init__(self, name: str, count: int):
        self.name = name
        self.available = [0] * count
        self.busy_cycles = 0

    def allocate(self, ready: int, occupancy: int, blocking: int) -> int:
        """Issue an op that is ready at ``ready``.

        ``occupancy`` is how long the instance processes the op (for the
        busy mask); ``blocking`` is how long before the instance can
        accept another op (1 for pipelined, = occupancy for unpipelined).
        Returns the issue cycle.
        """
        best = min(range(len(self.available)), key=self.available.__getitem__)
        issue = max(ready, self.available[best])
        self.available[best] = issue + blocking
        self.busy_cycles += occupancy
        return issue


class PipelineModel:
    """One simulation run over one instruction trace."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.icache = Cache(config.l1i)
        self.dcache = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        self.itlb = Tlb(config.itlb)
        self.dtlb = Tlb(config.dtlb)
        self.imem = MemoryHierarchy(
            self.icache, self.l2, self.itlb, config.memory_latency
        )
        self.dmem = MemoryHierarchy(
            self.dcache, self.l2, self.dtlb, config.memory_latency
        )
        self.predictor = BimodalPredictor(config.branch_predictor_entries)

    def run(self, trace: list[InstructionRecord]) -> ScheduleResult:
        if not trace:
            raise SimulationError("cannot simulate an empty trace")
        cfg = self.config
        n = len(trace)

        fetch = [0] * n
        dispatch = [0] * n
        issue = [0] * n
        complete = [0] * n
        retire = [0] * n

        pools = {
            "int": _UnitPool("int", cfg.int_units.count),
            "fp": _UnitPool("fp", cfg.fp_units.count),
            "ls": _UnitPool("ls", cfg.ls_units.count),
            "br": _UnitPool("br", cfg.br_units.count),
        }
        unit_intervals: dict[str, list[tuple[int, int]]] = {
            name: [] for name in pools
        }

        # Architectural register ready times (cycle the value is usable).
        reg_ready = [0] * NUM_ARCH_REGS

        # Register-file liveness bookkeeping: per register, the cycle its
        # current value became available and the latest read of it so far.
        def_cycle = [-1] * NUM_ARCH_REGS
        last_read = [-1] * NUM_ARCH_REGS
        live_intervals: list[tuple[int, int, int]] = []

        # Memory-queue occupancy: release cycle of each memory op, FIFO.
        memop_release: list[int] = []

        # Finish-width limiting: completions per cycle.
        completions_in_cycle: dict[int, int] = {}

        stats = PipelineStats()
        fetch_line = None  # current I-cache line; refetch on change
        next_fetch_cycle = 0
        fetched_this_cycle = 0
        redirect_after: int | None = None  # front end blocked until here

        group_members: list[int] = []
        last_dispatch_cycle = -1
        last_retire_cycle = -1
        dispatch_cycles: list[int] = []

        line_shift = (cfg.l1i.line_bytes - 1).bit_length()

        def close_group() -> None:
            """Dispatch the pending group and compute its retirement."""
            nonlocal last_dispatch_cycle, last_retire_cycle, group_members
            if not group_members:
                return
            # Dispatch constraints: decode pipe after fetch, one group
            # per cycle, ROB / issue-queue / memory-queue occupancy.
            earliest = max(fetch[j] for j in group_members) + 1
            earliest = max(earliest, last_dispatch_cycle + 1)
            first = group_members[0]
            rob_blocker = first - cfg.rob_entries + len(group_members)
            if rob_blocker >= 0:
                earliest = max(earliest, retire[rob_blocker] + 1)
            iq_blocker = first - cfg.issue_queue_entries + len(group_members)
            if iq_blocker >= 0:
                earliest = max(earliest, issue[iq_blocker] + 1)
            # Memory queue (FIFO-slot approximation, as for the ROB): the
            # memop that is memory_queue_entries older than each memop in
            # this group must have released its slot.
            ordinal = len(memop_release)
            for j in group_members:
                if trace[j].op.is_memory:
                    blocker = ordinal - cfg.memory_queue_entries
                    if 0 <= blocker < len(memop_release):
                        earliest = max(earliest, memop_release[blocker])
                    elif blocker >= 0 and memop_release:
                        # The blocking memop is in this same group (the
                        # group alone overflows the queue); approximate
                        # by waiting for the newest known release.
                        earliest = max(earliest, memop_release[-1])
                    ordinal += 1
            dispatch_cycle = earliest
            dispatch_cycles.append(dispatch_cycle)
            stats.dispatch_groups += 1

            group_complete = 0
            for j in group_members:
                dispatch[j] = dispatch_cycle
                self._schedule_execution(
                    j,
                    trace[j],
                    dispatch_cycle,
                    reg_ready,
                    pools,
                    unit_intervals,
                    issue,
                    complete,
                    completions_in_cycle,
                    stats,
                )
                record = trace[j]
                # Liveness: reads extend the current value's interval.
                for src in record.srcs:
                    if def_cycle[src] >= 0:
                        last_read[src] = max(last_read[src], issue[j])
                # A write finalises the previous value's interval.
                if record.dest is not None:
                    reg = record.dest
                    if def_cycle[reg] >= 0 and last_read[reg] > def_cycle[reg]:
                        live_intervals.append(
                            (reg, def_cycle[reg], last_read[reg])
                        )
                    def_cycle[reg] = complete[j]
                    last_read[reg] = -1
                group_complete = max(group_complete, complete[j])

            retire_cycle = max(group_complete + 1, last_retire_cycle + 1)
            for j in group_members:
                retire[j] = retire_cycle
            last_retire_cycle = retire_cycle

            # Memory-queue release: loads free at completion, stores
            # drain after retirement.
            for j in group_members:
                if trace[j].op is OpClass.LOAD:
                    memop_release.append(complete[j] + 1)
                elif trace[j].op is OpClass.STORE:
                    memop_release.append(retire_cycle + 1)
            group_members = []

        for i, record in enumerate(trace):
            # ---------------- fetch ----------------
            if redirect_after is not None:
                next_fetch_cycle = max(next_fetch_cycle, redirect_after)
                fetched_this_cycle = 0
                redirect_after = None
            line = record.pc >> line_shift
            if line != fetch_line:
                fetch_line = line
                miss_latency = self.imem.access(record.pc)
                if miss_latency > cfg.l1i.latency:
                    next_fetch_cycle += miss_latency - cfg.l1i.latency
                    fetched_this_cycle = 0
            if fetched_this_cycle >= cfg.fetch_width:
                next_fetch_cycle += 1
                fetched_this_cycle = 0
            fetch[i] = next_fetch_cycle
            fetched_this_cycle += 1

            # ---------------- group formation ----------------
            group_members.append(i)
            breaks = len(group_members) >= cfg.dispatch_group_size
            if record.op.is_branch:
                breaks = True
            if breaks:
                close_group()

            # ---------------- branch outcome ----------------
            if record.op.is_branch:
                stats.branches += 1
                correct = self.predictor.predict_and_update(
                    record.pc, record.taken
                )
                if not correct:
                    stats.mispredictions += 1
                    redirect_after = (
                        complete[i] + cfg.mispredict_redirect_penalty
                    )
                elif record.taken:
                    # Taken branches end the fetch group (redirect bubble
                    # is hidden by the predictor; next line fetch below).
                    fetched_this_cycle = cfg.fetch_width

        close_group()

        stats.instructions = n
        stats.cycles = retire[-1] + 1
        stats.l1i_misses = self.icache.misses
        stats.l1d_misses = self.dcache.misses
        stats.l2_misses = self.l2.misses
        stats.itlb_misses = self.itlb.misses
        stats.dtlb_misses = self.dtlb.misses
        stats.unit_busy_cycles = {
            name: pool.busy_cycles for name, pool in pools.items()
        }

        # Finalise still-open liveness intervals at trace end.
        for reg in range(NUM_ARCH_REGS):
            if def_cycle[reg] >= 0 and last_read[reg] > def_cycle[reg]:
                live_intervals.append((reg, def_cycle[reg], last_read[reg]))

        return ScheduleResult(
            fetch=fetch,
            dispatch=dispatch,
            issue=issue,
            complete=complete,
            retire=retire,
            unit_intervals=unit_intervals,
            dispatch_cycles=dispatch_cycles,
            live_intervals=live_intervals,
            stats=stats,
        )

    def _schedule_execution(
        self,
        index: int,
        record: InstructionRecord,
        dispatch_cycle: int,
        reg_ready: list[int],
        pools: dict,
        unit_intervals: dict,
        issue: list[int],
        complete: list[int],
        completions_in_cycle: dict,
        stats: PipelineStats,
    ) -> None:
        cfg = self.config
        ready = dispatch_cycle + 1
        for src in record.srcs:
            ready = max(ready, reg_ready[src])

        base_latency = cfg.latency_of(record.op)
        if record.op is OpClass.LOAD:
            stats.loads += 1
            # The LS unit is occupied for address generation plus the L1
            # probe; a miss parks in the (modelled-unbounded) miss queue
            # and only delays this load's completion, as in a
            # non-blocking cache.
            extra = self.dmem.access(record.mem_addr)
            occupancy = base_latency + self.dcache.spec.latency
            total_latency = base_latency + extra
        elif record.op is OpClass.STORE:
            stats.stores += 1
            # Stores translate/probe at execute; data is written at
            # retirement through the memory queue.
            self.dmem.access(record.mem_addr)
            occupancy = base_latency
            total_latency = base_latency
        else:
            occupancy = base_latency
            total_latency = base_latency

        pool = pools[record.op.unit]
        blocking = occupancy if record.op in cfg.unpipelined_ops else 1
        issue_cycle = pool.allocate(ready, occupancy, blocking)

        complete_cycle = issue_cycle + total_latency
        # Finish-width limit: at most finish_width completions per cycle.
        while completions_in_cycle.get(complete_cycle, 0) >= cfg.finish_width:
            complete_cycle += 1
        completions_in_cycle[complete_cycle] = (
            completions_in_cycle.get(complete_cycle, 0) + 1
        )

        issue[index] = issue_cycle
        complete[index] = complete_cycle
        unit_intervals[record.op.unit].append(
            (issue_cycle, issue_cycle + occupancy)
        )
        if record.dest is not None:
            reg_ready[record.dest] = complete_cycle
