"""Set-associative caches and TLBs (LRU replacement).

These are functional hit/miss models feeding the timing model: they
return the access latency and keep hit/miss statistics. Lines are
tracked by tag; no data is stored (trace-driven simulation needs timing
only).
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigurationError
from .config import CacheSpec, TlbSpec


class Cache:
    """One cache level with LRU replacement within each set."""

    def __init__(self, spec: CacheSpec):
        self.spec = spec
        self._line_shift = (spec.line_bytes - 1).bit_length()
        if 1 << self._line_shift != spec.line_bytes:
            raise ConfigurationError(
                f"{spec.name}: line size must be a power of two"
            )
        self._n_sets = spec.n_sets
        # One ordered dict per set: tag -> None, oldest first.
        self._sets: list[OrderedDict] = [
            OrderedDict() for _ in range(self._n_sets)
        ]
        self.hits = 0
        self.misses = 0

    def lookup(self, address: int) -> bool:
        """Access ``address``; returns True on hit. Fills on miss (LRU)."""
        line = address >> self._line_shift
        index = line % self._n_sets
        tag = line // self._n_sets
        entries = self._sets[index]
        if tag in entries:
            entries.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        entries[tag] = None
        if len(entries) > self.spec.associativity:
            entries.popitem(last=False)
        return False

    def fill(self, address: int) -> None:
        """Install a line without counting an access (prefetch fill)."""
        line = address >> self._line_shift
        index = line % self._n_sets
        tag = line // self._n_sets
        entries = self._sets[index]
        if tag in entries:
            entries.move_to_end(tag)
            return
        entries[tag] = None
        if len(entries) > self.spec.associativity:
            entries.popitem(last=False)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class Tlb:
    """A fully-associative TLB with LRU replacement."""

    def __init__(self, spec: TlbSpec):
        self.spec = spec
        self._page_shift = (spec.page_bytes - 1).bit_length()
        if 1 << self._page_shift != spec.page_bytes:
            raise ConfigurationError(
                f"{spec.name}: page size must be a power of two"
            )
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, address: int) -> bool:
        """Translate ``address``; returns True on hit. Fills on miss."""
        page = address >> self._page_shift
        if page in self._entries:
            self._entries.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[page] = None
        if len(self._entries) > self.spec.entries:
            self._entries.popitem(last=False)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class MemoryHierarchy:
    """L1 (I or D) + shared L2 + memory, returning access latencies.

    A tagged next-line prefetcher (POWER4-style sequential stream
    prefetch) is enabled by default: a demand miss prefetches the
    following line, and a hit on a prefetched line keeps the stream
    running ahead. Sequential walks therefore miss only at stream
    startup, as on the real machine.
    """

    _PREFETCH_TAG_LIMIT = 4096

    def __init__(
        self,
        l1: Cache,
        l2: Cache,
        tlb: Tlb,
        memory_latency: int,
        prefetch: bool = True,
    ):
        self.l1 = l1
        self.l2 = l2
        self.tlb = tlb
        self.memory_latency = memory_latency
        self.prefetch = prefetch
        self._prefetched: set[int] = set()
        self.prefetch_fills = 0

    def _prefetch_line(self, line: int) -> None:
        address = line << self.l1._line_shift  # noqa: SLF001 - same module
        self.l1.fill(address)
        self.l2.fill(address)
        if len(self._prefetched) >= self._PREFETCH_TAG_LIMIT:
            self._prefetched.clear()
        self._prefetched.add(line)
        self.prefetch_fills += 1

    def access(self, address: int) -> int:
        """Total latency of an access at ``address`` (cycles)."""
        latency = 0
        if not self.tlb.lookup(address):
            latency += self.tlb.spec.miss_penalty
        line = address >> self.l1._line_shift  # noqa: SLF001 - same module
        if self.l1.lookup(address):
            if self.prefetch and line in self._prefetched:
                self._prefetched.discard(line)
                self._prefetch_line(line + 1)
            return latency + self.l1.spec.latency
        if self.prefetch:
            self._prefetch_line(line + 1)
        if self.l2.lookup(address):
            return latency + self.l1.spec.latency + self.l2.spec.latency
        return (
            latency
            + self.l1.spec.latency
            + self.l2.spec.latency
            + self.memory_latency
        )
