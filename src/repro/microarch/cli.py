"""Command-line simulator driver (``repro-simulate``).

Synthesizes (or loads) an instruction trace, runs the Table-1 machine,
prints pipeline statistics and component AVFs, and optionally saves the
masking trace and/or the instruction trace for reuse::

    repro-simulate gzip --instructions 50000
    repro-simulate swim --save-masking swim.npz --save-trace swim_trace.npz
    repro-simulate --load-trace swim_trace.npz
"""

from __future__ import annotations

import argparse
import sys

from ..workloads.spec import SPEC_FP_NAMES, SPEC_INT_NAMES, spec_benchmark
from ..workloads.synthesis import synthesize_trace
from .config import MachineConfig
from .simulator import simulate
from .trace_io import load_trace, save_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Run the POWER4-like timing model on a workload and "
        "emit its masking trace.",
    )
    parser.add_argument(
        "benchmark",
        nargs="?",
        default=None,
        help=f"benchmark name (int: {', '.join(SPEC_INT_NAMES)}; "
        f"fp: {', '.join(SPEC_FP_NAMES)})",
    )
    parser.add_argument(
        "--instructions", type=int, default=40_000,
        help="dynamic instructions to synthesize (default 40000)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--load-trace", metavar="PATH",
        help="load an instruction trace instead of synthesizing",
    )
    parser.add_argument(
        "--save-trace", metavar="PATH",
        help="save the instruction trace for reuse",
    )
    parser.add_argument(
        "--save-masking", metavar="PATH",
        help="save the resulting masking trace (.npz)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.load_trace:
        trace = load_trace(args.load_trace)
        workload = args.benchmark or args.load_trace
    elif args.benchmark:
        profile = spec_benchmark(args.benchmark)
        trace = synthesize_trace(profile, args.instructions, seed=args.seed)
        workload = args.benchmark
    else:
        print(
            "error: provide a benchmark name or --load-trace",
            file=sys.stderr,
        )
        return 2

    if args.save_trace:
        save_trace(trace, args.save_trace)
        print(f"instruction trace saved to {args.save_trace}")

    result = simulate(trace, MachineConfig.power4_like(), workload=workload)
    print(result.stats.summary())
    print()
    print("component AVFs (time-average vulnerability):")
    for name, avf in sorted(
        result.masking_trace.utilization_summary().items()
    ):
        print(f"  {name:15s} {avf:.4f}")

    if args.save_masking:
        result.masking_trace.save(args.save_masking)
        print(f"masking trace saved to {args.save_masking}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    sys.exit(main())
