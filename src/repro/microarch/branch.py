"""Branch prediction: a classic bimodal (2-bit counter) predictor.

Turandot models a more elaborate front end; for masking-trace purposes
what matters is a realistic mispredict rate per workload (it sets the
frequency of pipeline flushes, hence idle phases of the units). A
bimodal table gives per-benchmark mispredict rates in the few-percent
range, which is the regime the paper's SPEC runs are in.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class BimodalPredictor:
    """2-bit saturating counters indexed by PC."""

    #: Counter states: 0,1 predict not-taken; 2,3 predict taken.
    _TAKEN_THRESHOLD = 2

    def __init__(self, entries: int = 4096, initial: int = 1):
        if entries < 1 or entries & (entries - 1):
            raise ConfigurationError(
                f"predictor entries must be a positive power of two, "
                f"got {entries}"
            )
        if not 0 <= initial <= 3:
            raise ConfigurationError("initial counter must be in 0..3")
        self._mask = entries - 1
        self._counters = bytearray([initial] * entries)
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch at ``pc``, update with the actual outcome.

        Returns True if the prediction was correct.
        """
        index = (pc >> 2) & self._mask
        counter = self._counters[index]
        predicted_taken = counter >= self._TAKEN_THRESHOLD
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken and counter < 3:
            self._counters[index] = counter + 1
        elif not taken and counter > 0:
            self._counters[index] = counter - 1
        return correct

    @property
    def mispredict_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions
