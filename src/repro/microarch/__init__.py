"""Cycle-level out-of-order processor model (the Turandot substitute).

The paper generates its masking traces with Turandot, IBM's trace-driven
timing simulator for a POWER4-like core [Moudgill et al. 1999]. This
package implements an equivalent trace-driven, cycle-level model of the
Table-1 machine:

* 2.0 GHz, 8-wide fetch, dispatch groups of up to 5 (POWER4 style),
  in-order dispatch/retire, out-of-order issue;
* 2 integer / 2 floating-point / 2 load-store / 1 branch unit with the
  paper's latencies (INT 1/4/35 add/mul/div; FP 5, 28 for divide);
* 150-entry reorder buffer, 256-entry register file, 32-entry memory
  queue;
* 64KB direct-mapped L1I, 32KB 2-way L1D, 1MB 4-way unified L2 (128-byte
  lines), 128-entry i/dTLBs, 1/10/77-cycle contention-less latencies;
* bimodal branch predictor with mispredict redirect at resolve.

Its output is exactly what the paper consumes: a per-cycle **masking
trace** for the integer, floating-point, and decode units (busy
fraction) and the register file (fraction of entries holding live
values), plus conventional pipeline statistics.
"""

from .isa import InstructionRecord, OpClass
from .config import MachineConfig, FunctionalUnitSpec, CacheSpec, TlbSpec
from .caches import Cache, Tlb
from .branch import BimodalPredictor
from .simulator import SimulationResult, simulate
from .stats import PipelineStats
from .trace_io import load_trace, save_trace

__all__ = [
    "InstructionRecord",
    "OpClass",
    "MachineConfig",
    "FunctionalUnitSpec",
    "CacheSpec",
    "TlbSpec",
    "Cache",
    "Tlb",
    "BimodalPredictor",
    "SimulationResult",
    "simulate",
    "PipelineStats",
    "load_trace",
    "save_trace",
]
