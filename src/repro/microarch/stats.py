"""Pipeline statistics collected by the timing model."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PipelineStats:
    """Aggregate statistics of one simulation run."""

    instructions: int = 0
    cycles: int = 0
    dispatch_groups: int = 0
    l1i_misses: int = 0
    l1d_misses: int = 0
    l2_misses: int = 0
    itlb_misses: int = 0
    dtlb_misses: int = 0
    branches: int = 0
    mispredictions: int = 0
    loads: int = 0
    stores: int = 0
    unit_busy_cycles: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    def summary(self) -> str:
        lines = [
            f"instructions: {self.instructions}",
            f"cycles:       {self.cycles}",
            f"IPC:          {self.ipc:.3f}",
            f"branches:     {self.branches} "
            f"(mispredict {self.mispredict_rate:.2%})",
            f"loads/stores: {self.loads}/{self.stores}",
            f"L1I/L1D/L2 misses: {self.l1i_misses}/{self.l1d_misses}/"
            f"{self.l2_misses}",
            f"iTLB/dTLB misses:  {self.itlb_misses}/{self.dtlb_misses}",
        ]
        for unit, busy in sorted(self.unit_busy_cycles.items()):
            util = busy / self.cycles if self.cycles else 0.0
            lines.append(f"{unit} busy: {busy} cycles ({util:.1%})")
        return "\n".join(lines)
