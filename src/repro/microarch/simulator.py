"""Simulation driver: trace in, masking trace + statistics out.

This is the substitute for the paper's Turandot step (Section 4.1): run
an instruction trace through the timing model and emit, for each studied
component, a per-cycle vulnerability mask:

* ``int_unit`` / ``fp_unit`` / ``ls_unit`` / ``br_unit`` — fraction of
  the pool's instances processing an instruction that cycle (the paper's
  masking rule: a raw error is masked iff the unit is not busy; with a
  multi-instance pool and uniform strike position the unmasked
  probability is the busy fraction);
* ``decode_unit`` — 1 in cycles where a dispatch group is being decoded
  and dispatched, else 0;
* ``register_file`` — fraction of the 256 entries holding a value that
  will still be read (the paper's rule: an error in a register whose
  value is never read again is masked). Integer and FP architectural
  values occupy their Table-1 partitions; the control-register portion
  is conservatively treated as never-live (not modelled).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..masking.liveness import live_counts_from_intervals
from ..masking.trace import MaskingTrace
from .config import MachineConfig
from .isa import FP_REG_BASE, InstructionRecord, validate_trace
from .pipeline import PipelineModel, ScheduleResult
from .stats import PipelineStats


@dataclass
class SimulationResult:
    """Everything one simulation run produces."""

    masking_trace: MaskingTrace
    stats: PipelineStats
    schedule: ScheduleResult

    @property
    def ipc(self) -> float:
        return self.stats.ipc


def _pool_busy_fraction(
    intervals: list[tuple[int, int]], n_cycles: int, pool_size: int
) -> np.ndarray:
    """Per-cycle fraction of pool instances that are busy."""
    counts = live_counts_from_intervals(intervals, n_cycles)
    # More ops than instances cannot be in flight simultaneously except
    # through the finish-width completion shift; clip defensively.
    return np.minimum(counts / float(pool_size), 1.0)


def _register_file_vulnerability(
    schedule: ScheduleResult,
    trace: list[InstructionRecord],
    config: MachineConfig,
    n_cycles: int,
) -> np.ndarray:
    int_intervals = [
        (start, end)
        for reg, start, end in schedule.live_intervals
        if reg < FP_REG_BASE
    ]
    fp_intervals = [
        (start, end)
        for reg, start, end in schedule.live_intervals
        if reg >= FP_REG_BASE
    ]
    live_int = live_counts_from_intervals(int_intervals, n_cycles)
    live_fp = live_counts_from_intervals(fp_intervals, n_cycles)
    live_int = np.minimum(live_int, config.int_register_entries)
    live_fp = np.minimum(live_fp, config.fp_register_entries)
    return (live_int + live_fp) / float(config.register_file_entries)


def simulate(
    trace: list[InstructionRecord],
    config: MachineConfig | None = None,
    workload: str = "",
) -> SimulationResult:
    """Run ``trace`` on the configured machine and build its masking trace.

    Parameters
    ----------
    trace:
        Dynamic instruction stream (e.g. from
        :mod:`repro.workloads.spec`).
    config:
        Machine description; defaults to the paper's Table-1
        configuration.
    workload:
        Label stored in the resulting masking trace.
    """
    config = config or MachineConfig.power4_like()
    validate_trace(trace)
    model = PipelineModel(config)
    schedule = model.run(trace)
    n_cycles = schedule.total_cycles
    if n_cycles <= 0:
        raise SimulationError("schedule produced no cycles")

    masks: dict[str, np.ndarray] = {}
    for pool_name, spec in (
        ("int", config.int_units),
        ("fp", config.fp_units),
        ("ls", config.ls_units),
        ("br", config.br_units),
    ):
        masks[f"{pool_name}_unit"] = _pool_busy_fraction(
            schedule.unit_intervals[pool_name], n_cycles, spec.count
        )

    decode = np.zeros(n_cycles, dtype=float)
    cycles = np.asarray(schedule.dispatch_cycles, dtype=np.int64)
    decode[cycles[cycles < n_cycles]] = 1.0
    masks["decode_unit"] = decode

    masks["register_file"] = _register_file_vulnerability(
        schedule, trace, config, n_cycles
    )

    masking_trace = MaskingTrace(
        masks, clock_hz=config.clock_hz, workload=workload
    )
    return SimulationResult(
        masking_trace=masking_trace, stats=schedule.stats, schedule=schedule
    )
