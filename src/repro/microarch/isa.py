"""Simplified POWER-like instruction set for trace-driven simulation.

A trace-driven timing model needs only the scheduling-relevant facts
about each instruction: its operation class (which functional unit and
latency it needs), register operands (for dependences and liveness),
memory address (for the cache hierarchy), and branch outcome (for the
predictor). That is what :class:`InstructionRecord` carries.

Registers are architectural: 0..31 integer, 32..63 floating point
(:data:`INT_REG_BASE`/:data:`FP_REG_BASE`). The machine's 256-entry
physical register file (Table 1: 80 integer + 72 FP + control) is
modelled in the pipeline's liveness accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..errors import TraceError

#: Architectural integer registers are 0..31.
INT_REG_BASE = 0
#: Architectural floating-point registers are 32..63.
FP_REG_BASE = 32
#: Total architectural registers carried in traces.
NUM_ARCH_REGS = 64


class OpClass(IntEnum):
    """Operation classes, each mapping to one functional-unit type."""

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    FP_ADD = 3
    FP_MUL = 4
    FP_DIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_branch(self) -> bool:
        return self is OpClass.BRANCH

    @property
    def is_fp(self) -> bool:
        return self in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV)

    @property
    def is_int(self) -> bool:
        return self in (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.INT_DIV)

    @property
    def unit(self) -> str:
        """The functional-unit pool this class issues to."""
        if self.is_int:
            return "int"
        if self.is_fp:
            return "fp"
        if self.is_memory:
            return "ls"
        return "br"


@dataclass(frozen=True)
class InstructionRecord:
    """One dynamic instruction of a trace.

    Attributes
    ----------
    op:
        Operation class.
    dest:
        Destination architectural register, or ``None`` (stores,
        branches).
    srcs:
        Source architectural registers (0-3 of them).
    pc:
        Instruction address (for the I-cache and branch predictor).
    mem_addr:
        Effective address for loads/stores, else ``None``.
    taken:
        Branch outcome for branches, else ``False``.
    """

    op: OpClass
    dest: int | None = None
    srcs: tuple[int, ...] = ()
    pc: int = 0
    mem_addr: int | None = None
    taken: bool = False

    def __post_init__(self) -> None:
        if self.dest is not None and not 0 <= self.dest < NUM_ARCH_REGS:
            raise TraceError(f"dest register {self.dest} out of range")
        for src in self.srcs:
            if not 0 <= src < NUM_ARCH_REGS:
                raise TraceError(f"src register {src} out of range")
        if self.op.is_memory and self.mem_addr is None:
            raise TraceError(f"{self.op.name} needs a memory address")
        if self.op is OpClass.STORE and self.dest is not None:
            raise TraceError("stores do not write registers")
        if len(self.srcs) > 3:
            raise TraceError("at most three source registers supported")


def validate_trace(trace: list[InstructionRecord]) -> None:
    """Validate a whole trace (cheap structural checks)."""
    if not trace:
        raise TraceError("empty instruction trace")
    # InstructionRecord validates each record on construction; here we
    # only check the container type to catch accidental generators that
    # were already consumed.
    if not isinstance(trace[0], InstructionRecord):
        raise TraceError(
            f"trace elements must be InstructionRecord, got "
            f"{type(trace[0]).__name__}"
        )
