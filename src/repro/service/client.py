"""Blocking HTTP client for the analysis service (stdlib urllib only).

Convenience wrapper used by the tests, the ``service_load`` benchmark,
and the example — and a reference implementation of the wire protocol
for anyone talking to ``repro-serve`` from another language: every call
maps one-to-one onto an endpoint documented in ``docs/SERVICE.md``.

The client is deliberately dumb: it does not retry, cache, or reorder
anything, so what it observes is exactly what the server sent — which
is the property the bit-identity tests lean on
(:meth:`ServiceClient.result` rebuilds the
:class:`~repro.methods.results.ResultSet` from the response's
``result`` key, whose dict equals the direct in-process
``ResultSet.to_dict()``).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator

from ..errors import ReproError
from ..methods.results import ResultSet
from .wire import JobSpec


class ServiceError(ReproError):
    """A non-2xx API response; carries status and decoded body."""

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )


class ServiceClient:
    """Talk to one ``repro-serve`` instance at ``base_url``.

    ``tenant`` (optional) stamps every submission with a quota bucket,
    overriding whatever the spec carries — handy for simulating
    multi-tenant load from one process.
    """

    def __init__(
        self,
        base_url: str,
        *,
        tenant: str | None = None,
        timeout: float = 60.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                decoded = json.loads(error.read().decode("utf-8"))
            except ValueError:
                decoded = {"error": str(error)}
            raise ServiceError(error.code, decoded) from None

    # -- API ---------------------------------------------------------------

    def submit(
        self, spec: JobSpec | dict, *, tenant: str | None = None
    ) -> dict:
        """POST the spec; returns the submission payload.

        The payload's ``job`` carries the server-side job metadata and
        ``coalesced`` says whether this submission joined an existing
        run instead of starting one. Raises :class:`ServiceError` with
        ``status=429`` on quota denial, ``status=400`` on a bad spec.
        """
        document = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        bucket = tenant if tenant is not None else self.tenant
        if bucket is not None:
            document["tenant"] = bucket
        return self._request("POST", "/v1/jobs", document)

    def job(self, job_id: str) -> dict:
        """GET the job's status payload (``job`` + ``result``)."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.1
    ) -> dict:
        """Poll until the job leaves the queue/worker; final payload.

        Raises :class:`ServiceError` (status 500) if the job failed
        server-side, :class:`TimeoutError` if it does not finish.
        """
        # repro: allow[D101] client-side wait bound; the job's numbers
        # are computed server-side from the submitted spec alone
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            state = payload["job"]["state"]
            if state == "done":
                return payload
            if state == "failed":
                raise ServiceError(
                    500,
                    {"error": payload["job"]["error"], "job": payload["job"]},
                )
            # repro: allow[D101] same wait bound; timing decides only
            # when polling gives up, never the payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state} after {timeout}s"
                )
            # repro: allow[D101] poll pacing between status requests
            time.sleep(poll)

    def result(self, job_id: str) -> ResultSet:
        """The finished job's ResultSet, rebuilt from the wire dict."""
        payload = self.wait(job_id)
        return ResultSet.from_dict(payload["result"])

    def run(self, spec: JobSpec | dict, **wait_kwargs) -> ResultSet:
        """Submit and block for the ResultSet — the one-call happy path."""
        submitted = self.submit(spec)
        return self.result(submitted["job"]["id"])

    def events(self, job_id: str) -> Iterator[tuple[str, dict]]:
        """Stream the job's SSE feed as ``(event_name, payload)`` pairs.

        Generates until the server closes the stream; the terminal pair
        is ``("done", {"state": ...})``. Closing the generator (or just
        abandoning it) drops the connection — which, by design, the
        server shrugs off.
        """
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events",
            headers={"Accept": "text/event-stream"},
        )
        try:
            stream = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            try:
                decoded = json.loads(error.read().decode("utf-8"))
            except ValueError:
                decoded = {"error": str(error)}
            raise ServiceError(error.code, decoded) from None
        name, data = None, []
        with stream:
            for raw in stream:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith(":"):
                    continue  # keep-alive comment
                if line.startswith("event:"):
                    name = line.split(":", 1)[1].strip()
                elif line.startswith("data:"):
                    data.append(line.split(":", 1)[1].strip())
                elif not line and name is not None:
                    yield name, json.loads("\n".join(data) or "null")
                    name, data = None, []

    def fleet(self) -> dict:
        """GET the queue/dedup/cache/quota snapshot."""
        return self._request("GET", "/v1/fleet")

    def health(self) -> dict:
        return self._request("GET", "/v1/health")
