"""Wire schemas for the analysis service's job protocol.

A *job spec* is everything :func:`repro.evaluate_design_space` needs to
produce a :class:`~repro.methods.results.ResultSet`, as one plain-JSON
document (``repro.job/v1``)::

    {
      "schema": "repro.job/v1",
      "tenant": "acme",                       # quota bucket, optional
      "space": [
        {"label": "C=8", "system": {"schema": "repro.system/v1", ...}},
        ...
      ],
      "methods": ["sofr_only", "first_principles"],
      "reference": "monte_carlo",
      "mc": {"trials": 100000, "seed": 0, "chunks": 8,
             "stopping": {"target_rel_stderr": 0.02}}
    }

Systems serialize through :meth:`repro.core.system.SystemModel.to_dict`
(lossless, fingerprint-stable), so the spec's
:attr:`~JobSpec.content_fingerprint` — a digest over the ordered
labels, system fingerprints, method set, reference, and the Monte-Carlo
``mc_token`` — identifies the *numbers* a run will produce, not the
bytes of the request. Two requests that would compute the same result
share a fingerprint; the job manager coalesces them onto one estimation
(request dedup). The ``tenant`` field is deliberately excluded:
estimates are pure functions of the spec, so serving tenant B from
tenant A's in-flight run changes nothing but the bill.

The determinism guarantee of the whole service rests here: a spec is
*executed* by handing exactly these decoded objects to
``evaluate_design_space``, whose numbers never depend on worker count
or executor — so the HTTP result is bit-identical to the direct
in-process call.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from ..core.montecarlo import (
    MonteCarloConfig,
    mc_config_from_dict,
    mc_config_to_dict,
    stopping_rule_from_dict,
    stopping_rule_to_dict,
)
from ..core.system import SystemModel
from ..errors import ConfigurationError, EstimationError, ReproError
from ..methods import registry
from ..methods.cache import mc_token

# The MC/stopping codecs live in repro.core.montecarlo (the executor
# wire protocol in repro.methods.executors shares them, and methods must
# not depend on the service layer above it); re-exported here because
# they are part of the job wire vocabulary. ``kernel`` is deliberately
# absent from the MC wire form: which sampling kernel executes a job is
# an executor-local performance choice with bit-identical output, so
# ResultSet JSON bytes stay identical across kernels and request dedup
# keeps working.
__all__ = [
    "JOB_SCHEMA",
    "JobSpec",
    "mc_config_from_dict",
    "mc_config_to_dict",
    "stopping_rule_from_dict",
    "stopping_rule_to_dict",
]

#: Schema tag of the job-submission document.
JOB_SCHEMA = "repro.job/v1"


@dataclass(frozen=True)
class JobSpec:
    """One decoded analysis request: a design space plus run settings.

    ``space`` is the ordered ``(label, system)`` sequence
    ``evaluate_design_space`` consumes; ``methods``/``reference``/``mc``
    are passed through verbatim. ``tenant`` names the quota bucket the
    submission is billed to and never affects the computation.
    """

    space: tuple[tuple[str, SystemModel], ...]
    methods: tuple[str, ...]
    reference: str = "monte_carlo"
    mc: MonteCarloConfig = field(default_factory=MonteCarloConfig)
    tenant: str = "default"

    def __post_init__(self) -> None:
        if not self.space:
            raise ConfigurationError("a job spec needs at least one system")
        if not self.methods:
            raise ConfigurationError(
                "a job spec needs at least one method; available: "
                f"{registry.available()}"
            )
        # Resolve names eagerly so a bad spec is rejected at submission
        # time (HTTP 400), not when a worker picks the job up.
        object.__setattr__(
            self,
            "methods",
            tuple(registry.get(name).name for name in self.methods),
        )
        object.__setattr__(
            self, "reference", registry.canonical_name(self.reference)
        )

    # -- identity ----------------------------------------------------------

    @property
    def content_fingerprint(self) -> str:
        """Digest of everything that determines the job's numbers.

        Same discipline as the estimate caches: labels, system
        fingerprints (order-sensitive), the method set, the reference,
        and the Monte-Carlo token. ``tenant`` is excluded — results are
        pure functions of the rest, which is exactly what makes
        cross-tenant request dedup sound.
        """
        digest = hashlib.sha256(b"job/v1:")
        for label, system in self.space:
            digest.update(label.encode("utf-8"))
            digest.update(b"=")
            digest.update(system.content_fingerprint.encode("ascii"))
            digest.update(b";")
        digest.update(",".join(self.methods).encode("utf-8"))
        digest.update(b"|")
        digest.update(self.reference.encode("utf-8"))
        digest.update(b"|")
        digest.update(mc_token(self.mc).encode("utf-8"))
        return digest.hexdigest()

    def trial_cost(self) -> int:
        """Estimated Monte-Carlo trials this job may spend (quota charge).

        Per grid point, the trial *budget* (``stopping.max_trials`` when
        an adaptive rule may extend past ``trials``, else ``trials``)
        multiplied by the number of distinct stochastic estimators
        involved (reference plus methods, counted once each). An upper
        bound, deliberately: adaptive runs that stop early spend less
        than they were billed, and cache hits spend nothing — quota is
        admission control, not metering.
        """
        stochastic = {
            name
            for name in (*self.methods, self.reference)
            if registry.get(name).is_stochastic
        }
        if not stochastic:
            return 0
        budget = self.mc.trials
        if self.mc.stopping is not None and (
            self.mc.stopping.max_trials is not None
        ):
            budget = max(budget, self.mc.stopping.max_trials)
        return budget * len(stochastic) * len(self.space)

    # -- execution ---------------------------------------------------------

    def run(self, *, cache=None, workers=1, executor="thread",
            progress=None):
        """Execute the spec through the batch engine.

        This is the only way the service runs jobs, so the serving
        layer can never drift from the direct call: same space, same
        methods, same reference, same ``MonteCarloConfig`` — and the
        engine's determinism invariants make ``workers``/``executor``
        (the server's scaling knobs) invisible in the numbers.
        ``executor`` accepts any registered backend name or
        :class:`~repro.methods.executors.ChunkExecutor` instance (e.g.
        a :class:`~repro.methods.executors.RemoteExecutor` pointed at a
        worker fleet).
        """
        from ..methods.batch import evaluate_design_space

        return evaluate_design_space(
            list(self.space),
            methods=list(self.methods),
            reference=self.reference,
            mc_config=self.mc,
            workers=workers,
            executor=executor,
            cache=cache,
            progress=progress,
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "tenant": self.tenant,
            "space": [
                {"label": label, "system": system.to_dict()}
                for label, system in self.space
            ],
            "methods": list(self.methods),
            "reference": self.reference,
            "mc": mc_config_to_dict(self.mc),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Decode and validate a ``repro.job/v1`` document.

        Raises :class:`~repro.errors.ConfigurationError` (the server
        maps it to HTTP 400) on a malformed document, an unknown
        method/reference, or an invalid model.
        """
        if not isinstance(data, dict):
            raise ConfigurationError("job wire form must be a JSON object")
        if data.get("schema") != JOB_SCHEMA:
            raise ConfigurationError(
                f"not a {JOB_SCHEMA} document "
                f"(schema={data.get('schema')!r})"
            )
        raw_space = data.get("space")
        if not isinstance(raw_space, list) or not raw_space:
            raise ConfigurationError(
                "job spec needs a non-empty 'space' list"
            )
        space = []
        for index, item in enumerate(raw_space):
            if not isinstance(item, dict) or "system" not in item:
                raise ConfigurationError(
                    f"space item {index} must be "
                    '{"label": ..., "system": {...}}'
                )
            label = str(item.get("label", f"system[{index}]"))
            try:
                system = SystemModel.from_dict(item["system"])
            except ReproError as error:
                raise ConfigurationError(
                    f"space item {index} ({label!r}): {error}"
                ) from None
            space.append((label, system))
        methods = data.get("methods")
        if not isinstance(methods, list) or not methods:
            raise ConfigurationError(
                "job spec needs a non-empty 'methods' list"
            )
        mc_data = data.get("mc")
        try:
            mc = (
                mc_config_from_dict(mc_data)
                if mc_data is not None
                else MonteCarloConfig()
            )
        except EstimationError as error:
            raise ConfigurationError(str(error)) from None
        return cls(
            space=tuple(space),
            methods=tuple(str(m) for m in methods),
            reference=str(data.get("reference", "monte_carlo")),
            mc=mc,
            tenant=str(data.get("tenant", "default")),
        )

    def with_tenant(self, tenant: str) -> "JobSpec":
        return replace(self, tenant=tenant)
