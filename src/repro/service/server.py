"""Service composition and the ``repro-serve`` console entry point.

:class:`AnalysisService` wires the pieces together — cache (resolved
through the same :func:`~repro.methods.cache.resolve_cache_dir` rule
the CLI uses), :class:`~repro.service.quota.TrialQuota`,
:class:`~repro.service.jobs.JobManager`, and the asyncio HTTP layer —
into one object that can be started inside any event loop.
:class:`BackgroundServer` runs that object on a daemon thread with its
own loop, which is how tests, the benchmark suite, and the example
embed a real server in-process and talk to it over real sockets.
"""

from __future__ import annotations

import argparse
import asyncio
import threading

from ..methods.base import ComponentCache
from ..methods.cache import DiskCache, resolve_cache_dir
from ..methods.executors import RemoteExecutor, available_executors
from .http import ApiHandler
from .jobs import JobManager
from .quota import TrialQuota


def build_cache(cache_dir: str | None) -> ComponentCache:
    """The server's shared estimate cache, disk-backed when resolvable.

    Identical resolution to the CLI's ``--cache-dir`` (explicit path,
    else ``$REPRO_CACHE_DIR``, else memory-only) — pointing both at one
    directory makes server jobs and command-line sweeps share estimates.
    """
    resolved = resolve_cache_dir(cache_dir)
    if resolved is not None:
        return ComponentCache(disk=DiskCache(resolved))
    return ComponentCache()


class AnalysisService:
    """The reliability-analysis server: manager + HTTP, one per process.

    ``port=0`` binds an ephemeral port (the default for tests); read
    :attr:`address` after :meth:`start`. ``quota_trials`` caps the
    total Monte-Carlo trial pool split fairly across tenants
    (``None`` = unmetered). ``workers`` sizes the job worker pool;
    ``engine_workers``/``engine_executor`` are passed through to
    ``evaluate_design_space`` and never affect the numbers.
    ``engine_executor`` accepts any registered backend name or
    :class:`~repro.methods.executors.ChunkExecutor` instance, so the
    server's engine pool can point at the same ``repro-worker`` fleet
    the CLI uses (``--engine-fleet`` builds the
    :class:`~repro.methods.executors.RemoteExecutor` for you).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_dir: str | None = None,
        cache: ComponentCache | None = None,
        workers: int = 2,
        engine_workers: int = 1,
        engine_executor="thread",
        quota_trials: int | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.manager = JobManager(
            cache if cache is not None else build_cache(cache_dir),
            workers=workers,
            engine_workers=engine_workers,
            engine_executor=engine_executor,
            quota=TrialQuota(quota_trials),
        )
        self.handler = ApiHandler(self.manager)
        self._server: asyncio.base_events.Server | None = None

    @property
    def address(self) -> str:
        """``http://host:port`` once the listening socket is bound."""
        if self._server is None:
            raise RuntimeError("service not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return f"http://{host}:{port}"

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self.handler.handle_connection, self.host, self.port
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class BackgroundServer:
    """A live :class:`AnalysisService` on a daemon thread (context mgr).

    ::

        with BackgroundServer(cache_dir=tmp) as server:
            client = ServiceClient(server.address)
            ...

    The thread owns a private event loop; ``__exit__`` stops the
    listening socket, drains the worker pool, and joins the thread, so
    tests cannot leak servers. The in-process handle ``.service`` stays
    accessible for white-box assertions (dedup counters, cache stats).
    """

    def __init__(self, **service_kwargs) -> None:
        self.service = AnalysisService(**service_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def address(self) -> str:
        return self.service.address

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.service.start())
        self._started.set()
        self._loop.run_forever()
        # Cancel whatever the stop left in flight, then close the loop.
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.run_until_complete(self.service.stop())
        self._loop.close()

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("analysis server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self.service.manager.close()


def main(argv: list[str] | None = None) -> int:
    """``repro-serve``: run the analysis server until interrupted."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve the DSN'07 reliability-analysis engine over HTTP: "
            "JSON job submission, SSE progress streaming, request "
            "dedup, per-tenant trial quotas. See docs/SERVICE.md."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8321,
        help="listening port (0 = ephemeral; default %(default)s)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help=(
            "persistent estimate cache directory shared with the CLI "
            "(default: $REPRO_CACHE_DIR, else memory-only)"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="concurrent analysis jobs (default %(default)s)",
    )
    parser.add_argument(
        "--engine-workers", type=int, default=1,
        help="evaluate_design_space workers per job (default %(default)s)",
    )
    parser.add_argument(
        "--executor", choices=available_executors(), default="thread",
        help="engine executor per job, from the backend registry "
        "(default %(default)s); 'remote' needs --engine-fleet",
    )
    parser.add_argument(
        "--engine-fleet", metavar="HOST:PORT,...", default=None,
        help="comma-separated repro-worker addresses; the engine pool "
        "fans every job's chunks out over this fleet (implies "
        "--executor remote)",
    )
    parser.add_argument(
        "--quota-trials", type=int, default=None,
        help=(
            "total Monte-Carlo trial pool split fairly across tenants "
            "(default: unmetered)"
        ),
    )
    args = parser.parse_args(argv)
    engine_executor = args.executor
    engine_workers = args.engine_workers
    if args.engine_fleet is not None:
        addresses = [
            part.strip()
            for part in args.engine_fleet.split(",")
            if part.strip()
        ]
        engine_executor = RemoteExecutor(addresses)
        engine_workers = max(engine_workers, len(addresses))
    elif engine_executor == "remote":
        parser.error("--executor remote needs --engine-fleet HOST:PORT,...")
    service = AnalysisService(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        workers=args.workers,
        engine_workers=engine_workers,
        engine_executor=engine_executor,
        quota_trials=args.quota_trials,
    )

    async def run() -> None:
        await service.start()
        print(f"repro-serve listening on {service.address}", flush=True)
        await service.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        service.manager.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
