"""Reliability-analysis service: the serving layer over the estimator stack.

The DSN'07 methodology behind :func:`repro.analyze` and
:func:`repro.evaluate_design_space` is deterministic, cache-backed, and
fleet-capable — but until this package it could only run as a one-shot
CLI process. :mod:`repro.service` turns it into a long-lived analysis
server (console entry point ``repro-serve``):

* an **asyncio HTTP/JSON API** built on stdlib ``asyncio`` streams — no
  framework, no new runtime dependencies (:mod:`repro.service.http`);
* a **job manager** with a persistent worker pool that reuses the batch
  engine and one shared, optionally disk-backed estimate cache
  (:mod:`repro.service.jobs`);
* **request dedup**: jobs are content-addressed by the same fingerprint
  discipline the estimate caches use, so concurrent submissions of the
  same system-model + method/precision spec coalesce onto one running
  estimation (observable in the response metadata);
* **per-tenant trial quotas** generalizing the engine's
  :func:`~repro.core.montecarlo.allocate_grants` budget policy into an
  admission-control rate limiter (:mod:`repro.service.quota`);
* **SSE progress streaming**: the engine's
  :class:`~repro.methods.progress.ProgressEvent` stream becomes a live
  ``text/event-stream`` client protocol, and ``GET /v1/fleet`` exposes
  queue/cache/quota/ledger state for dashboards.

Results served over HTTP are **bit-identical** to the direct in-process
call with the same spec — the server adds scheduling, never numerics.
See ``docs/SERVICE.md`` for the API reference and wire schemas.
"""

from .client import ServiceClient
from .jobs import Job, JobManager
from .quota import QuotaDecision, QuotaExceeded, TrialQuota
from .server import AnalysisService, BackgroundServer
from .wire import (
    JOB_SCHEMA,
    JobSpec,
    mc_config_from_dict,
    mc_config_to_dict,
    stopping_rule_from_dict,
    stopping_rule_to_dict,
)

__all__ = [
    "AnalysisService",
    "BackgroundServer",
    "Job",
    "JobManager",
    "JOB_SCHEMA",
    "JobSpec",
    "QuotaDecision",
    "QuotaExceeded",
    "ServiceClient",
    "TrialQuota",
    "mc_config_from_dict",
    "mc_config_to_dict",
    "stopping_rule_from_dict",
    "stopping_rule_to_dict",
]
