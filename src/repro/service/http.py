"""Minimal asyncio HTTP/1.1 layer and the service's request router.

Stdlib only — ``asyncio`` streams, no web framework. The server speaks
just enough HTTP for the job API: one request per connection
(``Connection: close``), JSON request/response bodies, and
``text/event-stream`` for progress streaming. That keeps the parser a
page long and sidesteps keep-alive pipelining entirely; clients that
poll simply reconnect, which is cheap at analysis-job granularity.

Routes (see ``docs/SERVICE.md`` for the wire schemas):

======  ========================  =========================================
POST    ``/v1/jobs``              submit a ``repro.job/v1`` spec
GET     ``/v1/jobs/<id>``         job metadata + ResultSet once done
GET     ``/v1/jobs/<id>/events``  SSE stream of engine progress events
GET     ``/v1/fleet``             queue/dedup/cache/quota snapshot
GET     ``/v1/health``            liveness probe
======  ========================  =========================================

Error mapping: a malformed or invalid spec
(:class:`~repro.errors.ConfigurationError`) is HTTP 400, a quota denial
(:class:`~repro.service.quota.QuotaExceeded`) is HTTP 429 with the full
:class:`~repro.service.quota.QuotaDecision` in the body, an unknown
job/route is 404, and anything unexpected is a 500 that never takes the
server down.

SSE. The stream replays the job's buffered events from the beginning —
connect late, see everything — then follows live until the job
finishes, closing with a terminal ``done`` event. Every ``data:``
payload is a documented :class:`~repro.methods.progress.ProgressEvent`
``to_dict()`` form; comment lines (``: keep-alive``) pad quiet periods
so dead connections surface as write errors. A client disconnect ends
only that stream — the job, its event buffer, and any other listeners
are untouched.
"""

from __future__ import annotations

import asyncio
import json

from ..errors import ConfigurationError, ReproError
from .jobs import JobManager
from .quota import QuotaExceeded
from .wire import JobSpec

#: Reason phrases for the status codes the API uses.
_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Request bodies above this size are rejected outright.
MAX_BODY_BYTES = 16 * 1024 * 1024


class HttpError(ReproError):
    """Terminate request handling with a specific status code."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(message)


class Request:
    """One parsed HTTP request."""

    def __init__(
        self, method: str, path: str, headers: dict, body: bytes
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        try:
            return json.loads(self.body.decode("utf-8"))
        except ValueError:
            raise HttpError(400, "request body is not valid JSON") from None


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request from the stream; None on a closed connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {parts!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise HttpError(400, f"request body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    # Strip any query string; the API does not use one.
    path = target.split("?", 1)[0]
    return Request(method.upper(), path, headers, body)


def response_bytes(
    status: int,
    payload: dict,
    *,
    content_type: str = "application/json",
) -> bytes:
    """One complete HTTP response (headers + JSON body)."""
    body = (json.dumps(payload) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


def sse_preamble() -> bytes:
    """Response head that switches the connection to event streaming."""
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-cache\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")


def sse_event(name: str, payload: dict) -> bytes:
    """One ``event:``/``data:`` frame."""
    return (
        f"event: {name}\ndata: {json.dumps(payload)}\n\n".encode("utf-8")
    )


class ApiHandler:
    """Routes parsed requests against a :class:`JobManager`."""

    def __init__(self, manager: JobManager) -> None:
        self.manager = manager

    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """asyncio.start_server callback: serve one request, close."""
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self.dispatch(request, writer)
            except HttpError as error:
                writer.write(
                    response_bytes(error.status, {"error": str(error)})
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                return  # client went away; nothing to answer
            except Exception as error:  # noqa: BLE001 - server stays up
                writer.write(
                    response_bytes(
                        500, {"error": f"{type(error).__name__}: {error}"}
                    )
                )
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        segments = [s for s in request.path.split("/") if s]
        if segments == ["v1", "jobs"]:
            if request.method != "POST":
                raise HttpError(405, "use POST /v1/jobs to submit")
            writer.write(self._submit(request))
        elif len(segments) == 3 and segments[:2] == ["v1", "jobs"]:
            self._require_get(request)
            writer.write(self._job_status(segments[2]))
        elif len(segments) == 4 and segments[:2] == ["v1", "jobs"] and (
            segments[3] == "events"
        ):
            self._require_get(request)
            await self._stream_events(segments[2], writer)
        elif segments == ["v1", "fleet"]:
            self._require_get(request)
            writer.write(
                response_bytes(200, self.manager.fleet_snapshot())
            )
        elif segments == ["v1", "health"]:
            self._require_get(request)
            writer.write(response_bytes(200, {"status": "ok"}))
        else:
            raise HttpError(404, f"no route for {request.path!r}")

    @staticmethod
    def _require_get(request: Request) -> None:
        if request.method != "GET":
            raise HttpError(405, f"{request.path} only supports GET")

    # -- endpoints ---------------------------------------------------------

    def _submit(self, request: Request) -> bytes:
        try:
            spec = JobSpec.from_dict(request.json())
        except ConfigurationError as error:
            raise HttpError(400, str(error)) from None
        try:
            job, coalesced = self.manager.submit(spec)
        except QuotaExceeded as error:
            writer_payload = {
                "error": str(error),
                "quota": error.decision.to_dict(),
            }
            return response_bytes(429, writer_payload)
        payload = {
            "job": job.to_dict(),
            "coalesced": coalesced,
            "href": f"/v1/jobs/{job.id}",
        }
        return response_bytes(200 if coalesced else 201, payload)

    def _job_status(self, job_id: str) -> bytes:
        job = self.manager.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job {job_id!r}")
        payload = {"job": job.to_dict(), "result": None}
        if job.state == "done":
            # The exact ResultSet.to_dict() form, under its own key:
            # decode-and-dump of this value reproduces a local
            # run's artifact byte for byte.
            payload["result"] = job.result.to_dict()
        return response_bytes(200, payload)

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        job = self.manager.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job {job_id!r}")
        writer.write(sse_preamble())
        await writer.drain()
        loop = asyncio.get_running_loop()
        cursor = 0
        try:
            while True:
                # Block off-loop on the job's condition variable so the
                # event loop stays free for other connections.
                events, cursor, finished = await loop.run_in_executor(
                    None, job.next_events, cursor, 0.5
                )
                for event in events:
                    writer.write(sse_event("progress", event))
                if not events:
                    # Padding during quiet periods doubles as the
                    # disconnect probe: writing to a closed socket is
                    # how we learn the client left.
                    # repro: allow[W102] a complete SSE comment frame
                    # (": ...\n\n") written in one call; no helper
                    # output to seal
                    writer.write(b": keep-alive\n\n")
                await writer.drain()
                if finished and not events:
                    writer.write(
                        sse_event(
                            "done",
                            {"state": job.state, "error": job.error},
                        )
                    )
                    await writer.drain()
                    return
        except (ConnectionError, OSError):
            # Client disconnected mid-stream. The job keeps running and
            # its buffer keeps filling; only this stream ends.
            return
