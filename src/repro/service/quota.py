"""Per-tenant trial quotas: admission control for the analysis service.

The batch engine already has one budget-allocation policy —
:func:`repro.core.montecarlo.allocate_grants`, the deterministic
worst-deficit-first round-robin splitter behind the pipelined
scheduler's re-allocation and the cross-shard ledger. The service
generalizes that same policy one level up, from *grid points inside a
sweep* to *tenants inside a server*: the server's trial pool is split
round-robin (in ``unit``-sized grants, worst-deficit-first) over every
tenant that has shown up, and a submission is admitted only if the
tenant's cumulative spend plus the new job's
:meth:`~repro.service.wire.JobSpec.trial_cost` still fits inside its
share.

The scheme is *work-conserving* in the same sense the in-sweep policy
is: a tenant alone on the server owns the whole pool; each tenant that
joins re-divides the pool into equal fair shares (remainder trials go
to the neediest tenant first, ties broken by arrival order — exactly
the ``allocate_grants`` ordering). Decisions are pure functions of the
recorded spends, so a replayed submission log reproduces the identical
admit/deny sequence.

Charges are an upper bound, not metering: adaptive runs that stop early
and cache hits cost the service less than the tenant was billed, and
coalesced duplicate submissions are never billed at all (the first
submitter already paid for the run everyone shares). Failed jobs are
refunded — a crash should not consume quota.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..core.montecarlo import allocate_grants
from ..errors import ConfigurationError, ReproError


class QuotaExceeded(ReproError):
    """A submission was denied admission; carries the full decision."""

    def __init__(self, decision: "QuotaDecision") -> None:
        self.decision = decision
        super().__init__(
            f"tenant {decision.tenant!r} quota exceeded: requested "
            f"{decision.requested} trials with {decision.spent} already "
            f"spent, but its fair share of the {decision.pool}-trial "
            f"pool is {decision.share}"
        )


@dataclass(frozen=True)
class QuotaDecision:
    """One admission decision, with everything that went into it."""

    tenant: str
    requested: int
    spent: int
    share: int
    pool: int
    admitted: bool

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "requested": self.requested,
            "spent": self.spent,
            "share": self.share,
            "pool": self.pool,
            "admitted": self.admitted,
        }


class TrialQuota:
    """Thread-safe per-tenant trial budget over one shared pool.

    ``pool`` is the total Monte-Carlo trial budget the operator is
    willing to spend across all tenants (``None`` disables quota
    enforcement entirely — every submission is admitted and merely
    accounted). ``unit`` is the grant granularity handed to
    :func:`~repro.core.montecarlo.allocate_grants`; it only affects how
    the indivisible remainder of ``pool / n_tenants`` is distributed.
    The default (``pool / 1024``, at least 1) keeps the splitter's
    round-robin loop bounded regardless of pool size.
    """

    def __init__(self, pool: int | None = None, unit: int | None = None
                 ) -> None:
        if pool is not None and pool < 1:
            raise ConfigurationError(
                f"quota pool must be >= 1 trials, got {pool}"
            )
        if unit is None:
            unit = max(1, (pool or 0) // 1024)
        if unit < 1:
            raise ConfigurationError(
                f"quota grant unit must be >= 1, got {unit}"
            )
        self.pool = pool
        self.unit = unit
        self._lock = threading.Lock()
        # tenant -> cumulative admitted trial spend; insertion order is
        # arrival order, which breaks fair-share ties deterministically.
        self._spent: dict[str, int] = {}

    # -- policy ------------------------------------------------------------

    def _shares(self, demands: dict[str, int]) -> dict[str, int]:
        """Fair share per tenant: ``allocate_grants`` over the tenant set.

        ``demands`` maps tenant -> the spend it is asking the policy to
        judge (cumulative spend, plus the new request for the tenant
        under consideration). Tenants are keyed by arrival index so the
        splitter's ascending-key tie-break becomes first-come-first-
        served, mirroring how grid points tie-break by point index.
        """
        order = list(demands)
        pairs = [
            (float(demands[tenant]), index)
            for index, tenant in enumerate(order)
        ]
        grants = allocate_grants(self.pool, pairs, self.unit)
        return {
            tenant: sum(grants.get(index, []))
            for index, tenant in enumerate(order)
        }

    def check(self, tenant: str, requested: int) -> QuotaDecision:
        """The decision :meth:`charge` would make, without recording it."""
        with self._lock:
            return self._decide(tenant, requested)

    def charge(self, tenant: str, requested: int) -> QuotaDecision:
        """Admit-and-record, or raise :class:`QuotaExceeded`.

        Admission: the tenant's cumulative spend plus ``requested``
        must fit inside its fair share of the pool, where shares are
        computed over every tenant seen so far (including this one).
        """
        with self._lock:
            decision = self._decide(tenant, requested)
            if not decision.admitted:
                raise QuotaExceeded(decision)
            self._spent[tenant] = decision.spent + requested
            return decision

    def _decide(self, tenant: str, requested: int) -> QuotaDecision:
        if requested < 0:
            raise ConfigurationError(
                f"requested trials must be >= 0, got {requested}"
            )
        spent = self._spent.get(tenant, 0)
        if self.pool is None:
            return QuotaDecision(
                tenant=tenant, requested=requested, spent=spent,
                share=spent + requested, pool=0, admitted=True,
            )
        demands = dict(self._spent)
        demands[tenant] = spent + requested
        share = self._shares(demands).get(tenant, 0)
        return QuotaDecision(
            tenant=tenant,
            requested=requested,
            spent=spent,
            share=share,
            pool=self.pool,
            admitted=spent + requested <= share,
        )

    def refund(self, tenant: str, trials: int) -> None:
        """Return trials to a tenant (failed jobs don't consume quota)."""
        with self._lock:
            spent = self._spent.get(tenant)
            if spent is not None:
                self._spent[tenant] = max(0, spent - trials)

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict:
        """Fleet-endpoint view: pool, per-tenant spend, current shares."""
        with self._lock:
            spent = dict(self._spent)
            if self.pool is None:
                shares = {tenant: None for tenant in spent}
            else:
                shares = self._shares(dict(spent)) if spent else {}
            return {
                "pool": self.pool,
                "unit": self.unit,
                "tenants": {
                    tenant: {
                        "spent": amount,
                        "share": shares.get(tenant),
                    }
                    for tenant, amount in spent.items()
                },
            }
