"""Job lifecycle and the persistent worker pool behind the service.

A :class:`Job` is one admitted :class:`~repro.service.wire.JobSpec`
moving through ``queued -> running -> done`` (or ``failed``), carrying
its buffered progress events and, eventually, its
:class:`~repro.methods.results.ResultSet`. The :class:`JobManager`
owns the queue, a pool of persistent worker threads that execute specs
through the batch engine against **one shared estimate cache**, the
per-tenant :class:`~repro.service.quota.TrialQuota`, and the dedup
index.

Dedup. Jobs are content-addressed by
:attr:`~repro.service.wire.JobSpec.content_fingerprint`. Submitting a
spec whose fingerprint matches a queued, running, or completed job does
not create a second job — the submission *coalesces* onto the existing
one (its ``coalesced`` count increments, the submitting tenant is
recorded, and no quota is charged: the original submitter already paid
for the run everyone now shares). Failed jobs are not coalesce
targets — resubmitting after a failure retries. Since results are pure
functions of the spec, every coalesced submitter receives bytes
identical to what a private run would have produced.

Progress buffering. Workers append each engine
:class:`~repro.methods.progress.ProgressEvent` (as its
:meth:`~repro.methods.progress.ProgressEvent.to_dict` form) to the
job's event list under a :class:`threading.Condition`. SSE handlers —
any number of them, attaching and detaching at any time — replay the
buffer from an offset and block on the condition for more, so a client
that connects late still sees every event and a client that disconnects
affects nothing: the job owns the buffer, not the connection.
"""

from __future__ import annotations

import queue
import threading
from typing import Sequence

from ..methods.base import ComponentCache
from ..methods.executors import executor_name
from .quota import TrialQuota
from .wire import JobSpec

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")


class Job:
    """One admitted analysis job and everything observable about it."""

    def __init__(self, job_id: str, spec: JobSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.fingerprint = spec.content_fingerprint
        self.state = "queued"
        self.result = None
        self.error: str | None = None
        #: tenants whose submissions this job serves (first = payer).
        self.tenants: list[str] = [spec.tenant]
        #: submissions beyond the first that coalesced onto this job.
        self.coalesced = 0
        self.trial_cost = spec.trial_cost()
        self._events: list[dict] = []
        self._condition = threading.Condition()

    # -- worker side -------------------------------------------------------

    def record_event(self, event) -> None:
        """Engine progress callback: buffer one event, wake listeners."""
        with self._condition:
            self._events.append(event.to_dict())
            self._condition.notify_all()

    def mark_running(self) -> None:
        with self._condition:
            self.state = "running"
            self._condition.notify_all()

    def finish(self, result) -> None:
        with self._condition:
            self.result = result
            self.state = "done"
            self._condition.notify_all()

    def fail(self, error: BaseException) -> None:
        with self._condition:
            self.error = f"{type(error).__name__}: {error}"
            self.state = "failed"
            self._condition.notify_all()

    # -- observer side -----------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; True if it did within timeout."""
        with self._condition:
            return self._condition.wait_for(
                lambda: self.finished, timeout=timeout
            )

    def next_events(
        self, start: int, timeout: float = 0.5
    ) -> tuple[list[dict], int, bool]:
        """Buffered events from ``start`` on, blocking briefly for more.

        Returns ``(events, next_start, finished)``. The short timeout
        makes SSE streaming a polling loop that still delivers events
        promptly: each call either returns fresh events, or times out
        empty so the caller can probe the (possibly gone) client
        connection before blocking again.
        """
        with self._condition:
            self._condition.wait_for(
                lambda: len(self._events) > start or self.finished,
                timeout=timeout,
            )
            events = self._events[start:]
            return events, start + len(events), self.finished

    def to_dict(self) -> dict:
        """Job metadata (the ``job`` object of API responses).

        The result payload is deliberately *not* embedded here — the
        server serves ``ResultSet.to_dict()`` under a separate key so
        its bytes stay directly comparable with a local
        ``to_json`` artifact.
        """
        with self._condition:
            return {
                "id": self.id,
                "state": self.state,
                "fingerprint": self.fingerprint,
                "tenant": self.tenants[0],
                "tenants": list(self.tenants),
                "coalesced": self.coalesced,
                "trial_cost": self.trial_cost,
                "events": len(self._events),
                "error": self.error,
            }


class JobManager:
    """Queue, dedup index, quota, and worker pool — the service core.

    ``workers`` persistent threads drain the submission queue; each job
    executes via :meth:`JobSpec.run` with the shared ``cache`` and the
    engine-level ``engine_workers``/``engine_executor`` scaling knobs
    (which, by the engine's determinism invariants, never change the
    numbers). ``engine_executor`` takes any registered backend name or
    :class:`~repro.methods.executors.ChunkExecutor` instance — point a
    :class:`~repro.methods.executors.RemoteExecutor` at a
    ``repro-worker`` fleet and every served job fans out over it. The manager is fully usable without any HTTP in front of
    it — the server layer is a thin translation onto these methods.
    """

    def __init__(
        self,
        cache: ComponentCache | None = None,
        *,
        workers: int = 2,
        engine_workers: int = 1,
        engine_executor="thread",
        quota: TrialQuota | None = None,
    ) -> None:
        self.cache = cache if cache is not None else ComponentCache()
        self.quota = quota if quota is not None else TrialQuota()
        self.engine_workers = engine_workers
        self.engine_executor = engine_executor
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._by_fingerprint: dict[str, Job] = {}
        self._counter = 0
        self._submissions = 0
        self._coalesced = 0
        self._queue: queue.Queue = queue.Queue()
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"repro-job-worker-{i}",
                daemon=True,
            )
            for i in range(max(1, workers))
        ]
        for thread in self._workers:
            thread.start()

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Admit a spec; returns ``(job, coalesced)``.

        Coalesced submissions (fingerprint matches a live or completed
        job) are free and return the existing job. Fresh submissions
        are charged ``spec.trial_cost()`` against the tenant's quota
        (:class:`~repro.service.quota.QuotaExceeded` propagates to the
        caller — the server maps it to HTTP 429) and enqueued.
        """
        fingerprint = spec.content_fingerprint
        with self._lock:
            self._submissions += 1
            existing = self._by_fingerprint.get(fingerprint)
            if existing is not None and existing.state != "failed":
                existing.coalesced += 1
                if spec.tenant not in existing.tenants:
                    existing.tenants.append(spec.tenant)
                self._coalesced += 1
                return existing, True
            # Charge before the job becomes visible so a denied
            # submission leaves no trace to coalesce against.
            self.quota.charge(spec.tenant, spec.trial_cost())
            self._counter += 1
            job = Job(f"job-{self._counter}", spec)
            self._jobs[job.id] = job
            self._by_fingerprint[fingerprint] = job
        self._queue.put(job)
        return job, False

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> Sequence[Job]:
        with self._lock:
            return list(self._jobs.values())

    # -- worker pool -------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.mark_running()
            try:
                result = job.spec.run(
                    cache=self.cache,
                    workers=self.engine_workers,
                    executor=self.engine_executor,
                    progress=job.record_event,
                )
            except BaseException as error:  # noqa: BLE001 - job isolation
                job.fail(error)
                # A failed job must not consume the tenant's budget —
                # and must stop shadowing its fingerprint so a retry
                # submission creates a fresh job.
                self.quota.refund(job.spec.tenant, job.trial_cost)
            else:
                job.finish(result)

    def close(self, timeout: float = 10.0) -> None:
        """Stop the worker pool (queued jobs drain first)."""
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join(timeout=timeout)

    # -- introspection -----------------------------------------------------

    def fleet_snapshot(self) -> dict:
        """The ``GET /v1/fleet`` payload: queue, dedup, cache, quota."""
        with self._lock:
            jobs = list(self._jobs.values())
            submissions = self._submissions
            coalesced = self._coalesced
        states = {state: 0 for state in JOB_STATES}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "workers": len(self._workers),
            "engine": {
                "workers": self.engine_workers,
                "executor": executor_name(self.engine_executor),
            },
            "jobs": states,
            "submissions": submissions,
            "coalesced": coalesced,
            "cache": self.cache.stats_line(),
            "quota": self.quota.snapshot(),
        }
