"""``repro-lint``: the determinism & protocol invariant checker CLI.

Exit-code contract (pinned by ``tests/test_lint.py``):

* ``0`` — scan completed with zero unsuppressed findings;
* ``1`` — at least one finding (or a failed ``--self-check``);
* ``2`` — usage error (unknown rule selector, missing path, ...).

Output formats:

* ``human`` (default) — one ``path:line: RULE message`` per finding
  plus a summary line;
* ``json`` — the full :class:`~repro.lint.engine.LintReport` wire
  form (``repro.lint-report/v1``), suppressions included, so the
  zero-findings gate leaves an auditable artifact;
* ``github`` — GitHub Actions workflow annotations
  (``::error file=...``), one per finding.

``--self-check`` audits the rule catalog itself: every registered
rule id must be documented in ``docs/LINT.md`` and every id-shaped
token in the catalog must name a registered rule — the same
single-source-of-truth discipline the R1 rules impose on the engine
vocabularies, applied to the linter.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from ..errors import ConfigurationError
from .engine import find_project_root, run_lint
from .registry import all_rules, available_rules

#: Where the rule catalog lives, relative to the project root.
CATALOG_PATH = "docs/LINT.md"

_CATALOG_ID_RE = re.compile(r"`([A-Z]\d{3})`")


def _print_human(report) -> None:
    for finding in report.findings:
        print(
            f"{finding.path}:{finding.line}: {finding.rule_id} "
            f"{finding.message}"
        )
    status = "clean" if report.clean else (
        f"{len(report.findings)} finding(s)"
    )
    print(
        f"repro-lint: {status} — {report.files_scanned} file(s), "
        f"{len(report.rules_run)} rule(s), "
        f"{len(report.suppressed)} audited suppression(s)"
    )


def _print_github(report) -> None:
    for finding in report.findings:
        message = finding.message.replace("\n", " ")
        print(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col},title={finding.rule_id}::"
            f"{finding.rule_id} {message}"
        )
    print(
        f"repro-lint: {len(report.findings)} finding(s) across "
        f"{report.files_scanned} file(s)"
    )


def self_check(root: Path | None) -> int:
    """Registry <-> docs/LINT.md catalog agreement; 0 ok, 1 drift."""
    if root is None:
        print(
            "repro-lint --self-check: no project root with DESIGN.md "
            "found",
            file=sys.stderr,
        )
        return 1
    catalog_file = root / CATALOG_PATH
    if not catalog_file.is_file():
        print(
            f"repro-lint --self-check: {CATALOG_PATH} missing under "
            f"{root}",
            file=sys.stderr,
        )
        return 1
    catalog = catalog_file.read_text(encoding="utf-8")
    documented = set(_CATALOG_ID_RE.findall(catalog))
    registered = set(available_rules())
    drift = 0
    for rule_id in sorted(registered - documented):
        rule = all_rules()[rule_id]
        print(
            f"rule {rule_id} ({rule.title}) is registered but "
            f"missing from {CATALOG_PATH}"
        )
        drift += 1
    for rule_id in sorted(documented - registered):
        print(
            f"{CATALOG_PATH} documents {rule_id}, which is not a "
            "registered rule"
        )
        drift += 1
    if drift:
        return 1
    print(
        f"repro-lint --self-check: catalog and registry agree on "
        f"{len(registered)} rule(s)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static determinism & protocol invariant checker for the "
            "repro engine stack (rule catalog: docs/LINT.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (e.g. src/)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule families or ids (e.g. D1,W102); "
        "default: all rules",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "github"),
        default="human",
        help="finding output format (default: %(default)s)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="project root for documentation cross-checks "
        "(default: nearest ancestor containing DESIGN.md)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule catalog and exit",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="verify the rule registry and docs/LINT.md catalog "
        "agree, then exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            scope = "project" if rule.scope == "project" else "file"
            print(f"{rule_id}  [{scope:7s}] {rule.title}")
        return 0

    if args.self_check:
        root = (
            Path(args.root)
            if args.root is not None
            else find_project_root(args.paths or ["."])
        )
        return self_check(root)

    if not args.paths:
        parser.error("no paths to lint (try: repro-lint src/)")
    selectors = (
        [token for token in args.rules.split(",")]
        if args.rules is not None
        else None
    )
    try:
        report = run_lint(args.paths, rules=selectors, root=args.root)
    except ConfigurationError as error:
        parser.error(str(error))

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    elif args.format == "github":
        _print_github(report)
    else:
        _print_human(report)
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
