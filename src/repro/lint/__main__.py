"""``python -m repro.lint`` — same entry point as ``repro-lint``."""

from .cli import main

raise SystemExit(main())
