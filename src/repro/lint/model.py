"""Data model of the ``repro.lint`` static-analysis pass.

Three concerns live here, shared by every rule module:

* :class:`Finding` — one located diagnostic, with a lossless JSON wire
  form (``repro.lint-finding/v1``) so the CLI's ``--format json``
  output round-trips;
* :class:`SourceFile` — one parsed module plus everything a rule needs
  to reason about it: the AST, an import-resolution map, the
  engine/wire scope classification, and the file's inline
  suppressions;
* :class:`Suppression` — one ``# repro: allow[RULE-ID] reason``
  comment. Suppressions are *audited*: a missing reason and an allow
  that matches no finding are themselves findings (``L101`` /
  ``L102``), so the allow-list can only shrink toward honesty.

Scope model
-----------

The determinism invariants of ``docs/SCHEDULER.md`` bind the *engine
paths* — ``repro/core/``, ``repro/methods/``, ``repro/service/`` —
where any wall-clock or entropy leak changes published numbers. The
*wire modules* — ``methods/worker.py``, ``methods/executors.py``,
``methods/cache.py``, and everything under ``service/`` — additionally
carry the sealed single-write frame discipline. :func:`classify_scope`
maps a file path onto those sets; rules consult
:attr:`SourceFile.engine` / :attr:`SourceFile.wire` instead of
re-deriving paths.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: Wire-form schema tag for one serialized finding.
FINDING_SCHEMA = "repro.lint-finding/v1"

#: Engine paths: modules whose behaviour the determinism invariants of
#: docs/SCHEDULER.md bind bit-for-bit.
ENGINE_PREFIXES = ("repro/core/", "repro/methods/", "repro/service/")

#: Wire modules: every byte they emit must be a sealed single-write
#: frame (docs/SCHEDULER.md Layer 4; methods/cache.py append_record).
WIRE_FILES = frozenset(
    {
        "repro/methods/worker.py",
        "repro/methods/executors.py",
        "repro/methods/cache.py",
    }
)
WIRE_PREFIX = "repro/service/"

#: Inline-suppression syntax. The reason is mandatory (rule L101).
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9, ]+)\]\s*(.*?)\s*$"
)


def module_rel_path(path: Path) -> str:
    """Project-relative module path, anchored at the ``repro`` package.

    ``/any/prefix/src/repro/core/foo.py`` -> ``repro/core/foo.py``.
    Files outside a ``repro`` package keep their file name (they are
    never engine or wire scope).
    """
    parts = path.parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index:])
    return path.name


def classify_scope(rel: str) -> tuple[bool, bool]:
    """``(engine, wire)`` classification of a module-relative path."""
    engine = rel.startswith(ENGINE_PREFIXES)
    wire = rel in WIRE_FILES or rel.startswith(WIRE_PREFIX)
    return engine, wire


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule, a location, and what went wrong.

    ``suppressed``/``reason`` record the audit trail of an inline
    ``# repro: allow[...]`` — suppressed findings never gate, but they
    stay visible in the JSON artifact so reviews can see what was
    waved through and why.
    """

    rule_id: str
    path: str
    line: int
    message: str
    col: int = 0
    suppressed: bool = False
    reason: str | None = None

    @property
    def family(self) -> str:
        """Rule family (``"D101"`` -> ``"D1"``; meta rules -> ``"L1"``)."""
        return self.rule_id[:2]

    def to_dict(self) -> dict:
        """Lossless JSON wire form (``repro.lint-finding/v1``)."""
        data = {
            "schema": FINDING_SCHEMA,
            "rule": self.rule_id,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.reason is not None:
            data["reason"] = self.reason
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Inverse of :meth:`to_dict`; loud on schema mismatch."""
        if data.get("schema") != FINDING_SCHEMA:
            raise ValueError(
                f"expected {FINDING_SCHEMA!r}, got {data.get('schema')!r}"
            )
        return cls(
            rule_id=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data.get("col", 0)),
            message=str(data["message"]),
            suppressed=bool(data.get("suppressed", False)),
            reason=data.get("reason"),
        )


@dataclass
class Suppression:
    """One ``# repro: allow[ID, ...] reason`` comment."""

    line: int
    rule_ids: tuple[str, ...]
    reason: str
    used: bool = False


class ImportMap(ast.NodeVisitor):
    """Local-name -> dotted-module resolution for one module.

    Rules ask "is this call ``time.monotonic``?" without caring whether
    the module spelled it ``import time``, ``import time as t``, or
    ``from time import monotonic``. :meth:`resolve` normalizes an AST
    ``Name``/``Attribute`` chain to the canonical dotted path as a
    tuple (``("time", "monotonic")``, ``("numpy", "random", "seed")``)
    or ``None`` when the root is not an imported module.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._modules: dict[str, tuple[str, ...]] = {}
        self.visit(tree)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.partition(".")[0]
            target = alias.name if alias.asname else local
            self._modules[local] = tuple(target.split("."))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or not node.module:
            return  # relative imports are intra-package, never stdlib
        base = tuple(node.module.split("."))
        for alias in node.names:
            local = alias.asname or alias.name
            self._modules[local] = base + (alias.name,)

    def resolve(self, node: ast.AST) -> tuple[str, ...] | None:
        """Canonical dotted path of a Name/Attribute chain, or None."""
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._modules.get(node.id)
        if root is None:
            return None
        return root + tuple(reversed(chain))


@dataclass
class SourceFile:
    """One parsed module, ready for rules to inspect."""

    path: Path
    rel: str
    text: str
    tree: ast.Module
    imports: ImportMap
    engine: bool
    wire: bool
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    comment_lines: frozenset[int] = frozenset()

    @classmethod
    def parse(cls, path: Path) -> "SourceFile":
        """Read, parse, and classify one file (SyntaxError propagates)."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        rel = module_rel_path(path)
        engine, wire = classify_scope(rel)
        suppressions = {}
        # Real COMMENT tokens only — a docstring that merely *mentions*
        # the allow syntax must not read as a suppression.
        for token in tokenize.generate_tokens(
            io.StringIO(text).readline
        ):
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            number = token.start[0]
            rule_ids = tuple(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )
            suppressions[number] = Suppression(
                line=number,
                rule_ids=rule_ids,
                reason=match.group(2).strip(),
            )
        return cls(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            imports=ImportMap(tree),
            engine=engine,
            wire=wire,
            suppressions=suppressions,
            comment_lines=frozenset(
                number
                for number, line in enumerate(
                    text.splitlines(), start=1
                )
                if line.lstrip().startswith("#")
            ),
        )

    def suppression_for(self, finding: Finding) -> Suppression | None:
        """The allow covering ``finding``, if any.

        An allow applies from the flagged line itself or from anywhere
        in the contiguous block of comment lines directly above it (so
        a multi-line reason can open with the allow tag).
        """
        suppression = self.suppressions.get(finding.line)
        if suppression and finding.rule_id in suppression.rule_ids:
            return suppression
        probe = finding.line - 1
        while probe in self.comment_lines:
            suppression = self.suppressions.get(probe)
            if suppression and finding.rule_id in suppression.rule_ids:
                return suppression
            probe -= 1
        return None
