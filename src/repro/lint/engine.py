"""The lint engine: walk files, run rules, audit suppressions.

:func:`run_lint` is the one entry point the CLI, the tests, the CI
gate, and the benchmark runner all share. It parses every ``.py`` file
under the given paths into :class:`~repro.lint.model.SourceFile`\\ s,
runs the selected file rules on each and the selected project rules
once, then applies the inline-suppression audit:

* a finding covered by a ``# repro: allow[RULE-ID] reason`` on its
  line (or the line above) is moved to the *suppressed* list — it
  never gates, but stays in the report;
* ``L100`` — a file that does not parse is itself a finding (the
  linter refuses to silently skip what it cannot see);
* ``L101`` — an allow without a written reason: the suppression still
  applies, but the missing audit trail gates until someone writes
  down *why*;
* ``L102`` — an allow that matched no finding (emitted only when the
  full rule set ran, so ``--rules D1`` does not misread W-allows as
  stale).

The meta rules register like every other rule so the catalog audit
(``repro-lint --self-check``) covers them too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from .model import Finding, SourceFile
from .registry import Rule, register_rule, select_rules

#: Wire-form schema tag of one serialized lint report.
REPORT_SCHEMA = "repro.lint-report/v1"


@register_rule
class ParseErrorRule(Rule):
    rule_id = "L100"
    title = "every scanned file parses"
    rationale = (
        "a file the linter cannot parse is a file none of the "
        "invariant checks saw; skipping it silently would report "
        "clean on unchecked code"
    )


@register_rule
class SuppressionReasonRule(Rule):
    rule_id = "L101"
    title = "every suppression carries a reason"
    rationale = (
        "an allow is an audited exception; without a written reason "
        "the audit trail is empty and the exception cannot be "
        "reviewed"
    )


@register_rule
class UnusedSuppressionRule(Rule):
    rule_id = "L102"
    title = "no stale suppressions"
    rationale = (
        "an allow that matches no finding either outlived its fix or "
        "never worked; stale allows erode trust in the ones that "
        "matter"
    )


@dataclass
class Project:
    """Everything a project-scope rule may inspect."""

    root: Path | None
    files: dict[str, SourceFile] = field(default_factory=dict)
    _docs: dict[str, str | None] = field(default_factory=dict)

    def doc_text(self, rel: str) -> str | None:
        """Text of a root-relative doc file, or None when absent."""
        if rel not in self._docs:
            text = None
            if self.root is not None:
                path = self.root / rel
                if path.is_file():
                    text = path.read_text(encoding="utf-8")
            self._docs[rel] = text
        return self._docs[rel]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]
    suppressed: list[Finding]
    files_scanned: int
    rules_run: list[str]
    root: Path | None = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        """JSON wire form (``repro.lint-report/v1``)."""
        return {
            "schema": REPORT_SCHEMA,
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, sorted, deduplicated."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            found.add(path)
        else:
            raise ConfigurationError(f"no such file or directory: {raw}")
    return sorted(found)


def find_project_root(paths: Sequence[str | Path]) -> Path | None:
    """Nearest ancestor of the first path that holds DESIGN.md."""
    for raw in paths:
        probe = Path(raw).resolve()
        for candidate in (probe, *probe.parents):
            if (candidate / "DESIGN.md").is_file():
                return candidate
    return None


def run_lint(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[str] | None = None,
    root: str | Path | None = None,
) -> LintReport:
    """Lint ``paths`` with the selected rules; full audit applied.

    ``rules`` takes selectors as ``--rules`` does (families like
    ``"D1"`` or ids like ``"D101"``); ``None`` runs everything.
    ``root`` anchors the documentation cross-checks; by default the
    nearest ancestor directory containing ``DESIGN.md``.
    """
    selected = select_rules(rules)
    full_run = rules is None
    file_rules = [r for r in selected if r.scope == "file"]
    project_rules = [r for r in selected if r.scope == "project"]

    project_root = (
        Path(root) if root is not None else find_project_root(paths)
    )
    project = Project(root=project_root)
    raw_findings: list[Finding] = []

    files = discover_files(paths)
    for path in files:
        try:
            src = SourceFile.parse(path)
        except SyntaxError as error:
            raw_findings.append(
                Finding(
                    rule_id="L100",
                    path=str(path),
                    line=error.lineno or 1,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        project.files[src.rel] = src
        for rule in file_rules:
            raw_findings.extend(rule.check_file(src))

    for rule in project_rules:
        raw_findings.extend(rule.check_project(project))

    findings: list[Finding] = []
    suppressed: list[Finding] = []
    reasonless_seen: set[tuple[str, int]] = set()
    for finding in raw_findings:
        src = project.files.get(finding.path)
        suppression = (
            src.suppression_for(finding) if src is not None else None
        )
        if suppression is None:
            findings.append(finding)
            continue
        suppression.used = True
        suppressed.append(
            Finding(
                rule_id=finding.rule_id,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                suppressed=True,
                reason=suppression.reason or None,
            )
        )
        key = (finding.path, suppression.line)
        if not suppression.reason and key not in reasonless_seen:
            reasonless_seen.add(key)
            findings.append(
                Finding(
                    rule_id="L101",
                    path=finding.path,
                    line=suppression.line,
                    message=(
                        f"suppression of {finding.rule_id} has no "
                        "written reason"
                    ),
                )
            )
    if full_run:
        for src in project.files.values():
            for suppression in src.suppressions.values():
                if not suppression.used:
                    findings.append(
                        Finding(
                            rule_id="L102",
                            path=src.rel,
                            line=suppression.line,
                            message=(
                                "suppression "
                                f"{list(suppression.rule_ids)} "
                                "matches no finding; remove it"
                            ),
                        )
                    )

    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    suppressed.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return LintReport(
        findings=findings,
        suppressed=suppressed,
        files_scanned=len(files),
        rules_run=[r.rule_id for r in selected],
        root=project_root,
    )
