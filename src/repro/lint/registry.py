"""Rule registry: id -> :class:`Rule`, mirroring ``methods/registry.py``.

A lint rule is a named, documented check. File rules run once per
parsed :class:`~repro.lint.model.SourceFile`; project rules run once
per lint invocation with the whole :class:`~repro.lint.engine.Project`
(they cross-check source against documentation, or one module against
another). New rules plug in with the :func:`register_rule` decorator
and are immediately visible to the engine, the CLI's ``--rules``
selector, ``--list-rules``, and the ``--self-check`` catalog audit —
no call-site edits, exactly like ``@register_method``.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterable

from ..errors import ConfigurationError
from .model import Finding, SourceFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Project

#: Rule ids are a family letter+digit plus a two-digit serial: D101.
RULE_ID_RE = re.compile(r"^[A-Z]\d{3}$")


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and override exactly one of
    :meth:`check_file` (``scope = "file"``) or :meth:`check_project`
    (``scope = "project"``). ``rationale`` is the sentence the catalog
    (``docs/LINT.md``) and ``--list-rules`` print — it should name the
    invariant the rule defends, not restate the pattern it greps for.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    scope: str = "file"

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, project: "Project") -> Iterable[Finding]:
        return ()

    def finding(
        self, path: str, line: int, message: str, col: int = 0
    ) -> Finding:
        """Convenience constructor stamping this rule's id."""
        return Finding(
            rule_id=self.rule_id,
            path=path,
            line=line,
            col=col,
            message=message,
        )


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering one rule under its ``rule_id``."""
    rule = cls()
    if not RULE_ID_RE.match(rule.rule_id):
        raise ConfigurationError(
            f"rule id {rule.rule_id!r} must match {RULE_ID_RE.pattern}"
        )
    if rule.rule_id in _RULES:
        raise ConfigurationError(
            f"duplicate rule registration {rule.rule_id!r}"
        )
    if not rule.title or not rule.rationale:
        raise ConfigurationError(
            f"rule {rule.rule_id} needs a title and a rationale"
        )
    _RULES[rule.rule_id] = rule
    return cls


def available_rules() -> list[str]:
    """Sorted ids of every registered rule."""
    return sorted(_RULES)


def all_rules() -> dict[str, Rule]:
    """Every registered rule keyed by id."""
    return dict(_RULES)


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by exact id."""
    if rule_id not in _RULES:
        raise ConfigurationError(
            f"unknown rule {rule_id!r}; available: {available_rules()}"
        )
    return _RULES[rule_id]


def select_rules(selectors: Iterable[str] | None) -> list[Rule]:
    """Expand ``--rules`` selectors to rule objects.

    A selector is either a full id (``D101``) or a family prefix
    (``D1``, ``W1``); ``None`` selects everything. Unknown selectors
    fail loudly with the available families and ids.
    """
    if selectors is None:
        return [rule for _, rule in sorted(_RULES.items())]
    selected: dict[str, Rule] = {}
    for selector in selectors:
        token = selector.strip()
        matches = {
            rule_id: rule
            for rule_id, rule in _RULES.items()
            if rule_id == token or rule_id.startswith(token)
        }
        if not matches or not token:
            families = sorted({rule_id[:2] for rule_id in _RULES})
            raise ConfigurationError(
                f"unknown rule selector {selector!r}; families: "
                f"{families}, rules: {available_rules()}"
            )
        selected.update(matches)
    return [rule for _, rule in sorted(selected.items())]
