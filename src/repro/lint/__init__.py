"""``repro.lint`` — static determinism & protocol invariant checker.

The engine stack's reliability guarantees (bit-identical ResultSets
across kernels x executors x workers x shards, SeedSequence-only
randomness, sealed single-write wire frames, documented registry
vocabularies — docs/SCHEDULER.md) are runtime-tested by the
conformance suites, but a regression that only manifests on a 32-worker
fleet slips past a 1-CPU CI runner. This package checks the invariants
at the AST instead, so violations are caught at commit time:

* rule families ``D1`` (determinism), ``W1`` (wire discipline), ``R1``
  (registry/docs consistency), ``C1`` (cache-token discipline), and
  the ``L1`` meta rules auditing the linter's own suppressions —
  catalog with rationale in ``docs/LINT.md``;
* a :func:`~repro.lint.registry.register_rule` registry mirroring
  ``methods/registry.py``, so new rules plug in without call-site
  edits;
* inline audited suppressions: ``# repro: allow[D101] reason``;
* the ``repro-lint`` CLI (``repro.lint.cli``) with human, JSON, and
  GitHub-annotation output and a ``--self-check`` catalog audit.

Library use::

    from repro.lint import run_lint
    report = run_lint(["src/"])
    assert report.clean, report.findings
"""

from __future__ import annotations

from .engine import LintReport, Project, run_lint
from .model import Finding, SourceFile, Suppression
from .registry import (
    Rule,
    all_rules,
    available_rules,
    get_rule,
    register_rule,
    select_rules,
)

# Importing the rule modules is what populates the registry.
from . import rules_cache  # noqa: E402,F401  (registration side effect)
from . import rules_determinism  # noqa: E402,F401
from . import rules_registry  # noqa: E402,F401
from . import rules_wire  # noqa: E402,F401

__all__ = [
    "Finding",
    "LintReport",
    "Project",
    "Rule",
    "SourceFile",
    "Suppression",
    "all_rules",
    "available_rules",
    "get_rule",
    "register_rule",
    "run_lint",
    "select_rules",
]
