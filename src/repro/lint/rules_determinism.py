"""D1 — determinism rules.

The engine's core contract (docs/SCHEDULER.md, "Determinism
invariants") is that every ResultSet is a pure function of the run
configuration: bit-identical across kernels, executors, worker counts,
shard shapes, and reruns. Anything that injects wall-clock time,
process entropy, or interpreter-dependent ordering into a computation
breaks that contract in ways a 1-CPU CI runner will never reproduce —
a regression that only manifests on a 32-worker fleet must be caught
at the AST, not in production. These rules flag every such source:

* ``D101`` — wall-clock reads (``time.time``/``monotonic``/
  ``perf_counter``/``sleep``, ``datetime.now``/``utcnow``/``today``).
  Flagged repo-wide: engine paths must be clean; elsewhere an audited
  ``# repro: allow[D101] reason`` documents why the clock never
  reaches a result.
* ``D102`` — non-seedable entropy: the stdlib ``random`` module,
  ``os.urandom``, ``secrets``, ``uuid.uuid1``/``uuid4``.
* ``D103`` — legacy NumPy randomness: ``np.random.seed``/
  ``RandomState`` and the global-state draw functions, plus *unseeded*
  ``default_rng()``/``SeedSequence()``. All engine randomness flows
  from explicit ``SeedSequence`` spawns (DESIGN.md, "Trial-chunked
  Monte-Carlo reduction").
* ``D104`` — ``id()`` in engine paths: object identity is
  allocator-dependent; identity-keyed containers were the PR 2 cache
  bug, replaced by content fingerprints.
* ``D105`` — direct iteration over a set display / ``set()`` /
  ``frozenset()`` / set comprehension in engine paths: set order is
  hash-seed- and history-dependent, so any ordered fold fed from it is
  nondeterministic. Wrap in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .model import Finding, SourceFile
from .registry import Rule, register_rule

#: time-module attributes that read or depend on the wall clock.
_WALLCLOCK_TIME = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time",
        "process_time_ns", "sleep",
    }
)

#: datetime constructors that capture "now".
_WALLCLOCK_DATETIME = frozenset({"now", "utcnow", "today"})

#: numpy.random module-level functions that use (or reset) the hidden
#: global generator, forbidden in favour of SeedSequence spawns.
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed", "RandomState", "rand", "randn", "randint", "random",
        "random_sample", "ranf", "sample", "choice", "uniform",
        "normal", "standard_normal", "exponential", "shuffle",
        "permutation", "bytes", "get_state", "set_state",
    }
)

#: numpy.random entry points that are fine *seeded* but flagged bare.
_SEEDABLE_NP_RANDOM = frozenset({"default_rng", "SeedSequence"})


def _calls(tree: ast.AST) -> Iterable[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register_rule
class WallClockRule(Rule):
    rule_id = "D101"
    title = "no wall-clock reads"
    rationale = (
        "results must be pure functions of the run configuration; a "
        "clock read that reaches an estimate, a cache key, or a wire "
        "record varies across hosts and reruns"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        for call in _calls(src.tree):
            path = src.imports.resolve(call.func)
            if path is None:
                continue
            if path[0] == "time" and path[-1] in _WALLCLOCK_TIME:
                spelled = ".".join(path)
            elif (
                path[0] == "datetime"
                and path[-1] in _WALLCLOCK_DATETIME
            ):
                spelled = ".".join(path)
            else:
                continue
            where = "engine path" if src.engine else "non-engine path"
            yield self.finding(
                src.rel,
                call.lineno,
                f"wall-clock call {spelled}() in {where} "
                f"{src.rel}; results must not depend on the clock",
                col=call.col_offset,
            )


@register_rule
class EntropyRule(Rule):
    rule_id = "D102"
    title = "no non-seedable entropy"
    rationale = (
        "os.urandom, secrets, uuid1/uuid4, and the stdlib random "
        "module cannot be replayed from a recorded seed, so any value "
        "they touch is unreproducible by construction"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        for call in _calls(src.tree):
            path = src.imports.resolve(call.func)
            if path is None:
                continue
            if (
                path[0] in ("random", "secrets")
                or path[:2] == ("os", "urandom")
                or (
                    path[0] == "uuid"
                    and path[-1] in ("uuid1", "uuid4")
                )
            ):
                yield self.finding(
                    src.rel,
                    call.lineno,
                    f"non-seedable entropy {'.'.join(path)}(); use "
                    "numpy SeedSequence-spawned generators so the "
                    "value replays from the recorded seed",
                    col=call.col_offset,
                )


@register_rule
class NumpyRandomRule(Rule):
    rule_id = "D103"
    title = "SeedSequence-only NumPy randomness"
    rationale = (
        "np.random.seed/RandomState and the global draw functions "
        "share hidden mutable state across threads and call sites; "
        "chunk determinism requires per-chunk SeedSequence spawns "
        "(DESIGN.md, trial-chunked reduction)"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        for call in _calls(src.tree):
            path = src.imports.resolve(call.func)
            if path is None or path[:2] != ("numpy", "random"):
                continue
            tail = path[-1]
            if len(path) == 3 and tail in _LEGACY_NP_RANDOM:
                yield self.finding(
                    src.rel,
                    call.lineno,
                    f"legacy global-state np.random.{tail}(); draw "
                    "from an explicit SeedSequence-spawned Generator "
                    "instead",
                    col=call.col_offset,
                )
            elif (
                len(path) == 3
                and tail in _SEEDABLE_NP_RANDOM
                and not call.args
                and not call.keywords
            ):
                yield self.finding(
                    src.rel,
                    call.lineno,
                    f"unseeded np.random.{tail}() draws OS entropy; "
                    "pass an explicit seed or spawned SeedSequence",
                    col=call.col_offset,
                )


@register_rule
class IdentityKeyRule(Rule):
    rule_id = "D104"
    title = "no id() in engine paths"
    rationale = (
        "object identity is allocator-dependent and silently reused "
        "after garbage collection; cache keys and container keys must "
        "be content fingerprints (the PR 2 id()-key bug)"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        if not src.engine:
            return
        for call in _calls(src.tree):
            func = call.func
            if (
                isinstance(func, ast.Name)
                and func.id == "id"
                and len(call.args) == 1
                and not call.keywords
            ):
                yield self.finding(
                    src.rel,
                    call.lineno,
                    "id() in an engine path; identity is not stable "
                    "across processes or reruns — key on content "
                    "fingerprints",
                    col=call.col_offset,
                )


def _is_set_expr(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a set with unspecified order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


#: Order-sensitive consumers of an iterable argument.
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate"})


@register_rule
class SetIterationRule(Rule):
    rule_id = "D105"
    title = "no set iteration feeding ordered folds"
    rationale = (
        "set iteration order depends on hash seeding and insertion "
        "history; the engine folds results in explicit index order, "
        "so sets must pass through sorted() before any ordered "
        "consumption"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        if not src.engine:
            return
        for node in ast.walk(src.tree):
            sites: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sites.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                sites.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDERED_CONSUMERS
                and node.args
            ):
                sites.append(node.args[0])
            for site in sites:
                if _is_set_expr(site):
                    yield self.finding(
                        src.rel,
                        site.lineno,
                        "iteration directly over a set in an engine "
                        "path; wrap in sorted(...) so downstream "
                        "order is deterministic",
                        col=site.col_offset,
                    )
