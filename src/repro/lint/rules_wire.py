"""W1 — wire-discipline rules.

Every byte the engine stack puts on a wire or a shared log leaves
through a *sealed single-write frame*: the payload is assembled and
length/shape-checked by one helper, then written with exactly one
``sendall``/``os.write`` call, so a peer (or a crash) can never
observe half a frame (docs/SCHEDULER.md Layer 4; the ledger/cache
torn-entry discipline in ``methods/cache.py``). These rules bind the
wire modules — ``methods/worker.py``, ``methods/executors.py``,
``methods/cache.py``, and everything under ``service/`` — to that
discipline statically:

* ``W101`` — a raw write whose payload is not (transitively) the
  return value of a sealed frame helper;
* ``W102`` — a frame assembled inline at the write site (bytes/str
  literal, concatenation, f-string, ``%``/``.format``) instead of
  through a helper — the classic route to multiple writes per frame;
* ``W103`` — ``socket.send()``: a partial-write primitive; a short
  write tears the frame. Use ``sendall`` with one sealed payload.

"Sealed" is computed, not annotated: the base helpers below are the
trusted frame builders, and any same-module function whose every
``return`` hands back a sealed expression is sealed by induction (so
``dispatch`` handlers returning ``response_bytes(...)`` need no
annotations). The bodies of base helpers themselves are exempt — they
are the one place raw bytes are legal.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .model import Finding, SourceFile
from .registry import Rule, register_rule

#: The trusted frame builders: every one returns a single complete
#: frame (length-prefixed executor frame, newline-sealed ledger
#: record, HTTP response, SSE event). Their *bodies* hold the only
#: legal raw writes.
SEALED_HELPERS = frozenset(
    {
        "encode_frame",      # methods/executors.py  repro.executor/v1
        "append_record",     # methods/cache.py      ledger records
        "response_bytes",    # service/http.py       HTTP responses
        "sse_preamble",      # service/http.py       SSE stream head
        "sse_event",         # service/http.py       SSE events
    }
)

#: Write-call attribute names treated as raw stream writes.
_WRITE_ATTRS = frozenset({"write", "sendall", "sendto"})


def _terminal_name(func: ast.AST) -> str | None:
    """Bare name of a called function (``a.b.c()`` -> ``"c"``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_inline_payload(node: ast.AST) -> bool:
    """Whether the payload is assembled at the write site."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (bytes, str))
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp):
        return True  # b"a" + x, "%d:%s" % parts, ...
    if isinstance(node, ast.Call):
        name = _terminal_name(node.func)
        return name in ("format", "join", "encode")
    return False


class _ModuleSeals:
    """Sealed-function inference for one module.

    Starts from :data:`SEALED_HELPERS` and closes over same-module
    functions whose every ``return expr`` is a sealed expression, to a
    fixpoint. Name payloads are sealed when the enclosing function
    assigns them from a sealed call.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._functions = {
            node.name: node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.sealed = set(SEALED_HELPERS)
        changed = True
        while changed:
            changed = False
            for name, fn in self._functions.items():
                if name in self.sealed:
                    continue
                returns = [
                    node
                    for node in ast.walk(fn)
                    if isinstance(node, ast.Return)
                    and node.value is not None
                ]
                if returns and all(
                    self.is_sealed_expr(node.value, fn)
                    for node in returns
                ):
                    self.sealed.add(name)
                    changed = True

    def is_sealed_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and _terminal_name(node.func) in self.sealed
        )

    def is_sealed_expr(
        self, node: ast.AST, scope: ast.AST | None
    ) -> bool:
        """Sealed call, or a name bound to one in ``scope``."""
        if self.is_sealed_call(node):
            return True
        if isinstance(node, ast.IfExp):
            return self.is_sealed_expr(
                node.body, scope
            ) and self.is_sealed_expr(node.orelse, scope)
        if isinstance(node, ast.Name) and scope is not None:
            for stmt in ast.walk(scope):
                if (
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == node.id
                        for t in stmt.targets
                    )
                    and self.is_sealed_call(stmt.value)
                ):
                    return True
        return False


def _write_sites(
    src: SourceFile,
) -> Iterable[tuple[ast.Call, ast.AST, ast.AST | None]]:
    """``(call, payload, enclosing_function)`` for every raw write.

    Covers ``<stream>.write(x)`` / ``.sendall(x)`` (one positional
    argument), ``.sendto(x, addr)``, and ``os.write(fd, x)``. Sites
    inside the body of a base sealed helper are skipped — those bodies
    *are* the single-write discipline.
    """
    enclosing: dict[ast.AST, ast.AST] = {}
    for fn in ast.walk(src.tree):
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    enclosing.setdefault(node, fn)
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        fn = enclosing.get(node)
        if (
            fn is not None
            and getattr(fn, "name", None) in SEALED_HELPERS
        ):
            continue
        resolved = src.imports.resolve(node.func)
        if resolved is not None and resolved[:2] == ("os", "write"):
            if len(node.args) == 2:
                yield node, node.args[1], fn
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        if attr in ("write", "sendall") and len(node.args) == 1:
            yield node, node.args[0], fn
        elif attr == "sendto" and len(node.args) == 2:
            yield node, node.args[0], fn


@register_rule
class SealedWriteRule(Rule):
    rule_id = "W101"
    title = "writes route through sealed frame helpers"
    rationale = (
        "a frame must leave in one write of helper-sealed bytes so a "
        "receiver can always tell a whole record from a torn one "
        "(docs/SCHEDULER.md Layer 4; ledger/cache torn-entry "
        "discipline)"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        if not src.wire:
            return
        seals = _ModuleSeals(src.tree)
        for call, payload, fn in _write_sites(src):
            if _is_inline_payload(payload):
                continue  # W102's finding, not ours
            if seals.is_sealed_expr(payload, fn):
                continue
            yield self.finding(
                src.rel,
                call.lineno,
                "raw write whose payload is not sealed-helper output; "
                "build the frame with one of "
                f"{sorted(SEALED_HELPERS)} and write it once",
                col=call.col_offset,
            )


@register_rule
class InlineFrameRule(Rule):
    rule_id = "W102"
    title = "no inline frame assembly at write sites"
    rationale = (
        "payload bytes assembled at the write site (literals, "
        "concatenation, f-strings) are how a frame ends up split "
        "across multiple writes; the sealed helpers are the only "
        "frame builders"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        if not src.wire:
            return
        for call, payload, _fn in _write_sites(src):
            if _is_inline_payload(payload):
                yield self.finding(
                    src.rel,
                    call.lineno,
                    "frame assembled inline at the write site; route "
                    "the payload through a sealed frame helper",
                    col=call.col_offset,
                )


@register_rule
class PartialSendRule(Rule):
    rule_id = "W103"
    title = "no partial-write socket send()"
    rationale = (
        "socket.send may write a prefix and return; the peer then "
        "reads a torn frame — sendall with one sealed payload is the "
        "only whole-frame primitive"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        if not src.wire:
            return
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "send"
                and len(node.args) == 1
                and not node.keywords
            ):
                yield self.finding(
                    src.rel,
                    node.lineno,
                    ".send() is a partial-write primitive; use "
                    "sendall with one sealed frame",
                    col=node.col_offset,
                )
