"""R1 — registry/documentation consistency rules.

The repo's registries are its public vocabulary: estimation methods
(``@register_method``), executor backends (``register_executor``),
progress-event kinds (``methods/progress.py``), cross-shard ledger
record kinds (``methods/ledger.py``), and the wire-schema tags every
protocol speaks. DESIGN.md and ``docs/`` promise that each vocabulary
is documented in full; these rules make the promise a static check by
cross-referencing the AST of the scanned sources against the doc
texts — generalizing the ad-hoc guards that used to live in
``tests/test_docs_consistency.py`` (which is now a thin
``repro-lint --rules R1`` invocation).

* ``R100`` — the referenced documentation files exist at all;
* ``R101`` — every registered method name appears in DESIGN.md *and*
  README.md;
* ``R102`` — every registered executor backend name appears in
  DESIGN.md;
* ``R103`` — every progress-event kind is in DESIGN.md's vocabulary
  table (backticked) and in the progress module's docstrings;
* ``R104`` — every ledger record kind is in DESIGN.md (backticked);
* ``R105`` — every progress-event constant is actually used by the
  batch engine (a stale constant documents a kind nothing emits);
* ``R106`` — every wire-schema tag (``*_SCHEMA = "repro.<x>/v<n>"``)
  appears in the documentation set.

Findings anchor at the registration/constant site in the *source*, so
a missing doc entry is attributed to the code that demands it.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterable

from .model import Finding
from .registry import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Project

#: Documentation files the rules cross-reference (project-relative).
REQUIRED_DOCS = ("README.md", "DESIGN.md", "docs/SCHEDULER.md")

#: Where a wire-schema tag may be documented.
SCHEMA_DOC_SET = (
    "README.md", "DESIGN.md", "docs/SCHEDULER.md", "docs/SERVICE.md",
    "docs/LINT.md",
)

_SCHEMA_TAG_RE = re.compile(r"^repro\.[a-z0-9-]+/v\d+$")


def _word_in(name: str, text: str) -> bool:
    """Whole-word occurrence (``avf`` must not match ``avf_sofr``)."""
    return (
        re.search(
            rf"(?<![A-Za-z0-9_-]){re.escape(name)}(?![A-Za-z0-9_-])",
            text,
        )
        is not None
    )


def _str_arg(node: ast.Call) -> str | None:
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


def _terminal(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def registered_methods(project: "Project") -> list[tuple[str, str, int]]:
    """``(name, rel, line)`` for every ``@register_method("name")``."""
    found = []
    for rel, src in sorted(project.files.items()):
        for node in ast.walk(src.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for decorator in node.decorator_list:
                if (
                    isinstance(decorator, ast.Call)
                    and _terminal(decorator.func) == "register_method"
                ):
                    name = _str_arg(decorator)
                    if name:
                        found.append((name, rel, decorator.lineno))
    return found


def registered_executors(project: "Project") -> list[tuple[str, str, int]]:
    """``(name, rel, line)`` for every ``register_executor(Cls())``.

    The backend's name is its class-level ``name = "..."`` attribute,
    resolved within the registering module.
    """
    found = []
    for rel, src in sorted(project.files.items()):
        class_names = {}
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.targets[0].id == "name"
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str)
                    ):
                        class_names[node.name] = stmt.value.value
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and _terminal(node.func) == "register_executor"
                and node.args
                and isinstance(node.args[0], ast.Call)
            ):
                cls = _terminal(node.args[0].func)
                name = class_names.get(cls or "")
                if name:
                    found.append((name, rel, node.lineno))
    return found


def _module_constants(
    project: "Project", suffix: str
) -> list[tuple[str, str, str, int]]:
    """``(const_name, value, rel, line)`` for vocabulary constants.

    A vocabulary constant is a module-level ``UPPER = "string"``
    assignment in the module whose path ends with ``suffix``; schema
    tags (values containing ``/``) are a different vocabulary (R106)
    and are excluded here.
    """
    found = []
    for rel, src in sorted(project.files.items()):
        if not rel.endswith(suffix):
            continue
        for node in src.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id.isupper()
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
                and "/" not in node.value.value
            ):
                found.append(
                    (
                        node.targets[0].id,
                        node.value.value,
                        rel,
                        node.lineno,
                    )
                )
    return found


def progress_kinds(project: "Project") -> list[tuple[str, str, str, int]]:
    return _module_constants(project, "methods/progress.py")


def ledger_kinds(project: "Project") -> list[tuple[str, str, str, int]]:
    return _module_constants(project, "methods/ledger.py")


def _docstrings(src) -> str:
    """Module docstring + every class docstring of one source file."""
    texts = [ast.get_docstring(src.tree) or ""]
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ClassDef):
            texts.append(ast.get_docstring(node) or "")
    return "\n".join(texts)


@register_rule
class RequiredDocsRule(Rule):
    rule_id = "R100"
    title = "referenced documentation files exist"
    scope = "project"
    rationale = (
        "the vocabulary cross-checks below are only meaningful when "
        "DESIGN.md, README.md, and docs/SCHEDULER.md are actually "
        "present at the project root"
    )

    def check_project(self, project: "Project") -> Iterable[Finding]:
        for doc in REQUIRED_DOCS:
            if project.doc_text(doc) is None:
                yield self.finding(
                    doc, 1, f"required documentation file {doc} not "
                    "found at the project root"
                )


@register_rule
class MethodsDocumentedRule(Rule):
    rule_id = "R101"
    title = "registered methods documented"
    scope = "project"
    rationale = (
        "every @register_method name is user-facing CLI/API "
        "vocabulary; DESIGN.md and README.md must list it or users "
        "discover methods only by reading adapters"
    )

    def check_project(self, project: "Project") -> Iterable[Finding]:
        for doc in ("DESIGN.md", "README.md"):
            text = project.doc_text(doc)
            if text is None:
                continue  # R100's finding
            for name, rel, line in registered_methods(project):
                if not _word_in(name, text):
                    yield self.finding(
                        rel, line,
                        f"registered method {name!r} missing from "
                        f"{doc}",
                    )


@register_rule
class ExecutorsDocumentedRule(Rule):
    rule_id = "R102"
    title = "registered executors documented"
    scope = "project"
    rationale = (
        "executor backend names legalize --executor spellings "
        "everywhere; DESIGN.md's execution-layer section must name "
        "each registered backend"
    )

    def check_project(self, project: "Project") -> Iterable[Finding]:
        text = project.doc_text("DESIGN.md")
        if text is None:
            return
        for name, rel, line in registered_executors(project):
            if not _word_in(name, text):
                yield self.finding(
                    rel, line,
                    f"registered executor {name!r} missing from "
                    "DESIGN.md",
                )


@register_rule
class ProgressKindsDocumentedRule(Rule):
    rule_id = "R103"
    title = "progress-event kinds documented"
    scope = "project"
    rationale = (
        "the progress-event vocabulary is both an observability "
        "contract and the service's SSE wire format; DESIGN.md's "
        "table and the module docstrings must carry every kind"
    )

    def check_project(self, project: "Project") -> Iterable[Finding]:
        design = project.doc_text("DESIGN.md")
        for const, value, rel, line in progress_kinds(project):
            if design is not None and f"`{value}`" not in design:
                yield self.finding(
                    rel, line,
                    f"progress-event kind {const} = {value!r} missing "
                    "from DESIGN.md's vocabulary table",
                )
            docs = _docstrings(project.files[rel])
            if f'"{value}"' not in docs:
                yield self.finding(
                    rel, line,
                    f"progress-event kind {const} = {value!r} missing "
                    "from the progress module/class docstrings",
                )


@register_rule
class LedgerKindsDocumentedRule(Rule):
    rule_id = "R104"
    title = "ledger record kinds documented"
    scope = "project"
    rationale = (
        "ledger records are replayed bit-for-bit across shard fleets; "
        "an undocumented record kind cannot be audited against "
        "DESIGN.md's cross-shard protocol"
    )

    def check_project(self, project: "Project") -> Iterable[Finding]:
        design = project.doc_text("DESIGN.md")
        if design is None:
            return
        for const, value, rel, line in ledger_kinds(project):
            if f"`{value}`" not in design:
                yield self.finding(
                    rel, line,
                    f"ledger record kind {const} = {value!r} missing "
                    "from DESIGN.md",
                )


@register_rule
class StaleProgressKindRule(Rule):
    rule_id = "R105"
    title = "no stale progress-event constants"
    scope = "project"
    rationale = (
        "a vocabulary constant the batch engine never emits documents "
        "an event that does not exist; the constant must appear in "
        "methods/batch.py or be removed"
    )

    def check_project(self, project: "Project") -> Iterable[Finding]:
        batch = None
        for rel, src in project.files.items():
            if rel.endswith("methods/batch.py"):
                batch = src.text
                break
        if batch is None:
            return
        for const, value, rel, line in progress_kinds(project):
            if not _word_in(const, batch):
                yield self.finding(
                    rel, line,
                    f"progress-event constant {const} ({value!r}) is "
                    "never used by the batch engine",
                )


@register_rule
class SchemaTagsDocumentedRule(Rule):
    rule_id = "R106"
    title = "wire-schema tags documented"
    scope = "project"
    rationale = (
        "every versioned wire/artifact schema tag is a compatibility "
        "promise; a tag absent from the docs cannot be honoured by "
        "anyone implementing the other end"
    )

    def check_project(self, project: "Project") -> Iterable[Finding]:
        docs = [
            text
            for doc in SCHEMA_DOC_SET
            if (text := project.doc_text(doc)) is not None
        ]
        if not docs:
            return
        for rel, src in sorted(project.files.items()):
            for node in src.tree.body:
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id.isupper()
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                    and _SCHEMA_TAG_RE.match(node.value.value)
                ):
                    continue
                tag = node.value.value
                if not any(tag in text for text in docs):
                    yield self.finding(
                        rel, node.lineno,
                        f"wire-schema tag {tag!r} "
                        f"({node.targets[0].id}) missing from the "
                        f"documentation set {list(SCHEMA_DOC_SET)}",
                    )
