"""C1 — cache-token discipline rules.

``mc_token`` (``methods/cache.py``) is the cache key fragment that
states which Monte-Carlo settings produced a number. Two invariants
keep warm caches and shard merges honest:

* **Tokens only grow.** Provenance tags (``+realloc``, ``+xshard``)
  are appended, never rewritten — a mutation that edits or replaces a
  token would let ``merge_result_sets`` mix artifacts of different
  provenance, the exact corruption the merge-refusal tests exist to
  prevent. ``C101`` flags any rebinding of a token-carrying variable
  that is not an append of a ``"+"``-prefixed tag.

* **Every config field is accounted for.** A ``MonteCarloConfig``
  field either joins the token (changing it invalidates exactly the
  affected cache entries) or is *proven* bit-identity-preserving and
  carries an explicit ``# repro: allow[C102] <proof>`` annotation on
  its definition (the ``kernel`` field is the precedent: all kernels
  are property-tested bit-identical, so the field must stay out of
  the key or identical runs would stop sharing entries). ``C102``
  flags any field that does neither — the silently-wrong failure mode
  is a new knob that changes numbers while warm caches keep serving
  stale ones.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from .model import Finding, SourceFile
from .registry import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Project


def _is_token_source(node: ast.AST) -> bool:
    """An expression that *reads* a token: ``mc_token(...)`` or
    ``<x>.mc_token``."""
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        return name == "mc_token"
    if isinstance(node, ast.Attribute):
        return node.attr == "mc_token"
    return False


def _is_append_tag(node: ast.AST) -> bool:
    """A ``"+tag"`` appendable: literal, or a conditional of them."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str) and node.value.startswith("+")
    if isinstance(node, ast.IfExp):
        return _is_append_tag(node.body) and _is_append_tag(node.orelse)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _is_append_tag(node.left)
    if isinstance(node, ast.JoinedStr):
        values = node.values
        return bool(values) and _is_append_tag(values[0])
    return False


def _token_ok(node: ast.AST, names: set[str]) -> bool:
    """Whether a (re)binding keeps token provenance intact."""
    if _is_token_source(node):
        return True
    if isinstance(node, ast.Name) and node.id in names:
        return True
    if isinstance(node, ast.IfExp):
        return _token_ok(node.body, names) and _token_ok(
            node.orelse, names
        )
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _token_ok(node.left, names) and _is_append_tag(
            node.right
        )
    return False


@register_rule
class TokenAppendOnlyRule(Rule):
    rule_id = "C101"
    title = "mc_token mutations are append-only"
    scope = "file"
    rationale = (
        "provenance tags (+realloc, +xshard) append to the token so "
        "merge_result_sets can refuse mixed-provenance shards; a "
        "rewritten token forges provenance and corrupts warm caches"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        functions = [
            node
            for node in ast.walk(src.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for fn in functions:
            token_names: set[str] = set()
            for stmt in ast.walk(fn):
                if isinstance(stmt, ast.Assign):
                    targets = [
                        t
                        for t in stmt.targets
                        if isinstance(t, ast.Name)
                    ]
                    if _is_token_source(stmt.value):
                        token_names.update(t.id for t in targets)
                        continue
                    for target in targets:
                        if target.id in token_names and not _token_ok(
                            stmt.value, token_names
                        ):
                            yield self.finding(
                                src.rel,
                                stmt.lineno,
                                f"token variable {target.id!r} "
                                "rebound to a non-token value; "
                                "mc_token provenance must only grow "
                                "by '+tag' appends",
                                col=stmt.col_offset,
                            )
                elif isinstance(stmt, ast.AugAssign):
                    target = stmt.target
                    if (
                        isinstance(target, ast.Name)
                        and target.id in token_names
                    ):
                        if not isinstance(
                            stmt.op, ast.Add
                        ) or not _is_append_tag(stmt.value):
                            yield self.finding(
                                src.rel,
                                stmt.lineno,
                                f"token variable {target.id!r} "
                                "mutated with a non-append value; "
                                "only '+tag' string appends are "
                                "legal",
                                col=stmt.col_offset,
                            )
                    elif (
                        isinstance(target, ast.Attribute)
                        and target.attr == "mc_token"
                    ):
                        if not isinstance(
                            stmt.op, ast.Add
                        ) or not _is_append_tag(stmt.value):
                            yield self.finding(
                                src.rel,
                                stmt.lineno,
                                "mc_token attribute mutated with a "
                                "non-append value",
                                col=stmt.col_offset,
                            )


@register_rule
class TokenCoverageRule(Rule):
    rule_id = "C102"
    title = "MonteCarloConfig fields join the cache token"
    scope = "project"
    rationale = (
        "a config field outside the token makes warm caches serve "
        "numbers the new setting no longer produces; a field may stay "
        "out only with a written bit-identity proof "
        "(# repro: allow[C102] ...) on its definition"
    )

    def check_project(self, project: "Project") -> Iterable[Finding]:
        config_src = token_src = None
        for rel, src in project.files.items():
            if rel.endswith("core/montecarlo.py"):
                config_src = src
            elif rel.endswith("methods/cache.py"):
                token_src = src
        if config_src is None or token_src is None:
            return
        fields = self._config_fields(config_src)
        covered = self._token_fields(token_src)
        if covered is None:
            return  # no mc_token function to check against
        for name, line in fields:
            if name not in covered:
                yield self.finding(
                    config_src.rel,
                    line,
                    f"MonteCarloConfig.{name} is not part of "
                    "mc_token; add it to the token or annotate the "
                    "field with a bit-identity proof",
                )

    @staticmethod
    def _config_fields(src: SourceFile) -> list[tuple[str, int]]:
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name == "MonteCarloConfig"
            ):
                return [
                    (stmt.target.id, stmt.lineno)
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                ]
        return []

    @staticmethod
    def _token_fields(src: SourceFile) -> set[str] | None:
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == "mc_token"
                and node.args.args
            ):
                arg = node.args.args[0].arg
                return {
                    sub.attr
                    for sub in ast.walk(node)
                    if isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == arg
                }
        return None
