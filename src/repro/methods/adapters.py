"""Registry adapters for every method the paper studies (plus hybrid).

Importing this module populates the registry with:

* ``avf`` — the AVF step alone (single-component systems);
* ``avf_sofr`` — the full standard AVF+SOFR pipeline (Figure 1);
* ``sofr_only`` — the SOFR step fed with component MTTFs from the run's
  reference method, isolating the combination error (Section 4.2);
* ``monte_carlo`` — the paper's reference simulation;
* ``first_principles`` — the exact closed-form renewal MTTF;
* ``softarch`` — the SoftArch probabilistic method (Section 5.4);
* ``hybrid`` — the validity-aware method selection (our extension).

Each adapter delegates to the same free functions the seed library
exposed, so numbers are bit-identical to direct calls with the same
seeds and trial counts.
"""

from __future__ import annotations

from ..core.avf import avf_step
from ..core.firstprinciples import (
    exact_component_mttf,
    first_principles_mttf,
)
from ..core.hybrid import hybrid_system_mttf
from ..core.montecarlo import monte_carlo_component_mttf, monte_carlo_mttf
from ..core.softarch import softarch_mttf
from ..core.sofr import avf_sofr_mttf, sofr_mttf_from_components
from ..core.system import Component, SystemModel
from ..reliability.hazard import NestedHazard, PiecewiseHazard
from ..reliability.metrics import MTTFEstimate
from .base import MethodConfig
from .registry import register_method


def _single_instance(system: SystemModel) -> bool:
    components = system.components
    return len(components) == 1 and components[0].multiplicity == 1


@register_method("avf", per_component=True, supports=_single_instance)
def avf(system: SystemModel, config: MethodConfig) -> MTTFEstimate:
    """The AVF step (Section 2.2) on a single-component system."""
    return avf_step(system.components[0])


@register_method("avf_sofr", per_component=True)
def avf_sofr(system: SystemModel, config: MethodConfig) -> MTTFEstimate:
    """The standard AVF+SOFR pipeline (Figure 1)."""
    return avf_sofr_mttf(system)


def _reference_component_mttf(
    component: Component, config: MethodConfig
) -> float:
    """A component instance's MTTF under the run's reference method."""
    if config.reference in ("exact", "first_principles"):
        return config.component_mttf(
            "exact",
            component,
            None,
            lambda: exact_component_mttf(
                component.rate_per_second, component.profile
            ),
        )
    return config.component_mttf(
        "monte_carlo",
        component,
        config.mc,
        lambda: monte_carlo_component_mttf(
            component, config.mc
        ).mttf_seconds,
    )


@register_method("sofr_only", is_stochastic=True, per_component=True)
def sofr_only(system: SystemModel, config: MethodConfig) -> MTTFEstimate:
    """The SOFR step alone, fed reference-method component MTTFs.

    Stochastic whenever the run's reference is Monte Carlo (the paper's
    Section 4.2 convention); exact when the reference is the closed
    form.
    """
    return sofr_mttf_from_components(
        system, lambda c: _reference_component_mttf(c, config)
    )


@register_method("monte_carlo", is_stochastic=True)
def monte_carlo(system: SystemModel, config: MethodConfig) -> MTTFEstimate:
    """The paper's Monte-Carlo reference simulation (Section 4.3)."""
    return monte_carlo_mttf(system, config.mc)


@register_method("first_principles")
def first_principles(
    system: SystemModel, config: MethodConfig
) -> MTTFEstimate:
    """Exact renewal-theory MTTF with no AVF/SOFR assumptions."""
    return first_principles_mttf(system)


def _softarch_supports(system: SystemModel) -> bool:
    try:
        intensity = system.combined_intensity()
    except Exception:
        return False
    return isinstance(intensity, (PiecewiseHazard, NestedHazard))


@register_method("softarch", supports=_softarch_supports)
def softarch(system: SystemModel, config: MethodConfig) -> MTTFEstimate:
    """SoftArch event-accumulation MTTF (Section 5.4)."""
    return softarch_mttf(system)


@register_method("hybrid", per_component=True)
def hybrid(system: SystemModel, config: MethodConfig) -> MTTFEstimate:
    """Validity-aware hybrid: AVF/corrected/exact per hazard-mass regime."""
    return hybrid_system_mttf(system).estimate
