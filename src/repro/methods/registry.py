"""Global method registry: name -> :class:`~repro.methods.base.Estimator`.

Mirrors the experiment registry in :mod:`repro.harness.registry`: a flat
name-keyed dict, duplicate registration is an error, unknown lookups
fail with the list of available names. New methods plug in with the
:func:`register_method` decorator and are immediately visible to
``repro.analyze``, ``evaluate_design_space``, ``compare_methods`` and
the CLI — no call site edits.
"""

from __future__ import annotations

from typing import Callable

from ..core.system import SystemModel
from ..errors import ConfigurationError
from .base import Estimator, FunctionEstimator, MethodConfig

_REGISTRY: dict[str, Estimator] = {}

#: Aliases accepted wherever a method name is looked up.
_ALIASES = {"exact": "first_principles", "mc": "monte_carlo"}


def canonical_name(name: str) -> str:
    """Resolve registry aliases ("exact" -> "first_principles", ...)."""
    return _ALIASES.get(name, name)


def register(estimator: Estimator) -> Estimator:
    """Register a ready-made estimator object."""
    if estimator.name in _REGISTRY:
        raise ConfigurationError(
            f"duplicate method registration {estimator.name!r}"
        )
    if estimator.name in _ALIASES:
        raise ConfigurationError(
            f"method name {estimator.name!r} collides with a registry alias"
        )
    _REGISTRY[estimator.name] = estimator
    return estimator


def register_method(
    name: str,
    *,
    is_stochastic: bool = False,
    per_component: bool = False,
    supports: Callable[[SystemModel], bool] | None = None,
):
    """Decorator registering ``fn(system, config) -> MTTFEstimate``.

    Usage::

        @register_method("my_method", is_stochastic=True)
        def my_method(system, config):
            return MTTFEstimate(...)

    The decorated function is wrapped in a
    :class:`~repro.methods.base.FunctionEstimator` and returned, so the
    module attribute *is* the estimator.
    """

    def decorator(fn) -> FunctionEstimator:
        estimator = FunctionEstimator(
            name=name,
            fn=fn,
            is_stochastic=is_stochastic,
            per_component=per_component,
            supports_fn=supports,
            doc=(fn.__doc__ or "").strip().splitlines()[0]
            if fn.__doc__
            else "",
        )
        register(estimator)
        return estimator

    return decorator


def unregister(name: str) -> None:
    """Remove a method (primarily for tests of the registry itself)."""
    _REGISTRY.pop(canonical_name(name), None)


def get(name: str) -> Estimator:
    """Look up a method by (possibly aliased) name."""
    key = canonical_name(name)
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown method {name!r}; available: {available()}"
        )
    return _REGISTRY[key]


def available() -> list[str]:
    """Sorted names of every registered method."""
    return sorted(_REGISTRY)


def all_methods() -> dict[str, Estimator]:
    """All registered estimators keyed by name."""
    return dict(_REGISTRY)


def estimate(
    name: str,
    system: SystemModel,
    config: MethodConfig | None = None,
):
    """Convenience one-shot: look up and run a method."""
    return get(name).estimate(system, config)
