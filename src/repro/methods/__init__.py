"""Unified estimator API: one surface for every MTTF method.

The paper's contribution is *comparing* estimation methods; this package
makes the method set a first-class, pluggable axis:

* :class:`~repro.methods.base.Estimator` — the protocol every method
  implements (``name``, ``estimate(system, config)``, ``supports``,
  capability flags);
* :mod:`~repro.methods.registry` — the global name -> estimator registry
  with the :func:`register_method` decorator; :mod:`~repro.methods.adapters`
  registers the paper's five methods plus ``hybrid``;
* :func:`~repro.methods.facade.analyze` — the fluent entry point:
  ``analyze(system).using("avf_sofr").against("exact").run()``;
* :func:`~repro.methods.batch.evaluate_design_space` — the batch engine
  with per-component memoization, fanning out through a pluggable
  :class:`~repro.methods.executors.ChunkExecutor` backend (thread /
  process / remote TCP worker fleet);
* :class:`~repro.methods.results.ResultSet` — serializable results
  (``to_json``/``from_json`` round-trip losslessly).
"""

from .base import ComponentCache, Estimator, FunctionEstimator, MethodConfig
from .cache import DiskCache, mc_token
from .registry import (
    all_methods,
    available,
    canonical_name,
    estimate,
    get,
    register,
    register_method,
    unregister,
)
from . import adapters as _adapters  # noqa: F401 - populates the registry
from . import uncore as _uncore  # noqa: F401 - registers uncore_ecc
from .batch import evaluate_design_space, shard_select
from .executors import (
    ChunkExecutor,
    RemoteExecutor,
    available_executors,
    executor_name,
    get_executor,
    register_executor,
    unregister_executor,
)
from .facade import Analysis, analyze
from .ledger import BudgetLedger, LedgerState, ShardDeparted, ledger_path
from .progress import ProgressEvent
from .results import ResultSet, merge_result_sets

__all__ = [
    "Analysis",
    "BudgetLedger",
    "ChunkExecutor",
    "ComponentCache",
    "DiskCache",
    "Estimator",
    "LedgerState",
    "ledger_path",
    "FunctionEstimator",
    "MethodConfig",
    "ProgressEvent",
    "RemoteExecutor",
    "ResultSet",
    "ShardDeparted",
    "all_methods",
    "analyze",
    "available",
    "available_executors",
    "canonical_name",
    "estimate",
    "evaluate_design_space",
    "executor_name",
    "get",
    "get_executor",
    "merge_result_sets",
    "register",
    "register_executor",
    "register_method",
    "shard_select",
    "unregister",
    "unregister_executor",
]
