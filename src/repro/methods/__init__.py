"""Unified estimator API: one surface for every MTTF method.

The paper's contribution is *comparing* estimation methods; this package
makes the method set a first-class, pluggable axis:

* :class:`~repro.methods.base.Estimator` — the protocol every method
  implements (``name``, ``estimate(system, config)``, ``supports``,
  capability flags);
* :mod:`~repro.methods.registry` — the global name -> estimator registry
  with the :func:`register_method` decorator; :mod:`~repro.methods.adapters`
  registers the paper's five methods plus ``hybrid``;
* :func:`~repro.methods.facade.analyze` — the fluent entry point:
  ``analyze(system).using("avf_sofr").against("exact").run()``;
* :func:`~repro.methods.batch.evaluate_design_space` — the batch engine
  with per-component memoization and optional thread fan-out;
* :class:`~repro.methods.results.ResultSet` — serializable results
  (``to_json``/``from_json`` round-trip losslessly).
"""

from .base import ComponentCache, Estimator, FunctionEstimator, MethodConfig
from .cache import DiskCache, mc_token
from .registry import (
    all_methods,
    available,
    canonical_name,
    estimate,
    get,
    register,
    register_method,
    unregister,
)
from . import adapters as _adapters  # noqa: F401 - populates the registry
from .batch import evaluate_design_space
from .facade import Analysis, analyze
from .results import ResultSet

__all__ = [
    "Analysis",
    "ComponentCache",
    "DiskCache",
    "Estimator",
    "FunctionEstimator",
    "MethodConfig",
    "ResultSet",
    "all_methods",
    "analyze",
    "available",
    "canonical_name",
    "estimate",
    "evaluate_design_space",
    "get",
    "register",
    "register_method",
    "unregister",
]
