"""Serializable result containers for method comparisons.

A :class:`ResultSet` is what ``repro.analyze(...).run()`` and
:func:`~repro.methods.batch.evaluate_design_space` return: an ordered
collection of :class:`~repro.core.comparison.MethodComparison` records
(one per system/grid point) plus the run's method and reference names.
``to_json``/``from_json`` round-trip losslessly — including the
per-point trial counts and achieved standard errors that make adaptive
(stopping-rule) runs auditable, and the shard coordinates of a
partitioned sweep — so experiments become artifacts that can be
archived, diffed, sharded across machines, merged back together
(:func:`merge_result_sets`), and re-rendered without rerunning any
Monte Carlo.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from ..core.comparison import MethodComparison
from ..errors import ConfigurationError

#: Schema tag embedded in every serialized ResultSet.
SCHEMA = "repro.resultset/v1"


def validate_shard(shard) -> tuple[int, int]:
    """Normalize and validate an ``(i, n)`` shard pair.

    The single validator behind ``evaluate_design_space(shard=...)``,
    :class:`ResultSet`, and the CLI's ``i/N`` parsing.
    """
    try:
        index, count = (int(shard[0]), int(shard[1]))
    except (TypeError, ValueError, IndexError, KeyError):
        raise ConfigurationError(
            f"invalid shard {shard!r}; need an (i, n) pair"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ConfigurationError(
            f"invalid shard {shard!r}; need 0 <= i < n"
        )
    return index, count


@dataclass(frozen=True)
class ResultSet:
    """Ordered method-comparison records from one analysis run.

    ``shard`` is ``(i, n)`` when the set holds one machine's round-robin
    share of a larger space (``evaluate_design_space(shard=...)``) and
    ``None`` for a complete run; :func:`merge_result_sets` consumes it.
    ``mc_token`` records the Monte-Carlo configuration the run used
    (trials/seed/sampler/chunking/stopping — see
    :func:`repro.methods.cache.mc_token`), so merging shards produced
    with different settings fails loudly instead of interleaving
    inconsistent estimates.

    ``adopted`` carries the shard ResultSets this member produced *for
    other fleet slots* after adopting them mid-run (elastic ledger
    fleets): each has its own ``shard=(j, n)``.
    :func:`merge_result_sets` flattens them, so one surviving member's
    output can complete the partition that crashed members left short.
    """

    comparisons: tuple[MethodComparison, ...]
    methods: tuple[str, ...] = ()
    reference_method: str = "monte_carlo"
    shard: tuple[int, int] | None = None
    mc_token: str | None = None
    adopted: tuple["ResultSet", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "comparisons", tuple(self.comparisons))
        object.__setattr__(self, "methods", tuple(self.methods))
        object.__setattr__(self, "adopted", tuple(self.adopted))
        if self.shard is not None:
            object.__setattr__(self, "shard", validate_shard(self.shard))

    def __iter__(self) -> Iterator[MethodComparison]:
        return iter(self.comparisons)

    def __len__(self) -> int:
        return len(self.comparisons)

    def __getitem__(self, index):
        return self.comparisons[index]

    @property
    def labels(self) -> list[str]:
        return [c.system_label for c in self.comparisons]

    def errors(self, method: str) -> dict[str, float]:
        """Signed relative error of ``method`` per system label."""
        return {
            c.system_label: c.error(method)
            for c in self.comparisons
            if method in c.estimates
        }

    def worst_abs_error(self, method: str) -> float:
        """Largest |relative error| of ``method`` across the set."""
        errors = self.errors(method)
        if not errors:
            raise ConfigurationError(
                f"no comparison in this set ran method {method!r}"
            )
        return max(abs(e) for e in errors.values())

    # -- adaptive-run audit ------------------------------------------------

    def reference_trials(self) -> dict[str, int]:
        """Monte-Carlo trials behind each point's reference estimate.

        After an adaptive (stopping-rule) run the counts differ per
        point — this is the audit trail showing where the rule stopped
        early. Survives the JSON round-trip.
        """
        return {
            c.system_label: c.reference.trials for c in self.comparisons
        }

    def reference_rel_stderr(self) -> dict[str, float]:
        """Achieved relative stderr of each point's reference estimate.

        Zero for exact references and infinite-MTTF points. An adaptive
        run that hit its target has every value at or below the target
        (budget-exhausted points excepted — cross-check with
        :meth:`reference_trials`).
        """
        return {
            c.system_label: c.reference.rel_stderr
            for c in self.comparisons
        }

    def merged(self, other: "ResultSet") -> "ResultSet":
        """Concatenate two sets (method/reference metadata unioned).

        When the two sets were measured against different references the
        merged set's ``reference_method`` becomes ``"mixed"`` — each
        comparison still records its own reference estimate (and its
        producing method label), so nothing is lost.
        """
        methods = list(self.methods)
        methods.extend(m for m in other.methods if m not in methods)
        reference = (
            self.reference_method
            if other.reference_method == self.reference_method
            else "mixed"
        )
        return ResultSet(
            comparisons=self.comparisons + other.comparisons,
            methods=tuple(methods),
            reference_method=reference,
            mc_token=(
                self.mc_token
                if other.mc_token == self.mc_token
                else None
            ),
        )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "schema": SCHEMA,
            "methods": list(self.methods),
            "reference_method": self.reference_method,
            "comparisons": [c.to_dict() for c in self.comparisons],
        }
        if self.shard is not None:
            data["shard"] = list(self.shard)
        if self.mc_token is not None:
            data["mc_token"] = self.mc_token
        if self.adopted:
            data["adopted"] = [s.to_dict() for s in self.adopted]
        return data

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Serialize; also write to ``path`` when given."""
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResultSet":
        if data.get("schema") != SCHEMA:
            raise ConfigurationError(
                f"not a {SCHEMA} document (schema={data.get('schema')!r})"
            )
        shard = data.get("shard")
        return cls(
            comparisons=tuple(
                MethodComparison.from_dict(c) for c in data["comparisons"]
            ),
            methods=tuple(data.get("methods", ())),
            reference_method=data.get("reference_method", "monte_carlo"),
            shard=tuple(shard) if shard is not None else None,
            mc_token=data.get("mc_token"),
            adopted=tuple(
                cls.from_dict(s) for s in data.get("adopted", ())
            ),
        )

    @classmethod
    def from_json(cls, source: str | Path) -> "ResultSet":
        """Load from a JSON string or a path to a JSON file."""
        if isinstance(source, Path):
            text = source.read_text(encoding="utf-8")
        elif source.lstrip().startswith("{"):
            text = source
        else:
            text = Path(source).read_text(encoding="utf-8")
        return cls.from_dict(json.loads(text))


def merge_result_sets(sets: Sequence[ResultSet]) -> ResultSet:
    """Reassemble the shards of one sweep into the unsharded ResultSet.

    Every input must carry a ``shard=(i, n)`` with the same ``n``, the
    shard indices must form the complete partition ``0..n-1`` with no
    duplicates, and method/reference metadata must agree. Because
    sharding is round-robin (:func:`~repro.methods.batch.shard_select`),
    global point ``k`` lives at position ``k // n`` of shard ``k % n`` —
    interleaving restores the original order exactly, so the merged set
    equals (``==``, bit-for-bit) what one machine evaluating the whole
    space would have produced. Shard sizes are cross-checked against
    the round-robin invariant so a missing or truncated shard fails
    loudly rather than merging silently short.

    Elastic fleets: sets produced by members that adopted departed
    slots carry the adopted slots' ResultSets in ``adopted`` — those
    are flattened in as shards of their own. Duplicate shard indices
    are tolerated only when the copies are identical (the determinism
    guarantee makes a zombie member and its adopter produce the same
    bits; anything else is a real conflict and fails loudly).
    """
    if not sets:
        raise ConfigurationError("no result sets to merge")
    flattened: list[ResultSet] = []
    stack = list(sets)
    while stack:
        result_set = stack.pop(0)
        flattened.append(result_set)
        stack.extend(result_set.adopted)
    by_index: dict[int, ResultSet] = {}
    count = None
    for result_set in flattened:
        if result_set.shard is None:
            raise ConfigurationError(
                "merge_result_sets needs sharded inputs (shard=(i, n)); "
                "use ResultSet.merged() to concatenate unrelated sets"
            )
        index, n = result_set.shard
        if count is None:
            count = n
        elif n != count:
            raise ConfigurationError(
                f"mixed shard counts: expected /{count}, got /{n}"
            )
        if index in by_index:
            existing = by_index[index]
            if (
                existing.comparisons == result_set.comparisons
                and existing.methods == result_set.methods
                and existing.reference_method
                == result_set.reference_method
                and existing.mc_token == result_set.mc_token
            ):
                continue  # identical duplicate (zombie + adopter)
            raise ConfigurationError(
                f"duplicate shard {index}/{n} with conflicting contents"
            )
        by_index[index] = result_set
    missing = sorted(set(range(count)) - set(by_index))
    if missing:
        raise ConfigurationError(
            f"incomplete partition: missing shards {missing} of /{count}"
        )
    first = by_index[0]
    for result_set in by_index.values():
        if result_set.methods != first.methods or (
            result_set.reference_method != first.reference_method
        ):
            raise ConfigurationError(
                "shards disagree on methods/reference; refusing to merge"
            )
        if result_set.mc_token != first.mc_token:
            raise ConfigurationError(
                "shards disagree on the Monte-Carlo configuration "
                f"({result_set.mc_token!r} vs {first.mc_token!r}); they "
                "come from different runs — refusing to merge"
            )
    total = sum(len(s) for s in by_index.values())
    for index, result_set in by_index.items():
        expected = (total - index + count - 1) // count
        if len(result_set) != expected:
            raise ConfigurationError(
                f"shard {index}/{count} has {len(result_set)} points, "
                f"round-robin partition of {total} expects {expected}"
            )
    comparisons = [
        by_index[k % count].comparisons[k // count] for k in range(total)
    ]
    return ResultSet(
        comparisons=tuple(comparisons),
        methods=first.methods,
        reference_method=first.reference_method,
        mc_token=first.mc_token,
    )
