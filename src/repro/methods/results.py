"""Serializable result containers for method comparisons.

A :class:`ResultSet` is what ``repro.analyze(...).run()`` and
:func:`~repro.methods.batch.evaluate_design_space` return: an ordered
collection of :class:`~repro.core.comparison.MethodComparison` records
(one per system/grid point) plus the run's method and reference names.
``to_json``/``from_json`` round-trip losslessly, so experiments become
artifacts that can be archived, diffed, and re-rendered without rerunning
any Monte Carlo.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from ..core.comparison import MethodComparison
from ..errors import ConfigurationError

#: Schema tag embedded in every serialized ResultSet.
SCHEMA = "repro.resultset/v1"


@dataclass(frozen=True)
class ResultSet:
    """Ordered method-comparison records from one analysis run."""

    comparisons: tuple[MethodComparison, ...]
    methods: tuple[str, ...] = ()
    reference_method: str = "monte_carlo"

    def __post_init__(self) -> None:
        object.__setattr__(self, "comparisons", tuple(self.comparisons))
        object.__setattr__(self, "methods", tuple(self.methods))

    def __iter__(self) -> Iterator[MethodComparison]:
        return iter(self.comparisons)

    def __len__(self) -> int:
        return len(self.comparisons)

    def __getitem__(self, index):
        return self.comparisons[index]

    @property
    def labels(self) -> list[str]:
        return [c.system_label for c in self.comparisons]

    def errors(self, method: str) -> dict[str, float]:
        """Signed relative error of ``method`` per system label."""
        return {
            c.system_label: c.error(method)
            for c in self.comparisons
            if method in c.estimates
        }

    def worst_abs_error(self, method: str) -> float:
        """Largest |relative error| of ``method`` across the set."""
        errors = self.errors(method)
        if not errors:
            raise ConfigurationError(
                f"no comparison in this set ran method {method!r}"
            )
        return max(abs(e) for e in errors.values())

    def merged(self, other: "ResultSet") -> "ResultSet":
        """Concatenate two sets (method/reference metadata unioned).

        When the two sets were measured against different references the
        merged set's ``reference_method`` becomes ``"mixed"`` — each
        comparison still records its own reference estimate (and its
        producing method label), so nothing is lost.
        """
        methods = list(self.methods)
        methods.extend(m for m in other.methods if m not in methods)
        reference = (
            self.reference_method
            if other.reference_method == self.reference_method
            else "mixed"
        )
        return ResultSet(
            comparisons=self.comparisons + other.comparisons,
            methods=tuple(methods),
            reference_method=reference,
        )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "methods": list(self.methods),
            "reference_method": self.reference_method,
            "comparisons": [c.to_dict() for c in self.comparisons],
        }

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Serialize; also write to ``path`` when given."""
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResultSet":
        if data.get("schema") != SCHEMA:
            raise ConfigurationError(
                f"not a {SCHEMA} document (schema={data.get('schema')!r})"
            )
        return cls(
            comparisons=tuple(
                MethodComparison.from_dict(c) for c in data["comparisons"]
            ),
            methods=tuple(data.get("methods", ())),
            reference_method=data.get("reference_method", "monte_carlo"),
        )

    @classmethod
    def from_json(cls, source: str | Path) -> "ResultSet":
        """Load from a JSON string or a path to a JSON file."""
        if isinstance(source, Path):
            text = source.read_text(encoding="utf-8")
        elif source.lstrip().startswith("{"):
            text = source
        else:
            text = Path(source).read_text(encoding="utf-8")
        return cls.from_dict(json.loads(text))
