"""Batch evaluation engine over design spaces.

:func:`evaluate_design_space` runs a set of registered methods over many
systems — the Table-2 grid, a cluster-size sweep, a workload family —
with one uniform call, replacing the bespoke per-experiment loops. It

* memoizes per-component MTTFs *and* whole system-level estimates in a
  shared :class:`~repro.methods.base.ComponentCache`, keyed by content
  fingerprint (give the cache a
  :class:`~repro.methods.cache.DiskCache` and a warm rerun of a sweep
  performs zero re-estimations),
* fans out over a thread pool (``executor="thread"``; the NumPy
  samplers release the GIL for the heavy draws) or a process pool
  (``executor="process"``; true parallelism for paper-scale 1e6-trial
  sweeps — Monte-Carlo references additionally split at *chunk*
  granularity when ``mc_config.chunks > 1``, so even a single grid
  point spreads across cores), and
* returns a serializable :class:`~repro.methods.results.ResultSet`
  whose record order always matches the input order, regardless of
  worker count or executor — at fixed chunking, ``workers=1`` and
  ``workers=N`` produce bit-identical numbers.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Sequence

from ..core.comparison import MethodComparison
from ..core.montecarlo import (
    MonteCarloConfig,
    chunk_configs,
    estimate_from_moments,
    merge_moments,
    system_chunk_moments,
)
from ..core.system import SystemModel
from ..errors import ConfigurationError
from ..reliability.metrics import MTTFEstimate
from . import registry
from .base import ComponentCache, MethodConfig
from .results import ResultSet

#: A design space item: a system, optionally labeled.
SpaceItem = SystemModel | tuple[str, SystemModel]

#: Supported fan-out backends.
EXECUTORS = ("thread", "process")


def _normalize_space(
    space: Iterable[SpaceItem],
) -> list[tuple[str, SystemModel]]:
    normalized: list[tuple[str, SystemModel]] = []
    for index, item in enumerate(space):
        if isinstance(item, SystemModel):
            normalized.append((f"system[{index}]", item))
        else:
            label, system = item
            if not isinstance(system, SystemModel):
                raise ConfigurationError(
                    f"design-space item {index} is not a SystemModel"
                )
            normalized.append((str(label), system))
    if not normalized:
        raise ConfigurationError("the design space is empty")
    return normalized


def _estimate_task(
    method_name: str,
    system: SystemModel,
    mc: MonteCarloConfig,
    reference: str,
) -> MTTFEstimate:
    """Run one estimate in a worker process (top-level: picklable).

    The worker rebuilds a cache-free :class:`MethodConfig`; caching
    happens only in the parent so the shared cache needs no cross-process
    coordination.
    """
    config = MethodConfig(mc=mc, reference=reference, cache=None)
    return registry.get(method_name).estimate(system, config)


def _process_references(
    items: Sequence[tuple[str, SystemModel]],
    reference_name: str,
    reference_estimator,
    config: MethodConfig,
    cache: ComponentCache | None,
    workers: int,
) -> list[MTTFEstimate]:
    """Reference estimates for every item via a process pool.

    Cache hits are resolved in the parent; only misses are farmed out.
    Monte-Carlo references with ``chunks > 1`` are submitted at chunk
    granularity so one expensive grid point spreads across cores; the
    chunk moments merge in chunk order, reproducing exactly what
    ``monte_carlo_mttf`` computes serially.
    """
    mc = config.mc if reference_estimator.is_stochastic else None
    references: list[MTTFEstimate | None] = [None] * len(items)
    keys: list[str | None] = [None] * len(items)
    pending: list[int] = []
    for index, (_label, system) in enumerate(items):
        if cache is not None:
            keys[index] = cache.estimate_key(
                reference_name, system, mc, reference_name
            )
            found = cache.lookup_estimate(keys[index])
            if found is not None:
                references[index] = found
                continue
        pending.append(index)
    if pending:
        chunked = (
            reference_name == "monte_carlo" and config.mc.chunks > 1
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if chunked:
                chunks = chunk_configs(config.mc)
                label = f"monte_carlo[{config.mc.method}]"
                futures = {
                    index: [
                        pool.submit(
                            system_chunk_moments, items[index][1], chunk
                        )
                        for chunk in chunks
                    ]
                    for index in pending
                }
                for index in pending:
                    moments = merge_moments(
                        [f.result() for f in futures[index]]
                    )
                    references[index] = estimate_from_moments(
                        moments, label
                    )
            else:
                futures = {
                    index: pool.submit(
                        _estimate_task,
                        reference_name,
                        items[index][1],
                        config.mc,
                        reference_name,
                    )
                    for index in pending
                }
                for index in pending:
                    references[index] = futures[index].result()
        if cache is not None:
            for index in pending:
                cache.store_estimate(keys[index], references[index])
    return references  # type: ignore[return-value]


def evaluate_design_space(
    space: Iterable[SpaceItem],
    methods: Sequence[str],
    reference: str = "monte_carlo",
    mc_config: MonteCarloConfig | None = None,
    workers: int = 1,
    executor: str = "thread",
    cache: ComponentCache | bool | None = None,
    skip_unsupported: bool = False,
) -> ResultSet:
    """Run ``methods`` against ``reference`` on every system in ``space``.

    Parameters
    ----------
    space:
        Iterable of systems or ``(label, system)`` pairs; evaluated in
        order.
    methods:
        Registered method names (see :func:`repro.methods.available`).
    reference:
        Reference method name (``"monte_carlo"`` or ``"exact"``).
    mc_config:
        Monte-Carlo settings shared by every stochastic estimate. Set
        ``chunks > 1`` to split each estimate into seeded sub-runs —
        required for chunk-granular process fan-out, and the unit of
        reproducibility: numbers depend on the chunking, never on the
        worker count or executor.
    workers:
        Fan-out width; 1 (default) runs serially. Results keep the
        input order either way.
    executor:
        ``"thread"`` (default) or ``"process"``. Threads suit the
        GIL-releasing NumPy samplers; processes buy true parallelism
        for paper-scale sweeps. The process pool computes reference
        estimates (the expensive part); method estimates and caching
        stay in the parent.
    cache:
        ``None`` (default) uses a fresh per-call cache,
        ``False`` disables memoization, or pass a
        :class:`ComponentCache` to share across calls (optionally
        disk-backed for cross-invocation reuse).
    skip_unsupported:
        When True, methods whose ``supports(system)`` is False are
        silently omitted from that system's record instead of raising.
    """
    items = _normalize_space(space)
    if not methods:
        raise ConfigurationError(
            f"methods must not be empty; available: {registry.available()}"
        )
    if executor not in EXECUTORS:
        raise ConfigurationError(
            f"unknown executor {executor!r}; use one of {EXECUTORS}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    method_names = [registry.get(name).name for name in methods]
    reference_name = registry.canonical_name(reference)
    if cache is None or cache is True:
        cache = ComponentCache()
    elif cache is False:
        cache = None
    config = MethodConfig(
        mc=mc_config or MonteCarloConfig(),
        reference=reference_name,
        cache=cache,
    )
    reference_estimator = registry.get(reference_name)

    def cached_estimate(name, estimator, system) -> MTTFEstimate:
        mc = config.mc if estimator.is_stochastic else None
        if cache is None:
            return estimator.estimate(system, config)
        return cache.get_or_compute_estimate(
            name,
            system,
            mc,
            reference_name,
            lambda: estimator.estimate(system, config),
        )

    def finish_item(
        item: tuple[str, SystemModel], ref: MTTFEstimate
    ) -> MethodComparison:
        label, system = item
        estimates = {}
        for name in method_names:
            estimator = registry.get(name)
            if not estimator.supports(system):
                if skip_unsupported:
                    continue
                raise ConfigurationError(
                    f"method {name!r} does not support system {label!r}"
                )
            # The reference estimate doubles as the method estimate when
            # the same method is also selected.
            estimates[name] = (
                ref
                if name == reference_name
                else cached_estimate(name, estimator, system)
            )
        return MethodComparison(
            system_label=label, reference=ref, estimates=estimates
        )

    def evaluate_one(item: tuple[str, SystemModel]) -> MethodComparison:
        ref = cached_estimate(
            reference_name, reference_estimator, item[1]
        )
        return finish_item(item, ref)

    if executor == "process":
        references = _process_references(
            items, reference_name, reference_estimator, config, cache,
            workers,
        )
        comparisons = tuple(
            finish_item(item, ref)
            for item, ref in zip(items, references)
        )
    elif workers > 1 and len(items) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            comparisons = tuple(pool.map(evaluate_one, items))
    else:
        comparisons = tuple(evaluate_one(item) for item in items)
    return ResultSet(
        comparisons=comparisons,
        methods=tuple(method_names),
        reference_method=reference_name,
    )
