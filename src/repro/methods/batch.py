"""Batch evaluation engine over design spaces.

:func:`evaluate_design_space` runs a set of registered methods over many
systems — the Table-2 grid, a cluster-size sweep, a workload family —
with one uniform call, replacing the bespoke per-experiment loops. It

* memoizes per-component MTTFs *and* whole system-level estimates in a
  shared :class:`~repro.methods.base.ComponentCache`, keyed by content
  fingerprint (give the cache a
  :class:`~repro.methods.cache.DiskCache` and a warm rerun of a sweep
  performs zero re-estimations),
* fans out over a thread pool (``executor="thread"``; the NumPy
  samplers release the GIL for the heavy draws) or a process pool
  (``executor="process"``; true parallelism for paper-scale 1e6-trial
  sweeps),
* **streams** Monte-Carlo references at *chunk* granularity: chunk
  moments are folded into a per-point
  :class:`~repro.core.montecarlo.MomentAccumulator` the moment they
  complete (no gather-all barrier), each fold feeds the run's
  :class:`~repro.core.montecarlo.StoppingRule` so adaptive runs stop —
  and cancel their unneeded chunks — as soon as the target precision is
  reached, and every fold can emit a
  :class:`~repro.methods.progress.ProgressEvent`,
* partitions deterministically across machines: ``shard=(i, n)``
  evaluates every n-th grid point starting at i, and
  :func:`~repro.methods.results.merge_result_sets` reassembles the
  shards into the exact :class:`~repro.methods.results.ResultSet` an
  unsharded run produces, and
* returns a serializable :class:`~repro.methods.results.ResultSet`
  whose record order always matches the input order, regardless of
  worker count, executor, or chunk completion order — at fixed chunking
  with the stopping rule disabled, ``workers=1`` and ``workers=N``
  produce bit-identical numbers, and even adaptive runs are a pure
  function of the configuration because chunks fold in index order.
"""

from __future__ import annotations

from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
    wait,
)
from typing import Iterable, Sequence

from ..core.comparison import MethodComparison
from ..core.montecarlo import (
    MomentAccumulator,
    MonteCarloConfig,
    adaptive_chunk_configs,
    system_chunk_moments,
)
from ..core.system import SystemModel
from ..errors import ConfigurationError
from ..reliability.metrics import MTTFEstimate
from . import registry
from .base import ComponentCache, MethodConfig
from .cache import mc_token
from .progress import (
    CHUNK_MERGED,
    POINT_DONE,
    POINT_START,
    ProgressCallback,
    ProgressEvent,
    relative_stderr,
)
from .results import ResultSet, validate_shard

#: A design space item: a system, optionally labeled.
SpaceItem = SystemModel | tuple[str, SystemModel]

#: Supported fan-out backends.
EXECUTORS = ("thread", "process")


def _normalize_space(
    space: Iterable[SpaceItem],
) -> list[tuple[str, SystemModel]]:
    normalized: list[tuple[str, SystemModel]] = []
    for index, item in enumerate(space):
        if isinstance(item, SystemModel):
            normalized.append((f"system[{index}]", item))
        else:
            label, system = item
            if not isinstance(system, SystemModel):
                raise ConfigurationError(
                    f"design-space item {index} is not a SystemModel"
                )
            normalized.append((str(label), system))
    if not normalized:
        raise ConfigurationError("the design space is empty")
    return normalized


def shard_select(sequence: Sequence, shard: tuple[int, int] | None):
    """The deterministic slice of ``sequence`` one shard evaluates.

    Round-robin by position: shard ``(i, n)`` takes elements ``i``,
    ``i + n``, ``i + 2n``, ... — a pure function of the *full* sequence
    order, so N machines enumerating the same space partition it without
    coordination, shard sizes differ by at most one, and
    :func:`~repro.methods.results.merge_result_sets` can reassemble the
    original order exactly. Experiments use the same helper to keep
    their per-point metadata aligned with a sharded engine result.
    """
    if shard is None:
        return sequence
    index, count = validate_shard(shard)
    return sequence[index::count]


def _emit(progress: ProgressCallback | None, event: ProgressEvent) -> None:
    if progress is not None:
        progress(event)


def _estimate_task(
    method_name: str,
    system: SystemModel,
    mc: MonteCarloConfig,
    reference: str,
) -> MTTFEstimate:
    """Run one estimate in a worker process (top-level: picklable).

    The worker rebuilds a cache-free :class:`MethodConfig`; caching
    happens only in the parent so the shared cache needs no cross-process
    coordination.
    """
    config = MethodConfig(mc=mc, reference=reference, cache=None)
    return registry.get(method_name).estimate(system, config)


def _stream_chunked_references(
    items: Sequence[tuple[str, SystemModel]],
    pending: Sequence[int],
    references: list[MTTFEstimate | None],
    mc: MonteCarloConfig,
    pool: ProcessPoolExecutor,
    workers: int,
    progress: ProgressCallback | None,
) -> None:
    """Streaming reduction of chunked Monte-Carlo references.

    Every pending point's *base* chunk plan (the fixed-chunking split)
    is submitted up front; chunk moments fold into that point's
    :class:`MomentAccumulator` as they complete — in chunk-index order,
    so the merged moments (and any early-stop decision) are identical
    to a serial run regardless of completion order. A point whose
    stopping rule is satisfied finalizes immediately and cancels its
    not-yet-started chunks (already-running stragglers finish in the
    pool and are ignored); a point that exhausts its submitted chunks
    without meeting the rule lazily submits its next slice of
    extension chunks (up to the ``max_trials`` budget), so a run that
    stops early never speculatively executes its extension tail.
    """
    plan = adaptive_chunk_configs(mc)
    # The fixed plan has min(chunks, trials) chunks (see chunk_configs);
    # truncated budgets make the whole plan shorter still.
    base_count = min(mc.chunks, mc.trials, len(plan))
    label = f"monte_carlo[{mc.method}]"
    accumulators = {
        index: MomentAccumulator(len(plan), mc.stopping)
        for index in pending
    }
    submitted: dict[int, list[Future]] = {index: [] for index in pending}
    future_meta: dict[Future, tuple[int, int]] = {}

    def submit_chunks(index: int, count: int) -> list[Future]:
        start = len(submitted[index])
        futures = []
        for chunk_index in range(start, min(start + count, len(plan))):
            future = pool.submit(
                system_chunk_moments, items[index][1], plan[chunk_index]
            )
            submitted[index].append(future)
            future_meta[future] = (index, chunk_index)
            futures.append(future)
        return futures

    for index in pending:
        _emit(
            progress,
            ProgressEvent(
                items[index][0], POINT_START, total_chunks=len(plan)
            ),
        )
        submit_chunks(index, base_count)
    waiting = set(future_meta)
    while waiting:
        completed, waiting = wait(waiting, return_when=FIRST_COMPLETED)
        for future in completed:
            index, _chunk_index = future_meta[future]
            accumulator = accumulators[index]
            if accumulator.done or future.cancelled():
                continue  # straggler of an already-finalized point
            merged_before = accumulator.merged_chunks
            done = accumulator.add(
                future_meta[future][1], future.result()
            )
            if done:
                references[index] = accumulator.estimate(label)
                if accumulator.stopped_early:
                    for leftover in submitted[index]:
                        leftover.cancel()
                _emit(
                    progress,
                    ProgressEvent(
                        items[index][0],
                        POINT_DONE,
                        merged_chunks=accumulator.merged_chunks,
                        total_chunks=len(plan),
                        trials=accumulator.moments.count,
                        rel_stderr=relative_stderr(accumulator.moments),
                        stopped_early=accumulator.stopped_early,
                    ),
                )
                continue
            if accumulator.merged_chunks > merged_before:
                _emit(
                    progress,
                    ProgressEvent(
                        items[index][0],
                        CHUNK_MERGED,
                        merged_chunks=accumulator.merged_chunks,
                        total_chunks=len(plan),
                        trials=accumulator.moments.count,
                        rel_stderr=relative_stderr(accumulator.moments),
                    ),
                )
            if accumulator.merged_chunks == len(submitted[index]):
                # Every submitted chunk has merged and the target is
                # still unmet: release the next extension slice. One
                # pool-width at a time keeps the workers busy without
                # speculating the whole tail.
                waiting |= set(submit_chunks(index, max(1, workers)))


def _process_references(
    items: Sequence[tuple[str, SystemModel]],
    reference_name: str,
    reference_estimator,
    config: MethodConfig,
    cache: ComponentCache | None,
    workers: int,
    progress: ProgressCallback | None = None,
) -> list[MTTFEstimate]:
    """Reference estimates for every item via a process pool.

    Cache hits are resolved in the parent; only misses are farmed out.
    Monte-Carlo references with chunking (or a stopping rule) stream
    through :func:`_stream_chunked_references` so one expensive grid
    point spreads across cores and adaptive runs stop at their target
    precision; everything else fans out whole-estimate and is collected
    ``as_completed`` (order-independent — results land by index).
    """
    mc = config.mc if reference_estimator.is_stochastic else None
    references: list[MTTFEstimate | None] = [None] * len(items)
    keys: list[str | None] = [None] * len(items)
    pending: list[int] = []
    for index, (label, system) in enumerate(items):
        if cache is not None:
            keys[index] = cache.estimate_key(
                reference_name, system, mc, reference_name
            )
            found = cache.lookup_estimate(keys[index])
            if found is not None:
                references[index] = found
                # Cached points still get a start/done pair so progress
                # consumers see the same event shape on every path.
                _emit(progress, ProgressEvent(label, POINT_START))
                _emit(
                    progress,
                    ProgressEvent(
                        label, POINT_DONE, trials=found.trials,
                        cached=True,
                    ),
                )
                continue
        pending.append(index)
    if pending:
        chunked = reference_name == "monte_carlo" and (
            config.mc.chunks > 1 or config.mc.adaptive
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if chunked:
                _stream_chunked_references(
                    items, pending, references, config.mc, pool,
                    workers, progress,
                )
            else:
                futures = {
                    pool.submit(
                        _estimate_task,
                        reference_name,
                        items[index][1],
                        config.mc,
                        reference_name,
                    ): index
                    for index in pending
                }
                for index in pending:
                    _emit(
                        progress,
                        ProgressEvent(items[index][0], POINT_START),
                    )
                for future in as_completed(futures):
                    index = futures[future]
                    references[index] = future.result()
                    _emit(
                        progress,
                        ProgressEvent(
                            items[index][0],
                            POINT_DONE,
                            trials=references[index].trials,
                        ),
                    )
        if cache is not None:
            for index in pending:
                cache.store_estimate(keys[index], references[index])
    return references  # type: ignore[return-value]


def evaluate_design_space(
    space: Iterable[SpaceItem],
    methods: Sequence[str],
    reference: str = "monte_carlo",
    mc_config: MonteCarloConfig | None = None,
    workers: int = 1,
    executor: str = "thread",
    cache: ComponentCache | bool | None = None,
    skip_unsupported: bool = False,
    shard: tuple[int, int] | None = None,
    progress: ProgressCallback | None = None,
) -> ResultSet:
    """Run ``methods`` against ``reference`` on every system in ``space``.

    Parameters
    ----------
    space:
        Iterable of systems or ``(label, system)`` pairs; evaluated in
        order.
    methods:
        Registered method names (see :func:`repro.methods.available`).
    reference:
        Reference method name (``"monte_carlo"`` or ``"exact"``).
    mc_config:
        Monte-Carlo settings shared by every stochastic estimate. Set
        ``chunks > 1`` to split each estimate into seeded sub-runs —
        the unit of both parallelism and adaptivity. A
        :class:`~repro.core.montecarlo.StoppingRule` on the config makes
        runs precision-driven: chunks are scheduled until the target
        stderr is reached. Numbers depend on the chunking and the rule,
        never on the worker count or executor.
    workers:
        Fan-out width; 1 (default) runs serially. Results keep the
        input order either way.
    executor:
        ``"thread"`` (default) or ``"process"``. Threads suit the
        GIL-releasing NumPy samplers; processes buy true parallelism
        for paper-scale sweeps. The process pool streams reference
        chunks (the expensive part); method estimates and caching stay
        in the parent.
    cache:
        ``None`` (default) uses a fresh per-call cache,
        ``False`` disables memoization, or pass a
        :class:`ComponentCache` to share across calls (optionally
        disk-backed for cross-invocation reuse).
    skip_unsupported:
        When True, methods whose ``supports(system)`` is False are
        silently omitted from that system's record instead of raising.
    shard:
        ``(i, n)`` evaluates only this machine's round-robin share of
        the space (see :func:`shard_select`); labels still come from
        the full-space enumeration. The returned set records the shard
        so :func:`~repro.methods.results.merge_result_sets` can verify
        completeness and restore the unsharded order. N machines
        pointing at one shared disk cache split one grid with no
        coordination beyond the shard index.
    progress:
        Optional callback receiving
        :class:`~repro.methods.progress.ProgressEvent` per grid point
        (and per merged chunk on the streaming process path).
    """
    items = _normalize_space(space)
    if shard is not None:
        shard = validate_shard(shard)
        items = shard_select(items, shard)
    if not methods:
        raise ConfigurationError(
            f"methods must not be empty; available: {registry.available()}"
        )
    if executor not in EXECUTORS:
        raise ConfigurationError(
            f"unknown executor {executor!r}; use one of {EXECUTORS}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    method_names = [registry.get(name).name for name in methods]
    reference_name = registry.canonical_name(reference)
    if cache is None or cache is True:
        cache = ComponentCache()
    elif cache is False:
        cache = None
    config = MethodConfig(
        mc=mc_config or MonteCarloConfig(),
        reference=reference_name,
        cache=cache,
    )
    reference_estimator = registry.get(reference_name)

    def cached_estimate(name, estimator, system) -> MTTFEstimate:
        mc = config.mc if estimator.is_stochastic else None
        if cache is None:
            return estimator.estimate(system, config)
        return cache.get_or_compute_estimate(
            name,
            system,
            mc,
            reference_name,
            lambda: estimator.estimate(system, config),
        )

    def finish_item(
        item: tuple[str, SystemModel], ref: MTTFEstimate
    ) -> MethodComparison:
        label, system = item
        estimates = {}
        for name in method_names:
            estimator = registry.get(name)
            if not estimator.supports(system):
                if skip_unsupported:
                    continue
                raise ConfigurationError(
                    f"method {name!r} does not support system {label!r}"
                )
            # The reference estimate doubles as the method estimate when
            # the same method is also selected.
            estimates[name] = (
                ref
                if name == reference_name
                else cached_estimate(name, estimator, system)
            )
        return MethodComparison(
            system_label=label, reference=ref, estimates=estimates
        )

    def evaluate_one(item: tuple[str, SystemModel]) -> MethodComparison:
        label, system = item
        _emit(progress, ProgressEvent(label, POINT_START))
        mc = config.mc if reference_estimator.is_stochastic else None
        compute = lambda: reference_estimator.estimate(system, config)
        if cache is not None:
            ref, cached_hit = cache.estimate_with_status(
                reference_name, system, mc, reference_name, compute
            )
        else:
            ref, cached_hit = compute(), False
        _emit(
            progress,
            ProgressEvent(
                label, POINT_DONE, trials=ref.trials, cached=cached_hit
            ),
        )
        return finish_item(item, ref)

    if executor == "process":
        references = _process_references(
            items, reference_name, reference_estimator, config, cache,
            workers, progress,
        )
        comparisons = tuple(
            finish_item(item, ref)
            for item, ref in zip(items, references)
        )
    elif workers > 1 and len(items) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            comparisons = tuple(pool.map(evaluate_one, items))
    else:
        comparisons = tuple(evaluate_one(item) for item in items)
    return ResultSet(
        comparisons=comparisons,
        methods=tuple(method_names),
        reference_method=reference_name,
        shard=shard,
        mc_token=mc_token(config.mc),
    )
