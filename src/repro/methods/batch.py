"""Batch evaluation engine over design spaces.

:func:`evaluate_design_space` runs a set of registered methods over many
systems — the Table-2 grid, a cluster-size sweep, a workload family —
with one uniform call, replacing the bespoke per-experiment loops. It

* memoizes per-component MTTFs in a shared
  :class:`~repro.methods.base.ComponentCache` (the same component
  profile is re-estimated hundreds of times across grid points in the
  Fig. 5/6 sweeps otherwise),
* optionally fans out over a thread pool (``workers=N``; the NumPy
  samplers release the GIL for the heavy draws), and
* returns a serializable :class:`~repro.methods.results.ResultSet`
  whose record order always matches the input order, regardless of
  worker count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

from ..core.comparison import MethodComparison
from ..core.montecarlo import MonteCarloConfig
from ..core.system import SystemModel
from ..errors import ConfigurationError
from . import registry
from .base import ComponentCache, MethodConfig
from .results import ResultSet

#: A design space item: a system, optionally labeled.
SpaceItem = SystemModel | tuple[str, SystemModel]


def _normalize_space(
    space: Iterable[SpaceItem],
) -> list[tuple[str, SystemModel]]:
    normalized: list[tuple[str, SystemModel]] = []
    for index, item in enumerate(space):
        if isinstance(item, SystemModel):
            normalized.append((f"system[{index}]", item))
        else:
            label, system = item
            if not isinstance(system, SystemModel):
                raise ConfigurationError(
                    f"design-space item {index} is not a SystemModel"
                )
            normalized.append((str(label), system))
    if not normalized:
        raise ConfigurationError("the design space is empty")
    return normalized


def evaluate_design_space(
    space: Iterable[SpaceItem],
    methods: Sequence[str],
    reference: str = "monte_carlo",
    mc_config: MonteCarloConfig | None = None,
    workers: int = 1,
    cache: ComponentCache | bool | None = None,
    skip_unsupported: bool = False,
) -> ResultSet:
    """Run ``methods`` against ``reference`` on every system in ``space``.

    Parameters
    ----------
    space:
        Iterable of systems or ``(label, system)`` pairs; evaluated in
        order.
    methods:
        Registered method names (see :func:`repro.methods.available`).
    reference:
        Reference method name (``"monte_carlo"`` or ``"exact"``).
    mc_config:
        Monte-Carlo settings shared by every stochastic estimate.
    workers:
        Thread-pool width; 1 (default) runs serially. Results keep the
        input order either way.
    cache:
        ``None`` (default) uses a fresh per-call component cache,
        ``False`` disables memoization, or pass a
        :class:`ComponentCache` to share across calls.
    skip_unsupported:
        When True, methods whose ``supports(system)`` is False are
        silently omitted from that system's record instead of raising.
    """
    items = _normalize_space(space)
    if not methods:
        raise ConfigurationError(
            f"methods must not be empty; available: {registry.available()}"
        )
    method_names = [registry.get(name).name for name in methods]
    reference_name = registry.canonical_name(reference)
    if cache is None or cache is True:
        cache = ComponentCache()
    elif cache is False:
        cache = None
    config = MethodConfig(
        mc=mc_config or MonteCarloConfig(),
        reference=reference_name,
        cache=cache,
    )
    reference_estimator = registry.get(reference_name)

    def evaluate_one(item: tuple[str, SystemModel]) -> MethodComparison:
        label, system = item
        ref = reference_estimator.estimate(system, config)
        estimates = {}
        for name in method_names:
            estimator = registry.get(name)
            if not estimator.supports(system):
                if skip_unsupported:
                    continue
                raise ConfigurationError(
                    f"method {name!r} does not support system {label!r}"
                )
            estimates[name] = estimator.estimate(system, config)
        return MethodComparison(
            system_label=label, reference=ref, estimates=estimates
        )

    if workers > 1 and len(items) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            comparisons = tuple(pool.map(evaluate_one, items))
    else:
        comparisons = tuple(evaluate_one(item) for item in items)
    return ResultSet(
        comparisons=comparisons,
        methods=tuple(method_names),
        reference_method=reference_name,
    )
