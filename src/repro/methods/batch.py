"""Batch evaluation engine over design spaces.

:func:`evaluate_design_space` runs a set of registered methods over many
systems — the Table-2 grid, a cluster-size sweep, a workload family —
with one uniform call, replacing the bespoke per-experiment loops. It

* memoizes per-component MTTFs *and* whole system-level estimates in a
  shared :class:`~repro.methods.base.ComponentCache`, keyed by content
  fingerprint (give the cache a
  :class:`~repro.methods.cache.DiskCache` and a warm rerun of a sweep
  performs zero re-estimations),
* fans out through a pluggable :class:`~repro.methods.executors.ChunkExecutor`
  backend — a thread pool (``executor="thread"``; the NumPy samplers
  release the GIL for the heavy draws), a process pool
  (``executor="process"``; true parallelism on one host), or a TCP
  worker fleet (``executor="remote"`` /
  :class:`~repro.methods.executors.RemoteExecutor`; paper-scale
  1e6-trial sweeps across machines),
* **streams** Monte-Carlo references at *chunk* granularity: chunk
  moments are folded into a per-point
  :class:`~repro.core.montecarlo.MomentAccumulator` the moment they
  complete (no gather-all barrier), each fold feeds the run's
  :class:`~repro.core.montecarlo.StoppingRule` so adaptive runs stop —
  and cancel their unneeded chunks — as soon as the target precision is
  reached, and every fold can emit a
  :class:`~repro.methods.progress.ProgressEvent`,
* can run as one **fully-pipelined, work-conserving schedule**
  (``pipeline_methods=True`` / ``reallocate_budget=True``): method
  estimator tasks join the pool the moment their point's reference
  finalizes instead of waiting for a post-reference phase, and trial
  budget freed by early-stopping points is re-granted to the
  least-converged stragglers at deterministic quiescent barriers
  (see :class:`_PipelinedScheduler`),
* partitions deterministically across machines: ``shard=(i, n)``
  evaluates every n-th grid point starting at i, and
  :func:`~repro.methods.results.merge_result_sets` reassembles the
  shards into the exact :class:`~repro.methods.results.ResultSet` an
  unsharded run produces, and
* returns a serializable :class:`~repro.methods.results.ResultSet`
  whose record order always matches the input order, regardless of
  worker count, executor, or chunk completion order — at fixed chunking
  with the stopping rule disabled, ``workers=1`` and ``workers=N``
  produce bit-identical numbers, and even adaptive runs are a pure
  function of the configuration because chunks fold in index order.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    as_completed,
    wait,
)
from typing import Iterable, Sequence

from ..core import kernel as _kernel
from ..core.comparison import MethodComparison
from ..core.montecarlo import (
    MomentAccumulator,
    MonteCarloConfig,
    adaptive_chunk_configs,
    allocate_grants,
    extension_chunk_configs,
    grant_chunk_trials,
    system_chunk_moments,
)
from ..core.system import SystemModel
from ..errors import ConfigurationError
from ..reliability.metrics import MTTFEstimate
from . import registry
from .base import ComponentCache, MethodConfig
from .cache import mc_token
from .executors import (
    ChunkExecutor,
    estimate_task,
    get_executor,
    resolve_workers,
)
from .ledger import BudgetLedger, ShardDeparted
from .progress import (
    BUDGET_CLAIMED,
    BUDGET_REALLOCATED,
    CACHE_PREWARMED,
    CHUNK_MERGED,
    METHOD_DONE,
    METHOD_STARTED,
    POINT_DONE,
    POINT_START,
    SHARD_ADOPTED,
    SHARD_DEPARTED,
    ProgressCallback,
    ProgressEvent,
    relative_stderr,
)
from .results import ResultSet, validate_shard

#: A design space item: a system, optionally labeled.
SpaceItem = SystemModel | tuple[str, SystemModel]


def _plan_batches(
    jobs: Sequence[tuple[int, MonteCarloConfig]], workers: int
) -> list[list[tuple[int, MonteCarloConfig]]]:
    """Split ``(chunk_index, config)`` jobs into at most ``workers`` batches.

    One :func:`~repro.core.kernel.run_plan_chunks` pool task runs each
    batch, so a point's chunk slice costs ``min(workers, chunks)``
    submissions instead of ``chunks`` — the IPC/pickling amortization
    half of the compiled-kernel layer. Contiguous slicing keeps every
    batch's chunk indices ascending, so the parent folds each result
    list front to back and the :class:`MomentAccumulator` sees the
    exact per-chunk fold sequence the unbatched path produces.
    """
    if not jobs:
        return []
    size = -(-len(jobs) // max(1, workers))
    return [jobs[i : i + size] for i in range(0, len(jobs), size)]


def _normalize_space(
    space: Iterable[SpaceItem],
) -> list[tuple[str, SystemModel]]:
    normalized: list[tuple[str, SystemModel]] = []
    for index, item in enumerate(space):
        if isinstance(item, SystemModel):
            normalized.append((f"system[{index}]", item))
        else:
            label, system = item
            if not isinstance(system, SystemModel):
                raise ConfigurationError(
                    f"design-space item {index} is not a SystemModel"
                )
            normalized.append((str(label), system))
    if not normalized:
        raise ConfigurationError("the design space is empty")
    return normalized


def shard_select(sequence: Sequence, shard: tuple[int, int] | None):
    """The deterministic slice of ``sequence`` one shard evaluates.

    Round-robin by position: shard ``(i, n)`` takes elements ``i``,
    ``i + n``, ``i + 2n``, ... — a pure function of the *full* sequence
    order, so N machines enumerating the same space partition it without
    coordination, shard sizes differ by at most one, and
    :func:`~repro.methods.results.merge_result_sets` can reassemble the
    original order exactly. Experiments use the same helper to keep
    their per-point metadata aligned with a sharded engine result.
    """
    if shard is None:
        return sequence
    index, count = validate_shard(shard)
    return sequence[index::count]


def _emit(progress: ProgressCallback | None, event: ProgressEvent) -> None:
    if progress is not None:
        progress(event)


def _finish_item(
    item: tuple[str, SystemModel],
    ref: MTTFEstimate,
    method_names: Sequence[str],
    reference_name: str,
    config: MethodConfig,
    cache: ComponentCache | None,
    skip_unsupported: bool,
) -> MethodComparison:
    """Assemble one point's comparison, computing methods in the parent.

    This is the *phased* method step: every method estimate runs (or is
    replayed from the cache) after the point's reference landed. The
    pipelined scheduler uses the same support/skip/reference-reuse rules
    but farms the estimates out to its pool instead.
    """
    label, system = item
    estimates: dict[str, MTTFEstimate] = {}
    for name in method_names:
        estimator = registry.get(name)
        if not estimator.supports(system):
            if skip_unsupported:
                continue
            raise ConfigurationError(
                f"method {name!r} does not support system {label!r}"
            )
        # The reference estimate doubles as the method estimate when
        # the same method is also selected.
        if name == reference_name:
            estimates[name] = ref
            continue
        mc = config.mc if estimator.is_stochastic else None
        if cache is None:
            estimates[name] = estimator.estimate(system, config)
        else:
            estimates[name] = cache.get_or_compute_estimate(
                name,
                system,
                mc,
                reference_name,
                lambda: estimator.estimate(system, config),
            )
    return MethodComparison(
        system_label=label, reference=ref, estimates=estimates
    )


def _stream_chunked_references(
    items: Sequence[tuple[str, SystemModel]],
    pending: Sequence[int],
    references: list[MTTFEstimate | None],
    mc: MonteCarloConfig,
    pool,
    workers: int,
    progress: ProgressCallback | None,
) -> None:
    """Streaming reduction of chunked Monte-Carlo references.

    Every pending point's *base* chunk plan (the fixed-chunking split)
    is submitted up front; chunk moments fold into that point's
    :class:`MomentAccumulator` as they complete — in chunk-index order,
    so the merged moments (and any early-stop decision) are identical
    to a serial run regardless of completion order. A point whose
    stopping rule is satisfied finalizes immediately and cancels its
    not-yet-started chunks (already-running stragglers finish in the
    pool and are ignored); a point that exhausts its submitted chunks
    without meeting the rule lazily submits its next slice of
    extension chunks (up to the ``max_trials`` budget), so a run that
    stops early never speculatively executes its extension tail.

    With a compiled kernel selected (``mc.kernel != "legacy"``) chunk
    tasks dispatch through fingerprint-cached
    :class:`~repro.core.kernel.SamplingPlan` batches
    (:func:`~repro.core.kernel.run_plan_chunks`): contiguous chunk
    slices coalesce into at most ``workers`` pool tasks, the plan
    itself ships only until every worker has been hydrated (a key-only
    task that lands on a cold worker comes back as ``PLAN_MISS`` and is
    resubmitted with the plan attached), and each batch's moments fold
    front to back — the accumulator orders folds by chunk index, so
    every number downstream is bit-identical to the unbatched path.
    """
    plan = adaptive_chunk_configs(mc)
    # The fixed plan has min(chunks, trials) chunks (see chunk_configs);
    # truncated budgets make the whole plan shorter still.
    base_count = min(mc.chunks, mc.trials, len(plan))
    label = f"monte_carlo[{mc.method}]"
    accumulators = {
        index: MomentAccumulator(len(plan), mc.stopping)
        for index in pending
    }
    batched = mc.kernel != "legacy"
    plans = (
        {index: _kernel.plan_for_system(items[index][1]) for index in pending}
        if batched
        else {}
    )
    shipped: dict[str, int] = {}
    submitted_chunks: dict[int, int] = {index: 0 for index in pending}
    futures_of: dict[int, list[Future]] = {index: [] for index in pending}
    future_meta: dict[Future, tuple] = {}

    def submit_batch(index, jobs, ship_plan=False) -> Future:
        point_plan = plans[index]
        key = point_plan.cache_key
        payload = None
        if ship_plan or shipped.get(key, 0) < workers:
            payload = point_plan
            shipped[key] = shipped.get(key, 0) + 1
        future = pool.submit(_kernel.run_plan_chunks, key, payload, jobs)
        futures_of[index].append(future)
        future_meta[future] = (index, jobs)
        return future

    def submit_chunks(index: int, count: int) -> list[Future]:
        start = submitted_chunks[index]
        stop = min(start + count, len(plan))
        submitted_chunks[index] = stop
        futures = []
        if batched:
            jobs = [(ci, plan[ci]) for ci in range(start, stop)]
            for batch in _plan_batches(jobs, workers):
                futures.append(submit_batch(index, batch))
            return futures
        for chunk_index in range(start, stop):
            future = pool.submit(
                system_chunk_moments, items[index][1], plan[chunk_index]
            )
            futures_of[index].append(future)
            future_meta[future] = (index, chunk_index)
            futures.append(future)
        return futures

    for index in pending:
        _emit(
            progress,
            ProgressEvent(
                items[index][0], POINT_START, total_chunks=len(plan)
            ),
        )
        submit_chunks(index, base_count)
    waiting = set(future_meta)
    while waiting:
        completed, waiting = wait(waiting, return_when=FIRST_COMPLETED)
        for future in completed:
            index = future_meta[future][0]
            accumulator = accumulators[index]
            if accumulator.done or future.cancelled():
                continue  # straggler of an already-finalized point
            if batched:
                status, payload = future.result()
                if status == _kernel.PLAN_MISS:
                    # Cold worker without the plan (spawn start method
                    # or an evicted cache entry): retry with the plan
                    # attached. Chunk moments are a pure function of
                    # the chunk configs, so nothing downstream moves.
                    waiting.add(
                        submit_batch(
                            index, future_meta[future][1], ship_plan=True
                        )
                    )
                    continue
                pairs = payload
            else:
                pairs = [(future_meta[future][1], future.result())]
            merged_before = accumulator.merged_chunks
            done = False
            for chunk_index, moments in pairs:
                done = accumulator.add(chunk_index, moments)
                if done:
                    # Later pairs of this batch are stragglers exactly
                    # like late futures: never folded, never counted.
                    break
            if done:
                references[index] = accumulator.estimate(label)
                if accumulator.stopped_early:
                    for leftover in futures_of[index]:
                        leftover.cancel()
                _emit(
                    progress,
                    ProgressEvent(
                        items[index][0],
                        POINT_DONE,
                        merged_chunks=accumulator.merged_chunks,
                        total_chunks=len(plan),
                        trials=accumulator.moments.count,
                        rel_stderr=relative_stderr(accumulator.moments),
                        stopped_early=accumulator.stopped_early,
                    ),
                )
                continue
            if accumulator.merged_chunks > merged_before:
                _emit(
                    progress,
                    ProgressEvent(
                        items[index][0],
                        CHUNK_MERGED,
                        merged_chunks=accumulator.merged_chunks,
                        total_chunks=len(plan),
                        trials=accumulator.moments.count,
                        rel_stderr=relative_stderr(accumulator.moments),
                    ),
                )
            if accumulator.merged_chunks == submitted_chunks[index]:
                # Every submitted chunk has merged and the target is
                # still unmet: release the next extension slice. One
                # pool-width at a time keeps the workers busy without
                # speculating the whole tail.
                waiting |= set(submit_chunks(index, max(1, workers)))


def _process_references(
    items: Sequence[tuple[str, SystemModel]],
    reference_name: str,
    reference_estimator,
    config: MethodConfig,
    cache: ComponentCache | None,
    workers: int,
    backend: ChunkExecutor,
    progress: ProgressCallback | None = None,
) -> list[MTTFEstimate]:
    """Reference estimates for every item via a memory-isolated backend.

    The pool comes from ``backend`` (a process pool or a remote worker
    fleet — any backend with ``shares_memory=False`` takes this path).
    Cache hits are resolved in the parent; only misses are farmed out.
    Monte-Carlo references with chunking (or a stopping rule) stream
    through :func:`_stream_chunked_references` so one expensive grid
    point spreads across cores and adaptive runs stop at their target
    precision; everything else fans out whole-estimate and is collected
    ``as_completed`` (order-independent — results land by index).
    """
    mc = config.mc if reference_estimator.is_stochastic else None
    references: list[MTTFEstimate | None] = [None] * len(items)
    keys: list[str | None] = [None] * len(items)
    pending: list[int] = []
    for index, (label, system) in enumerate(items):
        if cache is not None:
            keys[index] = cache.estimate_key(
                reference_name, system, mc, reference_name
            )
            found = cache.lookup_estimate(keys[index])
            if found is not None:
                references[index] = found
                # Cached points still get a start/done pair so progress
                # consumers see the same event shape on every path.
                _emit(progress, ProgressEvent(label, POINT_START))
                _emit(
                    progress,
                    ProgressEvent(
                        label, POINT_DONE, trials=found.trials,
                        cached=True,
                    ),
                )
                continue
        pending.append(index)
    if pending:
        chunked = reference_name == "monte_carlo" and (
            config.mc.chunks > 1 or config.mc.adaptive
        )
        with backend.pool(workers) as pool:
            if chunked:
                _stream_chunked_references(
                    items, pending, references, config.mc, pool,
                    workers, progress,
                )
            else:
                futures = {
                    pool.submit(
                        estimate_task,
                        reference_name,
                        items[index][1],
                        config.mc,
                        reference_name,
                    ): index
                    for index in pending
                }
                for index in pending:
                    _emit(
                        progress,
                        ProgressEvent(items[index][0], POINT_START),
                    )
                for future in as_completed(futures):
                    index = futures[future]
                    references[index] = future.result()
                    _emit(
                        progress,
                        ProgressEvent(
                            items[index][0],
                            POINT_DONE,
                            trials=references[index].trials,
                        ),
                    )
        if cache is not None:
            for index in pending:
                cache.store_estimate(keys[index], references[index])
    return references  # type: ignore[return-value]


class _PointState:
    """Mutable per-point bookkeeping for the pipelined scheduler."""

    __slots__ = (
        "index", "label", "system", "plan", "accumulator", "submitted",
        "reference", "ref_key", "estimates", "pending_methods",
        "methods_launched",
    )

    def __init__(self, index: int, label: str, system: SystemModel) -> None:
        self.index = index
        self.label = label
        self.system = system
        #: Chunk plan (mutable: budget grants append extension chunks).
        self.plan: list[MonteCarloConfig] | None = None
        self.accumulator: MomentAccumulator | None = None
        #: How many plan chunks have been submitted to the pool.
        self.submitted = 0
        self.reference: MTTFEstimate | None = None
        self.ref_key: str | None = None
        self.estimates: dict[str, MTTFEstimate] = {}
        self.pending_methods: set[str] = set()
        self.methods_launched = False


class _PipelinedScheduler:
    """Work-conserving sweep scheduler: one pool, three work kinds.

    A single executor pool runs, with no phase barriers between them:

    * **reference chunks** — every pending point's Monte-Carlo chunk
      plan streams through a per-point :class:`MomentAccumulator`
      exactly as the classic process path does (in-order folds,
      early-stop cancellation, lazy ``max_trials`` extension);
    * **method estimates** (``pipeline_methods``) — the moment a
      point's reference finalizes, its per-method estimator tasks join
      the same pool and :class:`MethodComparison` inputs are recorded
      as results land, in any order;
    * **budget extensions** (``reallocate_budget``) — trial budget
      freed by early-stopping points accumulates in a ledger and is
      re-granted to the least-converged open points as
      prefix-preserving extension chunks.

    Determinism: chunk moments fold strictly in chunk-index order per
    point (the PR-3 invariant), and re-allocation fires only at
    *quiescent barriers* — moments when no reference chunk is in flight
    anywhere, which can only occur once every point has
    deterministically resolved its current plan (satisfied, exhausted,
    or censored). The ledger total, the candidate set, the
    least-converged ordering, and the round-robin grants are therefore
    pure functions of the configuration, never of worker count,
    executor, or completion order. Extension chunk seeds are spawned by
    chunk index (:func:`~repro.core.montecarlo.extension_chunk_config`),
    so grants preserve every previously drawn sample. Within one
    invocation the budget is conserved.

    A plain sharded run redistributes within its own shard only. With
    a :class:`~repro.methods.ledger.BudgetLedger` attached
    (``budget_ledger=...``), the quiescent barriers become *fleet*
    barriers instead: the shard publishes its freed budget and open
    points to the shared ledger file, waits for its co-running
    siblings' rounds, and every shard computes the identical global
    allocation (worst deficit first across the whole fleet, ties by
    global point index) with the same
    :func:`~repro.core.montecarlo.allocate_grants` policy the local
    path uses — N shards behave as one work-conserving fleet, and the
    grant schedule is deterministic given the ledger contents (see
    :mod:`repro.methods.ledger` and docs/SCHEDULER.md).
    """

    def __init__(
        self,
        items: Sequence[tuple[str, SystemModel]],
        method_names: Sequence[str],
        reference_name: str,
        reference_estimator,
        config: MethodConfig,
        cache: ComponentCache | None,
        workers: int,
        backend: ChunkExecutor,
        progress: ProgressCallback | None,
        pipeline_methods: bool,
        reallocate_budget: bool,
        skip_unsupported: bool,
        shard: tuple[int, int] | None,
        budget_ledger: BudgetLedger | None = None,
        full_items: Sequence[tuple[str, SystemModel]] | None = None,
    ) -> None:
        self.method_names = method_names
        self.reference_name = reference_name
        self.reference_estimator = reference_estimator
        self.config = config
        self.cache = cache
        self.workers = workers
        self.backend = backend
        self.progress = progress
        self.pipeline_methods = pipeline_methods
        self.reallocate = reallocate_budget
        self.skip_unsupported = skip_unsupported
        self.shard = shard
        self.points = [
            _PointState(index, label, system)
            for index, (label, system) in enumerate(items)
        ]
        mc = config.mc
        self.chunked = reference_name == "monte_carlo" and (
            mc.chunks > 1 or mc.adaptive
        )
        #: A re-allocated reference depends on the whole sweep's ledger,
        #: not just (system, MC config) — so it must never enter the
        #: content-addressed cache, where a later run (or a co-running
        #: shard) would replay it as if it were the pure fixed-budget
        #: estimate. Method estimates stay pure and cacheable.
        self.reference_cacheable = not (
            reallocate_budget and self.chunked and mc.adaptive
        )
        self.mc_label = f"monte_carlo[{mc.method}]"
        self.grant_unit = grant_chunk_trials(mc)
        #: Freed trial budget awaiting re-allocation (or, with a
        #: cross-shard ledger, awaiting publication to the fleet pool).
        self.ledger = 0
        #: Cross-shard coordination (None: shard-local re-allocation).
        self.xledger = budget_ledger
        self.xshard_round = 0
        self.xshard_active = budget_ledger is not None
        #: Points finalized since the last ledger publication:
        #: ``(global index, trials)`` audit records.
        self._xshard_converged: list[tuple[int, int]] = []
        #: Elastic membership: the *unsharded* space, needed to re-run
        #: a departed sibling's slot; adopted slots' ResultSets; the
        #: adoption worker threads and their first error.
        self.full_items = full_items
        self.adopted: dict[int, "ResultSet"] = {}
        self._adoption_threads: list[threading.Thread] = []
        self._adoption_errors: list[BaseException] = []
        self._adoption_lock = threading.Lock()
        self.pool = None
        self.waiting: set[Future] = set()
        self.future_meta: dict[Future, tuple] = {}
        self.chunk_futures: dict[int, list[Future]] = {}
        #: Outstanding reference-chunk (or batched-plan) futures
        #: (straggler-inclusive); zero means a quiescent barrier for
        #: re-allocation purposes.
        self.live_chunks = 0
        #: Compiled-kernel dispatch: chunk slices coalesce into
        #: fingerprint-keyed plan batches (see module helper
        #: :func:`_plan_batches`); ``legacy`` keeps per-chunk
        #: ``system_chunk_moments`` submissions as the benchmark axis.
        self.use_plans = self.chunked and mc.kernel != "legacy"
        #: Plan-carrying submissions so far, per plan cache key —
        #: after ``workers`` of them every pool worker holds the plan
        #: and steady-state batches ship a 64-byte key instead.
        self._plan_shipped: dict[str, int] = {}

    # -- plumbing ----------------------------------------------------------

    def _emit(self, event: ProgressEvent) -> None:
        _emit(self.progress, event)

    def _reference_mc(self) -> MonteCarloConfig | None:
        if self.reference_estimator.is_stochastic:
            return self.config.mc
        return None

    def _method_mc(self, estimator) -> MonteCarloConfig | None:
        return self.config.mc if estimator.is_stochastic else None

    def _defer_exhausted(self) -> bool:
        """Whether exhausted-unsatisfied points wait for budget grants."""
        return self.reallocate and self.config.mc.adaptive

    # -- prewarm -----------------------------------------------------------

    def _prewarm(self) -> None:
        """Pre-touch every estimate key this run will need (disk cache).

        Co-running shards pointed at one ``--cache-dir`` publish their
        finished estimates as they land; pulling the shard's keys into
        memory up front means points a sibling already finished are
        skipped before any work is scheduled.
        """
        cache = self.cache
        if cache is None or cache.disk is None:
            return
        keys = []
        for state in self.points:
            if self.reference_cacheable:
                keys.append(
                    cache.estimate_key(
                        self.reference_name, state.system,
                        self._reference_mc(), self.reference_name,
                    )
                )
            for name in self.method_names:
                estimator = registry.get(name)
                keys.append(
                    cache.estimate_key(
                        name, state.system, self._method_mc(estimator),
                        self.reference_name,
                    )
                )
        warmed = cache.prewarm_estimates(keys)
        label = (
            "sweep"
            if self.shard is None
            else f"shard {self.shard[0]}/{self.shard[1]}"
        )
        self._emit(
            ProgressEvent(label, CACHE_PREWARMED, warmed_entries=warmed)
        )

    # -- work submission ---------------------------------------------------

    def _start_point(self, state: _PointState) -> None:
        if self.cache is not None and self.reference_cacheable:
            state.ref_key = self.cache.estimate_key(
                self.reference_name, state.system, self._reference_mc(),
                self.reference_name,
            )
            found = self.cache.lookup_estimate(state.ref_key)
            if found is not None:
                state.reference = found
                self._emit(ProgressEvent(state.label, POINT_START))
                self._emit(
                    ProgressEvent(
                        state.label, POINT_DONE, trials=found.trials,
                        cached=True,
                    )
                )
                self._launch_methods(state)
                return
        if self.chunked:
            state.plan = adaptive_chunk_configs(self.config.mc)
            state.accumulator = MomentAccumulator(
                len(state.plan), self.config.mc.stopping
            )
            self._emit(
                ProgressEvent(
                    state.label, POINT_START, total_chunks=len(state.plan)
                )
            )
            base_count = min(
                self.config.mc.chunks, self.config.mc.trials,
                len(state.plan),
            )
            self._submit_chunks(state, base_count)
            return
        self._emit(ProgressEvent(state.label, POINT_START))
        if not self.backend.shares_memory:
            future = self.pool.submit(
                estimate_task, self.reference_name, state.system,
                self.config.mc, self.reference_name,
            )
        else:
            future = self.pool.submit(
                self.reference_estimator.estimate, state.system,
                self.config,
            )
        self.future_meta[future] = ("reference", state.index)
        self.waiting.add(future)

    def _submit_chunks(self, state: _PointState, count: int) -> None:
        futures = self.chunk_futures.setdefault(state.index, [])
        start = state.submitted
        stop = min(start + count, len(state.plan))
        state.submitted = stop
        if self.use_plans:
            jobs = [
                (chunk_index, state.plan[chunk_index])
                for chunk_index in range(start, stop)
            ]
            for batch in _plan_batches(jobs, self.workers):
                self._submit_batch(state, batch)
            return
        for chunk_index in range(start, stop):
            future = self.pool.submit(
                system_chunk_moments, state.system, state.plan[chunk_index]
            )
            self.future_meta[future] = ("chunk", state.index, chunk_index)
            futures.append(future)
            self.waiting.add(future)
            self.live_chunks += 1

    def _submit_batch(self, state: _PointState, jobs, ship_plan=False):
        """Submit one batched-plan task for a contiguous chunk slice."""
        plan = _kernel.plan_for_system(state.system)
        key = plan.cache_key
        payload = None
        if ship_plan or self._plan_shipped.get(key, 0) < self.workers:
            payload = plan
            self._plan_shipped[key] = self._plan_shipped.get(key, 0) + 1
        future = self.pool.submit(
            _kernel.run_plan_chunks, key, payload, jobs
        )
        self.future_meta[future] = ("batch", state.index, jobs)
        self.chunk_futures.setdefault(state.index, []).append(future)
        self.waiting.add(future)
        self.live_chunks += 1

    def _launch_methods(self, state: _PointState) -> None:
        if not self.pipeline_methods or state.methods_launched:
            return
        state.methods_launched = True
        for name in self.method_names:
            estimator = registry.get(name)
            if not estimator.supports(state.system):
                if self.skip_unsupported:
                    continue
                raise ConfigurationError(
                    f"method {name!r} does not support system "
                    f"{state.label!r}"
                )
            # The reference estimate doubles as the method estimate
            # when the same method is also selected.
            if name == self.reference_name:
                state.estimates[name] = state.reference
                continue
            if self.cache is not None:
                key = self.cache.estimate_key(
                    name, state.system, self._method_mc(estimator),
                    self.reference_name,
                )
                found = self.cache.lookup_estimate(key)
                if found is not None:
                    state.estimates[name] = found
                    self._emit(
                        ProgressEvent(
                            state.label, METHOD_DONE, method=name,
                            trials=found.trials, cached=True,
                        )
                    )
                    continue
            if not self.backend.shares_memory:
                if estimator.per_component and self.cache is not None:
                    # A worker would rebuild a cache-free config and
                    # re-sample every component MTTF per point; for
                    # sweeps where hundreds of points share components
                    # (every C of one profile), parent-side memoization
                    # beats fan-out by orders of magnitude — keep these
                    # in the parent, exactly as the phased path does.
                    # Deliberate trade-off: the first point per distinct
                    # component runs its MC estimate inline and briefly
                    # stalls the completion loop — never worse than the
                    # phased schedule, which serialized all of them.
                    estimate = estimator.estimate(
                        state.system, self.config
                    )
                    state.estimates[name] = estimate
                    if key is not None:
                        self.cache.store_estimate(key, estimate)
                    self._emit(
                        ProgressEvent(
                            state.label, METHOD_DONE, method=name,
                            trials=estimate.trials,
                        )
                    )
                    continue
                # Workers rebuild a cache-free config; caching stays in
                # the parent so it needs no cross-process coordination.
                future = self.pool.submit(
                    estimate_task, name, state.system, self.config.mc,
                    self.reference_name,
                )
            else:
                future = self.pool.submit(
                    estimator.estimate, state.system, self.config
                )
            self.future_meta[future] = ("method", state.index, name)
            self.waiting.add(future)
            state.pending_methods.add(name)
            self._emit(
                ProgressEvent(state.label, METHOD_STARTED, method=name)
            )

    # -- completions -------------------------------------------------------

    def _on_chunk(self, future: Future, index: int, chunk_index: int) -> None:
        self.live_chunks -= 1
        state = self.points[index]
        accumulator = state.accumulator
        if accumulator.done or future.cancelled():
            # Straggler of an already-resolved point: its moments are
            # never folded and never counted — merged_chunks is always
            # the accumulator's fold count, nothing else.
            return
        merged_before = accumulator.merged_chunks
        done = accumulator.add(chunk_index, future.result())
        if done:
            if accumulator.satisfied or not self._defer_exhausted():
                self._finalize_reference(state)
            # else: exhausted without meeting the rule — stay open for
            # a budget grant; finalized at the final quiescent barrier
            # if none arrives.
            return
        if accumulator.merged_chunks > merged_before:
            self._emit(
                ProgressEvent(
                    state.label, CHUNK_MERGED,
                    merged_chunks=accumulator.merged_chunks,
                    total_chunks=accumulator.total_chunks,
                    trials=accumulator.moments.count,
                    rel_stderr=relative_stderr(accumulator.moments),
                )
            )
        if accumulator.merged_chunks == state.submitted:
            # Every submitted chunk has merged and the target is still
            # unmet: release the next extension slice. One pool-width
            # at a time keeps the workers busy without speculating the
            # whole tail.
            self._submit_chunks(state, max(1, self.workers))

    def _on_batch(self, future: Future, index: int, jobs) -> None:
        """Fold one batched-plan result (the compiled-kernel path).

        The result pairs arrive in ascending chunk-index order and fold
        front to back; the accumulator orders folds by chunk index
        across batches, so the merged moments, the stop decision, and
        the extension schedule are bit-identical to per-chunk dispatch.
        """
        self.live_chunks -= 1
        state = self.points[index]
        accumulator = state.accumulator
        if accumulator.done or future.cancelled():
            return
        status, payload = future.result()
        if status == _kernel.PLAN_MISS:
            # Cold worker without the plan (spawn start method or an
            # evicted cache entry): retry with the plan attached.
            self._submit_batch(state, jobs, ship_plan=True)
            return
        merged_before = accumulator.merged_chunks
        done = False
        for chunk_index, moments in payload:
            done = accumulator.add(chunk_index, moments)
            if done:
                # Later pairs of this batch are stragglers exactly like
                # late futures: never folded, never counted.
                break
        if done:
            if accumulator.satisfied or not self._defer_exhausted():
                self._finalize_reference(state)
            return
        if accumulator.merged_chunks > merged_before:
            self._emit(
                ProgressEvent(
                    state.label, CHUNK_MERGED,
                    merged_chunks=accumulator.merged_chunks,
                    total_chunks=accumulator.total_chunks,
                    trials=accumulator.moments.count,
                    rel_stderr=relative_stderr(accumulator.moments),
                )
            )
        if accumulator.merged_chunks == state.submitted:
            self._submit_chunks(state, max(1, self.workers))

    def _on_reference(self, future: Future, index: int) -> None:
        state = self.points[index]
        state.reference = future.result()
        if self.cache is not None and state.ref_key is not None:
            self.cache.store_estimate(state.ref_key, state.reference)
        self._emit(
            ProgressEvent(
                state.label, POINT_DONE, trials=state.reference.trials
            )
        )
        self._launch_methods(state)

    def _on_method(self, future: Future, index: int, name: str) -> None:
        state = self.points[index]
        estimate = future.result()
        state.estimates[name] = estimate
        state.pending_methods.discard(name)
        if self.cache is not None:
            key = self.cache.estimate_key(
                name, state.system, self._method_mc(registry.get(name)),
                self.reference_name,
            )
            self.cache.store_estimate(key, estimate)
        self._emit(
            ProgressEvent(
                state.label, METHOD_DONE, method=name,
                trials=estimate.trials,
            )
        )

    def _finalize_reference(self, state: _PointState) -> None:
        accumulator = state.accumulator
        state.reference = accumulator.estimate(self.mc_label)
        if self.reallocate:
            # Unspent plan trials (cancelled or never-submitted chunks)
            # return to the shared ledger. A straggler chunk that was
            # already running when the rule fired is credited too: the
            # ledger tracks the *logical* budget, so the decision stays
            # a pure function of the configuration.
            planned = sum(chunk.trials for chunk in state.plan)
            self.ledger += max(0, planned - accumulator.moments.count)
        if accumulator.stopped_early:
            for leftover in self.chunk_futures.get(state.index, ()):
                leftover.cancel()
        if self.xledger is not None:
            self._xshard_converged.append(
                (
                    self._global_index(state.index),
                    accumulator.moments.count,
                )
            )
        if self.cache is not None and state.ref_key is not None:
            self.cache.store_estimate(state.ref_key, state.reference)
        self._emit(
            ProgressEvent(
                state.label, POINT_DONE,
                merged_chunks=accumulator.merged_chunks,
                total_chunks=accumulator.total_chunks,
                trials=accumulator.moments.count,
                rel_stderr=relative_stderr(accumulator.moments),
                stopped_early=accumulator.stopped_early,
            )
        )
        self._launch_methods(state)

    # -- budget re-allocation ----------------------------------------------

    def _open_candidates(self) -> list[tuple[float, _PointState]]:
        """Open, unsatisfied points ranked least-converged first.

        "Least converged" means the largest
        :meth:`~repro.core.montecarlo.StoppingRule.deficit` — distance
        from the *configured* targets, so absolute CI-half-width rules
        rank by half-width, not relative error. Ties break by point
        index. Points without a measurable deficit (censored
        all-infinite moments — more trials cannot demonstrably help)
        are never candidates.
        """
        rule = self.config.mc.stopping
        if rule is None:
            return []
        ranked: list[tuple[float, _PointState]] = []
        for state in self.points:
            accumulator = state.accumulator
            if (
                state.reference is not None
                or accumulator is None
                or not accumulator.done
                or accumulator.satisfied
                or accumulator.moments is None
            ):
                continue
            deficit = rule.deficit(accumulator.moments)
            if deficit is not None:
                ranked.append((deficit, state))
        ranked.sort(key=lambda pair: (-pair[0], pair[1].index))
        return ranked

    def _apply_grant(
        self, state: _PointState, sizes: Sequence[int], kind: str
    ) -> None:
        """Extend one point's plan with granted chunks and submit them.

        ``kind`` distinguishes the funding pool in the progress stream:
        ``budget-reallocated`` for shard-local grants,
        ``budget-claimed`` for cross-shard ledger grants.
        """
        state.plan.extend(
            extension_chunk_configs(
                self.config.mc, len(state.plan), sizes
            )
        )
        state.accumulator.extend_plan(len(sizes))
        self._emit(
            ProgressEvent(
                state.label, kind,
                merged_chunks=state.accumulator.merged_chunks,
                total_chunks=state.accumulator.total_chunks,
                trials=state.accumulator.moments.count,
                rel_stderr=state.accumulator.moments.rel_stderr,
                granted_trials=sum(sizes),
                granted_chunks=len(sizes),
            )
        )
        self._submit_chunks(state, len(sizes))

    def _grant_round(self) -> bool:
        """Distribute the local ledger to the least-converged points.

        Called only at quiescent barriers. Grants are computed by
        :func:`~repro.core.montecarlo.allocate_grants` — round-robin in
        :func:`grant_chunk_trials` units over the ranked candidates,
        spending the ledger exactly (the final grant may be a partial
        chunk).
        """
        if self.ledger < 1:
            return False
        ranked = self._open_candidates()
        if not ranked:
            return False
        grants = allocate_grants(
            self.ledger,
            [(deficit, state.index) for deficit, state in ranked],
            self.grant_unit,
        )
        self.ledger = 0
        for _deficit, state in ranked:
            sizes = grants.get(state.index)
            if sizes:
                self._apply_grant(state, sizes, BUDGET_REALLOCATED)
        return True

    # -- cross-shard budget ledger -----------------------------------------

    def _global_index(self, local: int) -> int:
        """Map a local point index to its full-space (fleet) index.

        Round-robin sharding puts global point ``k`` at position
        ``k // n`` of shard ``k % n``, so local position ``p`` of shard
        ``(i, n)`` is global ``p * n + i`` — the key space the ledger's
        demand ranking and grant records use.
        """
        index, count = self.shard
        return local * count + index

    def _drain_converged(self) -> list[tuple[int, int]]:
        pending = self._xshard_converged
        self._xshard_converged = []
        return pending

    def _budget_round(self) -> bool:
        """One quiescent-barrier budget decision (local or fleet-wide)."""
        if self.xledger is not None:
            if not self.xshard_active:
                return False
            return self._xshard_rounds()
        return self._grant_round()

    def _xshard_rounds(self) -> bool:
        """Run ledger rounds until this shard gains work or leaves.

        Each iteration publishes one sealed round block (freed budget
        and open points), rendezvouses with the co-running shards, and
        computes the fleet-wide allocation every shard derives
        identically from the ledger. Returns True when this shard
        received grants (extension chunks were submitted); False when
        the protocol ended for this shard — in which case the
        remaining open points are finalized as budget-exhausted and
        the departure is recorded.
        """
        ledger = self.xledger
        while True:
            if (
                ledger.leave_after is not None
                and self.xshard_round >= ledger.leave_after
            ):
                self._leave_fleet(ledger)
            ranked = self._open_candidates()
            opens = [
                (
                    self._global_index(state.index),
                    deficit,
                    state.accumulator.moments.count,
                )
                for deficit, state in ranked
            ]
            number = self.xshard_round
            ledger.publish_round(
                number, self.ledger, opens, self._drain_converged()
            )
            self.ledger = 0
            grants = ledger.rendezvous(number, self.grant_unit)
            self.xshard_round += 1
            count = self.shard[1]
            mine = {
                index: sizes
                for index, sizes in grants.items()
                if index % count == self.shard[0]
            }
            if mine:
                ledger.record_claims(number, mine)
                for _deficit, state in ranked:
                    sizes = mine.get(self._global_index(state.index))
                    if sizes:
                        self._apply_grant(state, sizes, BUDGET_CLAIMED)
                return True
            if not grants or not ranked:
                # Protocol over (no grants anywhere), or every grant
                # went elsewhere and this shard has nothing open:
                # leave the fleet. Finalize the still-open stragglers
                # first so their final trial counts land in the audit
                # trail.
                self.xshard_active = False
                self._finalize_stragglers()
                ledger.close(number, self._drain_converged())
                return False
            # Open points but no grants this round: the pool went to
            # worse-converged points elsewhere; wait for the next
            # round (new budget can still be freed by their grants
            # stopping early).

    # -- elastic membership ------------------------------------------------

    def _fleet_label(self) -> str:
        return f"shard {self.shard[0]}/{self.shard[1]}"

    def _leave_fleet(self, ledger: BudgetLedger) -> None:
        """Voluntary mid-run departure (``leave_after`` rounds).

        Writes the ``shard-depart`` record *before* going silent so
        survivors adopt immediately instead of waiting out a lease,
        then aborts this member's run with :class:`ShardDeparted`.
        """
        number = self.xshard_round
        ledger.depart(number, reason="leave")
        ledger.stop_heartbeat()
        self._emit(
            ProgressEvent(
                self._fleet_label(),
                SHARD_DEPARTED,
                shard=self.shard[0],
                round=number,
            )
        )
        raise ShardDeparted(
            f"shard {self.shard[0]}/{self.shard[1]} left the fleet "
            f"before round {number} (leave_after={ledger.leave_after}); "
            "its open points pass to the recorded adopter",
            slot=self.shard[0],
            round_number=number,
        )

    def _on_shard_depart(self, slot: int, number: int) -> None:
        self._emit(
            ProgressEvent(
                self._fleet_label(),
                SHARD_DEPARTED,
                shard=slot,
                round=number,
            )
        )

    def _adopt_slot(self, slot: int) -> None:
        """Adopt a departed sibling's slot (ledger ``on_adopt`` hook).

        Runs the vacant slot's *entire* deterministic schedule in a
        worker thread via a nested :func:`evaluate_design_space` on a
        takeover ledger handle: rounds the departed member already
        sealed verify like a replay, the rest seal live, and the
        slot's complete ResultSet lands in :attr:`adopted` — so this
        member's output can stand in for the lost one at merge time.
        The thread coordinates with this scheduler purely through the
        ledger file, exactly as a separate ``--join`` process would.
        """
        if self.full_items is None:  # pragma: no cover - defensive
            raise ConfigurationError(
                "cannot adopt a departed shard without the full design "
                "space (internal wiring error)"
            )
        self._emit(
            ProgressEvent(self._fleet_label(), SHARD_ADOPTED, shard=slot)
        )
        handle = self.xledger.takeover_handle(slot)

        def adopt() -> None:
            try:
                result = evaluate_design_space(
                    self.full_items,
                    self.method_names,
                    reference=self.reference_name,
                    mc_config=self.config.mc,
                    workers=self.workers,
                    executor=self.backend,
                    cache=self.cache if self.cache is not None else False,
                    skip_unsupported=self.skip_unsupported,
                    shard=(slot, self.shard[1]),
                    progress=self.progress,
                    pipeline_methods=self.pipeline_methods,
                    reallocate_budget=True,
                    budget_ledger=handle,
                )
            except BaseException as error:  # noqa: BLE001 - re-raised
                with self._adoption_lock:
                    self._adoption_errors.append(error)
            else:
                with self._adoption_lock:
                    self.adopted[slot] = result

        thread = threading.Thread(
            target=adopt, name=f"adopt-slot-{slot}", daemon=True
        )
        self._adoption_threads.append(thread)
        thread.start()

    def _finish_adoptions(self) -> None:
        for thread in self._adoption_threads:
            thread.join()
        if self._adoption_errors:
            raise self._adoption_errors[0]

    def _finalize_stragglers(self) -> bool:
        """Finalize open points no grant will ever reach."""
        finalized = False
        for state in self.points:
            if (
                state.reference is None
                and state.accumulator is not None
                and state.accumulator.done
            ):
                self._finalize_reference(state)
                finalized = True
        return finalized

    # -- main loop ---------------------------------------------------------

    def run(self) -> tuple[MethodComparison, ...]:
        self._prewarm()
        if self.xledger is not None:
            self.xledger.on_depart = self._on_shard_depart
            self.xledger.on_adopt = self._adopt_slot
            self.xledger.open_run(
                mc_token(self.config.mc),
                self.method_names,
                self.reference_name,
            )
        try:
            return self._run_schedule()
        finally:
            if self.xledger is not None:
                self.xledger.stop_heartbeat()

    def _run_schedule(self) -> tuple[MethodComparison, ...]:
        with self.backend.pool(self.workers) as pool:
            self.pool = pool
            for state in self.points:
                self._start_point(state)
            while True:
                if not self.waiting:
                    if self.chunked:
                        if self.reallocate and self._budget_round():
                            continue
                        if self._finalize_stragglers():
                            # Finalizing may pipeline method tasks.
                            continue
                    break
                completed, self.waiting = wait(
                    self.waiting, return_when=FIRST_COMPLETED
                )
                for future in completed:
                    meta = self.future_meta.pop(future)
                    if meta[0] == "chunk":
                        self._on_chunk(future, meta[1], meta[2])
                    elif meta[0] == "batch":
                        self._on_batch(future, meta[1], meta[2])
                    elif meta[0] == "reference":
                        self._on_reference(future, meta[1])
                    else:
                        self._on_method(future, meta[1], meta[2])
                if self.live_chunks == 0 and self.reallocate and (
                    self.chunked
                ):
                    if not self._budget_round():
                        # No grants possible now and the only budget
                        # source (chunked finalizations) is quiet:
                        # release any still-open points to the method
                        # stage instead of leaving them idle.
                        self._finalize_stragglers()
        # Adoptions this member picked up must land before the result
        # is assembled — their ResultSets ride along in `adopted`.
        self._finish_adoptions()
        comparisons = []
        for state in self.points:
            if state.reference is None or state.pending_methods:
                raise ConfigurationError(
                    f"scheduler finished with incomplete point "
                    f"{state.label!r}"
                )  # pragma: no cover - defensive invariant
            if self.pipeline_methods:
                comparisons.append(
                    MethodComparison(
                        system_label=state.label,
                        reference=state.reference,
                        estimates=state.estimates,
                    )
                )
            else:
                comparisons.append(
                    _finish_item(
                        (state.label, state.system),
                        state.reference,
                        self.method_names,
                        self.reference_name,
                        self.config,
                        self.cache,
                        self.skip_unsupported,
                    )
                )
        return tuple(comparisons)


def evaluate_design_space(
    space: Iterable[SpaceItem],
    methods: Sequence[str],
    reference: str = "monte_carlo",
    mc_config: MonteCarloConfig | None = None,
    workers: int | str = 1,
    executor: str | ChunkExecutor = "thread",
    cache: ComponentCache | bool | None = None,
    skip_unsupported: bool = False,
    shard: tuple[int, int] | None = None,
    progress: ProgressCallback | None = None,
    pipeline_methods: bool = False,
    reallocate_budget: bool = False,
    budget_ledger: BudgetLedger | None = None,
) -> ResultSet:
    """Run ``methods`` against ``reference`` on every system in ``space``.

    Parameters
    ----------
    space:
        Iterable of systems or ``(label, system)`` pairs; evaluated in
        order.
    methods:
        Registered method names (see :func:`repro.methods.available`).
    reference:
        Reference method name (``"monte_carlo"`` or ``"exact"``).
    mc_config:
        Monte-Carlo settings shared by every stochastic estimate. Set
        ``chunks > 1`` to split each estimate into seeded sub-runs —
        the unit of both parallelism and adaptivity. A
        :class:`~repro.core.montecarlo.StoppingRule` on the config makes
        runs precision-driven: chunks are scheduled until the target
        stderr is reached. Numbers depend on the chunking and the rule,
        never on the worker count or executor.
    workers:
        Fan-out width; 1 (default) runs serially, ``"auto"`` asks the
        backend (cpu count for local pools, fleet size for a remote
        executor). Results keep the input order either way.
    executor:
        A registered backend name — ``"thread"`` (default),
        ``"process"``, ``"remote"`` — or a
        :class:`~repro.methods.executors.ChunkExecutor` instance such
        as ``RemoteExecutor(["hostA:8421", "hostB:8421"])``. Threads
        suit the GIL-releasing NumPy samplers; processes buy true
        parallelism on one host; a remote fleet scales past it.
        Memory-isolated backends (``shares_memory=False``) stream
        reference chunks (the expensive part); method estimates and
        caching stay in the parent. The backend never affects the
        numbers.
    cache:
        ``None`` (default) uses a fresh per-call cache,
        ``False`` disables memoization, or pass a
        :class:`ComponentCache` to share across calls (optionally
        disk-backed for cross-invocation reuse).
    skip_unsupported:
        When True, methods whose ``supports(system)`` is False are
        silently omitted from that system's record instead of raising.
    shard:
        ``(i, n)`` evaluates only this machine's round-robin share of
        the space (see :func:`shard_select`); labels still come from
        the full-space enumeration. The returned set records the shard
        so :func:`~repro.methods.results.merge_result_sets` can verify
        completeness and restore the unsharded order. N machines
        pointing at one shared disk cache split one grid with no
        coordination beyond the shard index.
    progress:
        Optional callback receiving
        :class:`~repro.methods.progress.ProgressEvent` per grid point
        (and per merged chunk on the streaming process path).
    pipeline_methods:
        When True, method estimates are submitted to the pool the
        moment their point's reference finalizes instead of running in
        a post-reference phase — the sweep becomes one fully-pipelined
        stream with no phase barrier. Results are bit-identical to the
        phased run (method estimates are pure functions of the
        configuration); only the schedule changes.
    reallocate_budget:
        When True (and the Monte-Carlo config carries a
        :class:`~repro.core.montecarlo.StoppingRule`), trial budget
        freed by early-stopping points is returned to a shared ledger
        and re-granted to the least-converged points that exhausted
        their own budget without meeting the target. Grant decisions
        fire only at quiescent barriers on in-order fold state, so the
        numbers stay bit-identical across worker counts and executors —
        but they *differ* from a non-reallocating run (stragglers get
        more trials), and a sharded run redistributes within its own
        shard only unless a ``budget_ledger`` is attached. A no-op
        without a stopping rule.
    budget_ledger:
        A :class:`~repro.methods.ledger.BudgetLedger` handle on the
        fleet's shared ledger file (typically
        ``ledger_path(cache_dir, run_id)``), turning shard-local
        re-allocation into *cross-shard* coordination: freed budget is
        published to — and claimed from — a global pool shared by the
        co-running shards of one sweep, at deterministic fleet
        barriers. Requires ``shard=`` (matching the ledger's own
        coordinates), ``reallocate_budget=True``, and an adaptive
        ``monte_carlo`` reference. The result's ``mc_token`` is tagged
        ``+xshard`` so :func:`~repro.methods.results.merge_result_sets`
        only combines ledger-coordinated shards with each other.
    """
    items = _normalize_space(space)
    full_items = items
    if shard is not None:
        shard = validate_shard(shard)
        items = shard_select(items, shard)
    if not methods:
        raise ConfigurationError(
            f"methods must not be empty; available: {registry.available()}"
        )
    # The executor registry is the one source of truth: registering a
    # backend (see executors.register_executor) legalizes its spelling
    # here, on the CLI, and in repro-serve alike.
    backend = get_executor(executor)
    workers = resolve_workers(workers, backend)
    method_names = [registry.get(name).name for name in methods]
    reference_name = registry.canonical_name(reference)
    if cache is None or cache is True:
        cache = ComponentCache()
    elif cache is False:
        cache = None
    config = MethodConfig(
        mc=mc_config or MonteCarloConfig(),
        reference=reference_name,
        cache=cache,
    )
    reference_estimator = registry.get(reference_name)
    if budget_ledger is not None:
        if shard is None:
            raise ConfigurationError(
                "budget_ledger coordinates co-running shards; pass the "
                "matching shard=(i, n)"
            )
        if budget_ledger.shard != shard:
            raise ConfigurationError(
                f"budget_ledger belongs to shard "
                f"{budget_ledger.index}/{budget_ledger.count} but this "
                f"run is shard {shard[0]}/{shard[1]}"
            )
        if not reallocate_budget:
            raise ConfigurationError(
                "budget_ledger requires reallocate_budget=True (the "
                "ledger is the cross-shard extension of budget "
                "re-allocation)"
            )
        if reference_name != "monte_carlo" or not config.mc.adaptive:
            raise ConfigurationError(
                "budget_ledger needs an adaptive monte_carlo reference "
                "(a MonteCarloConfig with a StoppingRule); without a "
                "stopping rule no budget is ever freed or claimed"
            )

    def finish_item(
        item: tuple[str, SystemModel], ref: MTTFEstimate
    ) -> MethodComparison:
        return _finish_item(
            item, ref, method_names, reference_name, config, cache,
            skip_unsupported,
        )

    def evaluate_one(item: tuple[str, SystemModel]) -> MethodComparison:
        label, system = item
        _emit(progress, ProgressEvent(label, POINT_START))
        mc = config.mc if reference_estimator.is_stochastic else None
        compute = lambda: reference_estimator.estimate(system, config)
        if cache is not None:
            ref, cached_hit = cache.estimate_with_status(
                reference_name, system, mc, reference_name, compute
            )
        else:
            ref, cached_hit = compute(), False
        _emit(
            progress,
            ProgressEvent(
                label, POINT_DONE, trials=ref.trials, cached=cached_hit
            ),
        )
        return finish_item(item, ref)

    adopted: tuple[ResultSet, ...] = ()
    if pipeline_methods or reallocate_budget:
        scheduler = _PipelinedScheduler(
            items=items,
            method_names=method_names,
            reference_name=reference_name,
            reference_estimator=reference_estimator,
            config=config,
            cache=cache,
            workers=workers,
            backend=backend,
            progress=progress,
            pipeline_methods=pipeline_methods,
            reallocate_budget=reallocate_budget,
            skip_unsupported=skip_unsupported,
            shard=shard,
            budget_ledger=budget_ledger,
            full_items=full_items if budget_ledger is not None else None,
        )
        comparisons = scheduler.run()
        adopted = tuple(
            scheduler.adopted[slot]
            for slot in sorted(scheduler.adopted)
        )
    elif not backend.shares_memory:
        references = _process_references(
            items, reference_name, reference_estimator, config, cache,
            workers, backend, progress,
        )
        comparisons = tuple(
            finish_item(item, ref)
            for item, ref in zip(items, references)
        )
    elif workers > 1 and len(items) > 1:
        with backend.pool(workers) as pool:
            comparisons = tuple(pool.map(evaluate_one, items))
    else:
        comparisons = tuple(evaluate_one(item) for item in items)
    token = mc_token(config.mc)
    if (
        reallocate_budget
        and config.mc.adaptive
        and reference_name == "monte_carlo"
    ):
        # Re-allocated references depend on the whole sweep's budget
        # ledger, so these numbers are not interchangeable with a
        # non-reallocating run of the same MC configuration — tag the
        # token so merge_result_sets refuses to interleave the two.
        # Cross-shard-coordinated references additionally depend on the
        # *fleet's* ledger, so they get their own tag: merge combines
        # +xshard shards only with other +xshard shards.
        token += "+xshard" if budget_ledger is not None else "+realloc"
    return ResultSet(
        comparisons=comparisons,
        methods=tuple(method_names),
        reference_method=reference_name,
        shard=shard,
        mc_token=token,
        adopted=adopted,
    )
