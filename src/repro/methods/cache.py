"""On-disk, content-addressed estimation cache.

The paper-scale sweeps (1e6 trials x hundreds of grid points) are
expensive enough that repeating them across CLI invocations is the
dominant cost of iterating on an experiment. :class:`DiskCache` persists
every estimate the batch engine computes as one small JSON file keyed by
a *content-addressed* cache key:

``component/<kind>/<profile-fingerprint x rate>/<mc-token>`` for
per-component MTTFs, and
``system/<method>/<reference>/<system-fingerprint>/<mc-token>`` for
system-level estimates.

Because keys derive from :attr:`~repro.core.system.Component.
content_fingerprint` (a digest of the profile's breakpoints/values and
the raw rate) rather than object identity, a warm cache directory is
valid across processes and reruns, and editing a profile (a new masking
trace, a different window) changes the fingerprint and naturally
invalidates only the affected entries.

Entries are written atomically (temp file + ``os.replace``), so a
killed run never leaves a torn entry behind; unreadable entries are
treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from ..core.montecarlo import MonteCarloConfig

#: Schema tag embedded in every cache entry.
ENTRY_SCHEMA = "repro.cache-entry/v1"

#: Environment default for the on-disk cache directory; honoured by
#: every entry point that accepts ``--cache-dir``.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def resolve_cache_dir(cache_dir: str | os.PathLike | None) -> Path | None:
    """The single cache-path resolution rule for every entry point.

    ``repro-experiments --cache-dir``, ``repro-serve --cache-dir``, and
    any embedding code resolve the estimate-cache directory through this
    one helper so their defaults can never drift: an explicit path wins,
    an unset (or empty) path falls back to the :data:`CACHE_DIR_ENV`
    environment variable, ``~`` is expanded, and ``None`` means "no
    disk cache". The directory is *not* created here — that stays with
    :class:`DiskCache` so a read-only caller can resolve without side
    effects.
    """
    if cache_dir is None or cache_dir == "":
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    if cache_dir is None:
        return None
    return Path(cache_dir).expanduser()


def mc_token(mc: MonteCarloConfig | None) -> str:
    """Canonical cache-key token for a Monte-Carlo configuration.

    ``None`` means the value does not depend on any Monte-Carlo settings
    (deterministic closed forms), which all share the ``"exact"`` token.
    Every field that can change the numbers is included — trials, seed,
    sampler, start phase, chunking, the arrival-round cap, and (for
    adaptive runs) the stopping rule. The stopping fragment is appended
    only when a rule is set, so fixed-count tokens — and therefore warm
    disk caches written by earlier releases — stay valid.

    ``mc.kernel`` is deliberately *excluded*: the compiled kernels are
    bit-identical to the legacy sampler (enforced by the kernel test
    suite), so runs under any kernel produce — and may reuse — the same
    cache entries.
    """
    if mc is None:
        return "exact"
    token = (
        f"trials={mc.trials},seed={mc.seed},method={mc.method},"
        f"start_phase={mc.start_phase},chunks={mc.chunks},"
        f"cap={mc.max_arrival_rounds}"
    )
    if mc.stopping is not None:
        token += f",stopping[{mc.stopping.token()}]"
    return token


def append_record(path: str | Path, record: dict) -> None:
    """Append one JSON record to a shared newline-delimited log file.

    This is the write half of the ledger discipline
    (:mod:`repro.methods.ledger`): the record is serialized compactly
    and written with a *leading* newline in a single ``O_APPEND``
    ``write`` call. On a local filesystem concurrent appenders
    therefore never interleave bytes, and — the same torn-entry
    discipline :class:`DiskCache` applies — a writer killed
    mid-``write`` leaves at worst one torn line that the next append's
    leading newline re-synchronizes past: every record written before
    or after the tear stays readable by :func:`scan_records`.
    """
    line = "\n" + json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ) + "\n"
    fd = os.open(
        os.fspath(path),
        os.O_APPEND | os.O_CREAT | os.O_WRONLY,
        0o644,
    )
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def scan_records(path: str | Path) -> list[dict]:
    """Every parseable record of an append-only log, in file order.

    The read half of the ledger discipline: blank lines (the record
    separators) are passed over, and any line that is not a complete
    JSON object — the torn tail of a writer that died mid-append, or
    a record a concurrent writer has not finished flushing — is
    *silently skipped*, exactly as :meth:`DiskCache.get` treats a torn
    cache entry as a miss. A missing file reads as an empty log
    (shards poll for a ledger their siblings may not have created
    yet); any *other* I/O failure propagates — masking an EACCES or a
    flaky mount as "empty" would surface as a baffling rendezvous
    timeout instead of the real error.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except FileNotFoundError:
        return []
    records = []
    for line in text.split("\n"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


class DiskCache:
    """JSON-per-entry persistent cache under one directory.

    Values are plain JSON-serializable dicts; key-to-filename mapping is
    the SHA-256 of the key, so keys can be arbitrarily long and contain
    any characters. The original key is stored inside the entry for
    debuggability (``ls`` + ``jq .key`` answers "what is this file?").
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.directory / f"{digest}.json"

    def get(self, key: str) -> dict | None:
        """The entry's value dict, or ``None`` when absent/unreadable."""
        value = self.peek(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def peek(self, key: str) -> dict | None:
        """Like :meth:`get` but silent — no hit/miss accounting.

        The shard-aware prewarm pass uses this to pre-touch every key
        its shard will need without perturbing the counters a warm
        rerun is judged by (``misses=0``). A torn or foreign file reads
        as absent, exactly as in :meth:`get`.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("schema") != ENTRY_SCHEMA or "value" not in entry:
            return None
        return entry["value"]

    def put(self, key: str, value: dict) -> None:
        """Store ``value`` under ``key`` (atomic replace, last write wins)."""
        entry = {"schema": ENTRY_SCHEMA, "key": key, "value": value}
        path = self._path(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1

    def __len__(self) -> int:
        return sum(
            1
            for p in self.directory.iterdir()
            if p.suffix == ".json" and not p.name.startswith(".tmp-")
        )

    def clear(self) -> None:
        """Delete every entry (leaves the directory in place)."""
        for p in list(self.directory.iterdir()):
            if p.suffix == ".json" and not p.name.startswith(".tmp-"):
                try:
                    p.unlink()
                except OSError:
                    pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )
