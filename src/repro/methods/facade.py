"""The ``repro.analyze`` fluent facade.

One call surface for every estimation method::

    import repro

    result = (
        repro.analyze(system, label="cluster")
        .using("avf_sofr", "hybrid")
        .against("exact")
        .run()
    )
    print(result[0].error("avf_sofr"))

``using`` selects registered methods (see
:func:`repro.methods.available`), ``against`` picks the reference
(``"monte_carlo"``, the paper's choice, or ``"exact"``), and ``run``
returns a serializable :class:`~repro.methods.results.ResultSet`.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.comparison import MethodComparison
from ..core.montecarlo import MonteCarloConfig
from ..core.system import SystemModel
from ..errors import ConfigurationError
from . import registry
from .base import ComponentCache, MethodConfig
from .results import ResultSet

#: Method names eligible as a reference (noise-free or the paper's MC).
_REFERENCE_METHODS = ("monte_carlo", "first_principles", "softarch")


class Analysis:
    """Fluent builder for a one-system method comparison."""

    def __init__(self, system: SystemModel, label: str = ""):
        if not isinstance(system, SystemModel):
            raise ConfigurationError(
                f"analyze() needs a SystemModel, got {type(system).__name__}"
            )
        self._system = system
        self._label = label
        self._methods: tuple[str, ...] = ()
        self._reference = "monte_carlo"
        self._config = MethodConfig()

    def labeled(self, label: str) -> "Analysis":
        """Set the system label used in tables and serialized output."""
        self._label = label
        return self

    def using(self, *method_names: str) -> "Analysis":
        """Select the methods to run (at least one, all registered)."""
        if not method_names:
            raise ConfigurationError(
                "using() needs at least one method name; available: "
                f"{registry.available()}"
            )
        resolved = []
        for name in method_names:
            estimator = registry.get(name)  # raises with the names hint
            if estimator.name not in resolved:
                resolved.append(estimator.name)
        self._methods = tuple(resolved)
        return self

    def against(self, reference: str) -> "Analysis":
        """Pick the reference method the errors are measured against."""
        canonical = registry.canonical_name(reference)
        if canonical not in _REFERENCE_METHODS:
            raise ConfigurationError(
                f"unknown reference {reference!r}; use one of "
                f"{sorted(_REFERENCE_METHODS + ('exact',))}"
            )
        self._reference = canonical
        return self

    def with_mc(self, mc_config: MonteCarloConfig | None) -> "Analysis":
        """Set the Monte-Carlo configuration (trials/seed/sampler)."""
        if mc_config is not None:
            self._config = replace(self._config, mc=mc_config)
        return self

    def with_trials(self, trials: int, seed: int | None = None) -> "Analysis":
        """Shorthand for adjusting trials (and optionally the seed)."""
        mc = self._config.mc
        mc = replace(
            mc, trials=trials, seed=mc.seed if seed is None else seed
        )
        self._config = replace(self._config, mc=mc)
        return self

    def with_cache(self, cache: ComponentCache | None) -> "Analysis":
        """Share a per-component MTTF cache across analyses."""
        self._config = replace(self._config, cache=cache)
        return self

    def comparison(self) -> MethodComparison:
        """Run and return the bare comparison record."""
        if not self._methods:
            raise ConfigurationError(
                "no methods selected; call using(...) before run()"
            )
        config = replace(self._config, reference=self._reference)
        reference = registry.get(self._reference).estimate(
            self._system, config
        )
        estimates = {}
        for name in self._methods:
            estimator = registry.get(name)
            if not estimator.supports(self._system):
                raise ConfigurationError(
                    f"method {name!r} does not support system "
                    f"{self._label or self._system!r}"
                )
            # The reference estimate doubles as the method estimate when
            # the same method is also selected (e.g. first_principles
            # under an exact reference) — no second computation.
            estimates[name] = (
                reference
                if name == self._reference
                else estimator.estimate(self._system, config)
            )
        return MethodComparison(
            system_label=self._label,
            reference=reference,
            estimates=estimates,
        )

    def run(self) -> ResultSet:
        """Execute the analysis and return a serializable ResultSet."""
        return ResultSet(
            comparisons=(self.comparison(),),
            methods=self._methods,
            reference_method=self._reference,
        )


def analyze(system: SystemModel, label: str = "") -> Analysis:
    """Start a fluent method comparison on one system."""
    return Analysis(system, label=label)
