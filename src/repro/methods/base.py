"""Estimator protocol and shared estimation context.

Every MTTF method the paper studies — and every method added since — is
exposed through one uniform surface: an :class:`Estimator` with a
``name``, capability flags, and an ``estimate(system, config)`` call
returning an :class:`~repro.reliability.metrics.MTTFEstimate`. The
:class:`MethodConfig` carries everything a method may need (Monte-Carlo
settings, the reference convention for the SOFR-only step, a shared
per-component memoization cache) so estimators stay stateless and the
batch engine can fan them out freely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Protocol, runtime_checkable

from ..core.montecarlo import MonteCarloConfig
from ..core.system import Component, SystemModel
from ..reliability.metrics import MTTFEstimate
from .cache import DiskCache, mc_token


class ComponentCache:
    """Memoizes MTTF estimates across systems, keyed by content.

    Two levels of granularity share one cache object:

    * **per-component** MTTFs (``get_or_compute``) — the design-space
      sweeps re-estimate the same component profile at the same raw rate
      for every value of C (hundreds of grid points in the Fig. 5/6
      sweeps); one Monte-Carlo run per distinct component is enough;
    * **system-level** estimates (``get_or_compute_estimate``) — the
      batch engine memoizes whole reference/method estimates so a warm
      rerun of a sweep performs zero re-estimations.

    Keys are *content-addressed*: they derive from the component/system
    ``content_fingerprint`` (a digest of profile breakpoints/values,
    rates, multiplicities) plus the Monte-Carlo settings — never from
    ``id()``, which could be silently reused by a different profile
    after garbage collection and means nothing across processes.
    Multiplicity is deliberately excluded from component keys, since a
    component *instance's* MTTF does not depend on how many copies the
    system has.

    Pass ``disk=DiskCache(path)`` to back the in-memory maps with a
    persistent JSON-per-entry store shared across CLI invocations;
    lookups then go memory -> disk -> compute, and computed values are
    written through.
    """

    def __init__(self, disk: DiskCache | None = None) -> None:
        self._entries: dict[str, float] = {}
        self._estimates: dict[str, MTTFEstimate] = {}
        self._lock = threading.Lock()
        self.disk = disk
        #: Component-level memory hits/misses (back-compat counters).
        self.hits = 0
        self.misses = 0
        #: System-level estimate memory hits/misses.
        self.estimate_hits = 0
        self.estimate_misses = 0
        #: Disk hits at either level.
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._entries) + len(self._estimates)

    def stats_line(self) -> str:
        """One-line summary (the CLI prints this for ``--cache-dir`` runs).

        ``misses`` counts *every* estimation actually performed —
        component-level and system-level — so a warm disk-cache rerun
        reports ``misses=0``.
        """
        return (
            f"entries={len(self)} "
            f"hits={self.hits + self.estimate_hits} "
            f"disk_hits={self.disk_hits} "
            f"misses={self.misses + self.estimate_misses}"
        )

    # -- per-component values ---------------------------------------------

    @staticmethod
    def component_key(
        kind: str, component: Component, mc: MonteCarloConfig | None
    ) -> str:
        return (
            f"component/{kind}/{component.content_fingerprint}/"
            f"{mc_token(mc)}"
        )

    def get_or_compute(
        self,
        kind: str,
        component: Component,
        mc: MonteCarloConfig | None,
        compute: Callable[[], float],
    ) -> float:
        key = self.component_key(kind, component, mc)
        with self._lock:
            if key in self._entries:
                self.hits += 1
                return self._entries[key]
        if self.disk is not None:
            stored = self.disk.get(key)
            if stored is not None:
                value = float(stored["mttf_seconds"])
                with self._lock:
                    self._entries.setdefault(key, value)
                    self.disk_hits += 1
                return value
        value = compute()
        with self._lock:
            self._entries.setdefault(key, value)
            self.misses += 1
        if self.disk is not None:
            self.disk.put(key, {"mttf_seconds": value})
        return value

    # -- system-level estimates -------------------------------------------

    @staticmethod
    def estimate_key(
        method: str,
        system: SystemModel,
        mc: MonteCarloConfig | None,
        reference: str,
    ) -> str:
        return (
            f"system/{method}/{reference}/{system.content_fingerprint}/"
            f"{mc_token(mc)}"
        )

    def lookup_estimate(self, key: str) -> MTTFEstimate | None:
        """Memory-then-disk lookup; counts a miss when absent."""
        with self._lock:
            if key in self._estimates:
                self.estimate_hits += 1
                return self._estimates[key]
        if self.disk is not None:
            stored = self.disk.get(key)
            if stored is not None:
                estimate = MTTFEstimate.from_dict(stored)
                with self._lock:
                    self._estimates.setdefault(key, estimate)
                    self.disk_hits += 1
                return estimate
        with self._lock:
            self.estimate_misses += 1
        return None

    def prewarm_estimates(self, keys) -> int:
        """Pull the disk entries behind ``keys`` into memory, silently.

        Sharded sweeps call this before scheduling any work so estimates
        a co-running shard already published into the shared
        ``--cache-dir`` are visible up front (the scheduler then skips
        those points entirely). Returns how many entries were pulled
        from disk; keys already in memory or absent on disk are passed
        over. Unlike :meth:`lookup_estimate`, nothing here perturbs the
        hit/miss counters — a warm rerun still reports ``misses=0``.
        """
        if self.disk is None:
            return 0
        warmed = 0
        for key in keys:
            with self._lock:
                if key in self._estimates:
                    continue
            stored = self.disk.peek(key)
            if stored is None:
                continue
            estimate = MTTFEstimate.from_dict(stored)
            with self._lock:
                self._estimates.setdefault(key, estimate)
            warmed += 1
        return warmed

    def store_estimate(self, key: str, estimate: MTTFEstimate) -> None:
        with self._lock:
            self._estimates.setdefault(key, estimate)
        if self.disk is not None:
            self.disk.put(key, estimate.to_dict())

    def get_or_compute_estimate(
        self,
        method: str,
        system: SystemModel,
        mc: MonteCarloConfig | None,
        reference: str,
        compute: Callable[[], MTTFEstimate],
    ) -> MTTFEstimate:
        return self.estimate_with_status(
            method, system, mc, reference, compute
        )[0]

    def estimate_with_status(
        self,
        method: str,
        system: SystemModel,
        mc: MonteCarloConfig | None,
        reference: str,
        compute: Callable[[], MTTFEstimate],
    ) -> tuple[MTTFEstimate, bool]:
        """Like :meth:`get_or_compute_estimate`, also reporting the hit.

        The boolean is True when the estimate came from the cache
        (memory or disk) and ``compute`` never ran — the batch engine's
        progress events carry it so observers can tell replay from
        sampling.
        """
        key = self.estimate_key(method, system, mc, reference)
        found = self.lookup_estimate(key)
        if found is not None:
            return found, True
        estimate = compute()
        self.store_estimate(key, estimate)
        return estimate, False


@dataclass(frozen=True)
class MethodConfig:
    """Everything an estimator may need beyond the system itself.

    Attributes
    ----------
    mc:
        Monte-Carlo settings (trials/seed/sampler) for stochastic
        methods and for MC-fed component MTTFs.
    reference:
        Which reference convention the run uses (``"monte_carlo"`` or
        ``"exact"``/``"first_principles"``). The SOFR-only step feeds on
        component MTTFs from the reference method (Section 4.2), so it
        needs to know.
    cache:
        Optional shared :class:`ComponentCache`; estimators that compute
        per-component MTTFs consult it when present.
    """

    mc: MonteCarloConfig = field(default_factory=MonteCarloConfig)
    reference: str = "monte_carlo"
    cache: ComponentCache | None = None

    def with_mc(self, mc: MonteCarloConfig | None) -> "MethodConfig":
        if mc is None:
            return self
        return replace(self, mc=mc)

    def component_mttf(
        self,
        kind: str,
        component: Component,
        mc: MonteCarloConfig | None,
        compute: Callable[[], float],
    ) -> float:
        """Compute a per-component MTTF through the cache when present."""
        if self.cache is None:
            return compute()
        return self.cache.get_or_compute(kind, component, mc, compute)


@runtime_checkable
class Estimator(Protocol):
    """One MTTF estimation method, uniformly callable.

    Attributes
    ----------
    name:
        Registry key ("avf", "monte_carlo", ...).
    is_stochastic:
        True when the estimate carries sampling noise (so equal-seed
        reruns are needed for reproducibility).
    per_component:
        True when the method works bottom-up from per-component MTTFs
        (and therefore benefits from the component cache).
    """

    name: str
    is_stochastic: bool
    per_component: bool

    def estimate(
        self, system: SystemModel, config: MethodConfig | None = None
    ) -> MTTFEstimate:
        """Estimate the system MTTF."""
        ...

    def supports(self, system: SystemModel) -> bool:
        """Whether this method can handle the given system."""
        ...


@dataclass(frozen=True)
class FunctionEstimator:
    """An :class:`Estimator` wrapping a plain estimation function.

    This is the adapter shape :func:`~repro.methods.registry.register_method`
    produces; the wrapped callable receives ``(system, config)`` with a
    concrete (never ``None``) :class:`MethodConfig`.
    """

    name: str
    fn: Callable[[SystemModel, MethodConfig], MTTFEstimate]
    is_stochastic: bool = False
    per_component: bool = False
    supports_fn: Callable[[SystemModel], bool] | None = None
    doc: str = ""

    def estimate(
        self, system: SystemModel, config: MethodConfig | None = None
    ) -> MTTFEstimate:
        return self.fn(system, config or MethodConfig())

    def supports(self, system: SystemModel) -> bool:
        if self.supports_fn is None:
            return True
        return self.supports_fn(system)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.is_stochastic:
            flags.append("stochastic")
        if self.per_component:
            flags.append("per-component")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"<method {self.name!r}{suffix}>"
