"""Estimator protocol and shared estimation context.

Every MTTF method the paper studies — and every method added since — is
exposed through one uniform surface: an :class:`Estimator` with a
``name``, capability flags, and an ``estimate(system, config)`` call
returning an :class:`~repro.reliability.metrics.MTTFEstimate`. The
:class:`MethodConfig` carries everything a method may need (Monte-Carlo
settings, the reference convention for the SOFR-only step, a shared
per-component memoization cache) so estimators stay stateless and the
batch engine can fan them out freely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Protocol, runtime_checkable

from ..core.montecarlo import MonteCarloConfig
from ..core.system import Component, SystemModel
from ..reliability.metrics import MTTFEstimate


class ComponentCache:
    """Memoizes per-component-instance MTTFs across systems.

    The design-space sweeps re-estimate the same component profile at the
    same raw rate for every value of C (hundreds of grid points in the
    Fig. 5/6 sweeps); one Monte-Carlo run per distinct component is
    enough. Keys are ``(kind, profile identity, rate, mc settings)`` —
    multiplicity deliberately excluded, since a component *instance's*
    MTTF does not depend on how many copies the system has. The cached
    value pins the profile object so ``id()`` keys can never be reused
    by a different profile.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple[object, float]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compute(
        self,
        kind: str,
        component: Component,
        mc: MonteCarloConfig | None,
        compute: Callable[[], float],
    ) -> float:
        key = (kind, id(component.profile), component.rate_per_second, mc)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                return entry[1]
        value = compute()
        with self._lock:
            self._entries.setdefault(key, (component.profile, value))
            self.misses += 1
        return value


@dataclass(frozen=True)
class MethodConfig:
    """Everything an estimator may need beyond the system itself.

    Attributes
    ----------
    mc:
        Monte-Carlo settings (trials/seed/sampler) for stochastic
        methods and for MC-fed component MTTFs.
    reference:
        Which reference convention the run uses (``"monte_carlo"`` or
        ``"exact"``/``"first_principles"``). The SOFR-only step feeds on
        component MTTFs from the reference method (Section 4.2), so it
        needs to know.
    cache:
        Optional shared :class:`ComponentCache`; estimators that compute
        per-component MTTFs consult it when present.
    """

    mc: MonteCarloConfig = field(default_factory=MonteCarloConfig)
    reference: str = "monte_carlo"
    cache: ComponentCache | None = None

    def with_mc(self, mc: MonteCarloConfig | None) -> "MethodConfig":
        if mc is None:
            return self
        return replace(self, mc=mc)

    def component_mttf(
        self,
        kind: str,
        component: Component,
        mc: MonteCarloConfig | None,
        compute: Callable[[], float],
    ) -> float:
        """Compute a per-component MTTF through the cache when present."""
        if self.cache is None:
            return compute()
        return self.cache.get_or_compute(kind, component, mc, compute)


@runtime_checkable
class Estimator(Protocol):
    """One MTTF estimation method, uniformly callable.

    Attributes
    ----------
    name:
        Registry key ("avf", "monte_carlo", ...).
    is_stochastic:
        True when the estimate carries sampling noise (so equal-seed
        reruns are needed for reproducibility).
    per_component:
        True when the method works bottom-up from per-component MTTFs
        (and therefore benefits from the component cache).
    """

    name: str
    is_stochastic: bool
    per_component: bool

    def estimate(
        self, system: SystemModel, config: MethodConfig | None = None
    ) -> MTTFEstimate:
        """Estimate the system MTTF."""
        ...

    def supports(self, system: SystemModel) -> bool:
        """Whether this method can handle the given system."""
        ...


@dataclass(frozen=True)
class FunctionEstimator:
    """An :class:`Estimator` wrapping a plain estimation function.

    This is the adapter shape :func:`~repro.methods.registry.register_method`
    produces; the wrapped callable receives ``(system, config)`` with a
    concrete (never ``None``) :class:`MethodConfig`.
    """

    name: str
    fn: Callable[[SystemModel, MethodConfig], MTTFEstimate]
    is_stochastic: bool = False
    per_component: bool = False
    supports_fn: Callable[[SystemModel], bool] | None = None
    doc: str = ""

    def estimate(
        self, system: SystemModel, config: MethodConfig | None = None
    ) -> MTTFEstimate:
        return self.fn(system, config or MethodConfig())

    def supports(self, system: SystemModel) -> bool:
        if self.supports_fn is None:
            return True
        return self.supports_fn(system)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.is_stochastic:
            flags.append("stochastic")
        if self.per_component:
            flags.append("per-component")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"<method {self.name!r}{suffix}>"
