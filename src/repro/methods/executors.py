"""Pluggable chunk-executor backends for the batch engine.

The scheduler stack (``docs/SCHEDULER.md``) submits exactly three kinds
of pure task — plan-chunk batches (:func:`~repro.core.kernel.run_plan_chunks`),
single reference chunks (:func:`~repro.core.montecarlo.system_chunk_moments`),
and whole method estimates (:func:`estimate_task`) — and folds every
result on the coordinator in strict chunk-index order. That makes the
*executor* a pluggable detail: any backend that can run those tasks and
hand back their results produces byte-identical ResultSets, regardless
of worker count, placement, or completion order.

:class:`ChunkExecutor` is that protocol. Three backends ship:

* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  (``shares_memory=True``; the NumPy samplers release the GIL);
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  (true parallelism on one host);
* ``remote`` — :class:`RemoteExecutor`, which fans tasks out over TCP
  to a fleet of ``repro-worker`` daemons (``repro.methods.worker``).

The remote wire protocol reuses the sealed-record discipline of
``methods/ledger.py``/``methods/cache.py``, adapted to a stream: every
frame is one length-checked, newline-terminated JSON record written
with a single ``sendall`` (:func:`encode_frame`), and a receiver that
sees a length mismatch, unparsable body, or missing terminator treats
the frame as *torn* and drops the connection loudly
(:func:`decode_frame` raises :class:`~repro.errors.WireError`) — never
a silently wrong number. Plans hydrate by fingerprint with the engine's
existing PLAN_MISS→resubmit protocol: a task normally carries only the
plan's cache key; a worker that misses answers ``PLAN_MISS`` and the
coordinator resubmits with the plan attached, so plans ship once per
worker, not once per chunk. A worker that dies mid-batch takes its
connection with it; the coordinator fails the channel and resubmits
its outstanding tasks to the surviving workers (determinism is
unaffected — folds happen coordinator-side in index order).

Register a custom backend with :func:`register_executor`; registration
is the single source of truth that legalizes the backend's spelling
everywhere an ``executor=`` knob exists (``evaluate_design_space``, the
CLI, ``repro-serve``).
"""

from __future__ import annotations

import json
import os
import socket
import threading
from concurrent.futures import (
    Future,
    InvalidStateError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Sequence

from ..core import kernel as _kernel
from ..core.montecarlo import (
    MonteCarloConfig,
    SampleMoments,
    mc_config_from_dict,
    mc_config_to_dict,
    system_chunk_moments,
)
from ..core.system import SystemModel
from ..errors import ConfigurationError, EstimationError, WireError
from ..reliability.metrics import MTTFEstimate
from . import registry
from .base import MethodConfig

#: Schema tag spoken in the hello handshake; a worker refuses a
#: coordinator that speaks anything else.
WIRE_SCHEMA = "repro.executor/v1"

#: Connect/handshake timeout (seconds) for remote worker channels.
CONNECT_TIMEOUT = 10.0


# ---------------------------------------------------------------------------
# Frame codec: the ledger/cache sealed-record discipline, on a stream.
# ---------------------------------------------------------------------------


def encode_frame(record: dict) -> bytes:
    """Seal one record: ``b"<len>:<compact-sorted-json>\\n"``.

    The body is compact sorted JSON, so the byte length is canonical;
    the ``len:`` prefix lets the receiver verify the frame arrived
    whole *before* trusting the parse, and the terminating newline
    re-synchronizes framing after any fault. Callers must write the
    returned bytes with a single ``sendall``.
    """
    body = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return b"%d:%s\n" % (len(body), body)


def decode_frame(line: bytes) -> dict:
    """Open one sealed frame; raise :class:`WireError` if it is torn.

    Torn means: no terminating newline (the peer died mid-write), a
    missing or non-integer length prefix, a body whose byte length
    disagrees with the declared length, or a body that is not a JSON
    object. Every failure mode is loud — a torn frame kills the
    connection, it never yields a partial record.
    """
    if not line.endswith(b"\n"):
        raise WireError("torn frame: missing terminating newline")
    head, sep, body = line[:-1].partition(b":")
    if not sep:
        raise WireError("torn frame: missing length prefix")
    try:
        declared = int(head)
    except ValueError:
        raise WireError(
            f"torn frame: bad length prefix {head[:32]!r}"
        ) from None
    if len(body) != declared:
        raise WireError(
            f"torn frame: declared {declared} bytes, got {len(body)}"
        )
    try:
        record = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise WireError(f"torn frame: unparsable body ({error})") from None
    if not isinstance(record, dict):
        raise WireError("torn frame: body is not a JSON object")
    return record


def read_frame(stream) -> dict | None:
    """Read one frame from a buffered byte stream.

    Returns ``None`` on clean EOF *between* frames (the peer closed an
    idle connection); raises :class:`WireError` for EOF mid-frame or
    any torn frame.
    """
    line = stream.readline()
    if not line:
        return None
    return decode_frame(line)


# ---------------------------------------------------------------------------
# Task vocabulary: the three pure functions the engine ever submits.
# ---------------------------------------------------------------------------


def estimate_task(
    method_name: str,
    system: SystemModel,
    mc: MonteCarloConfig,
    reference: str,
) -> MTTFEstimate:
    """Run one estimate in a worker (top-level: picklable and shippable).

    The worker rebuilds a cache-free :class:`MethodConfig`; caching
    happens only on the coordinator so the shared cache needs no
    cross-process coordination.
    """
    config = MethodConfig(mc=mc, reference=reference, cache=None)
    return registry.get(method_name).estimate(system, config)


def encode_task(fn, args: tuple) -> dict:
    """Translate one engine submission into its wire request.

    Only the engine's three task kinds have wire forms; anything else
    (e.g. a thread-path closure) cannot leave the process and is a
    configuration error. ``mc_config_to_dict`` deliberately excludes
    the kernel choice — kernels are bit-identical, so a remote worker
    runs shipped configs with its own default kernel.
    """
    if fn is _kernel.run_plan_chunks:
        key, plan, jobs = args
        return {
            "op": "plan-chunks",
            "key": key,
            "plan": None if plan is None else plan.to_dict(),
            "jobs": [
                [index, mc_config_to_dict(cfg)] for index, cfg in jobs
            ],
        }
    if fn is system_chunk_moments:
        system, cfg = args
        return {
            "op": "chunk",
            "system": system.to_dict(),
            "mc": mc_config_to_dict(cfg),
        }
    if fn is estimate_task:
        method_name, system, mc, reference = args
        return {
            "op": "estimate",
            "method": method_name,
            "system": system.to_dict(),
            "mc": mc_config_to_dict(mc),
            "reference": reference,
        }
    raise ConfigurationError(
        "the remote executor cannot ship task "
        f"{getattr(fn, '__name__', fn)!r}; only plan-chunk batches, "
        "reference chunks, and method estimates have wire forms"
    )


def perform_task(request: dict) -> dict:
    """Execute one wire request worker-side and build its reply.

    Shared by the ``repro-worker`` daemon and the loopback tests.
    ``plan-chunks`` delegates to :func:`~repro.core.kernel.run_plan_chunks`
    verbatim, so a long-lived daemon keeps its hydrated plan cache
    across jobs and the PLAN_MISS→resubmit protocol works unchanged.
    Raises :class:`WireError` for protocol-level faults (unknown op,
    schema mismatch) — the server drops the connection for those.
    """
    op = request.get("op")
    if op == "plan-chunks":
        plan = request["plan"]
        if plan is not None:
            plan = _kernel.SamplingPlan.from_dict(plan)
        jobs = [
            (int(index), mc_config_from_dict(cfg))
            for index, cfg in request["jobs"]
        ]
        status, payload = _kernel.run_plan_chunks(
            request["key"], plan, jobs
        )
        if status == _kernel.PLAN_MISS:
            return {"op": op, "status": _kernel.PLAN_MISS, "key": payload}
        return {
            "op": op,
            "status": _kernel.PLAN_OK,
            "pairs": [
                [index, [m.count, m.mean, m.m2]] for index, m in payload
            ],
        }
    if op == "chunk":
        moments = system_chunk_moments(
            SystemModel.from_dict(request["system"]),
            mc_config_from_dict(request["mc"]),
        )
        return {
            "op": op,
            "moments": [moments.count, moments.mean, moments.m2],
        }
    if op == "estimate":
        estimate = estimate_task(
            request["method"],
            SystemModel.from_dict(request["system"]),
            mc_config_from_dict(request["mc"]),
            request["reference"],
        )
        return {"op": op, "estimate": estimate.to_dict()}
    if op == "hello":
        schema = request.get("schema")
        if schema != WIRE_SCHEMA:
            raise WireError(
                f"executor wire schema mismatch: coordinator speaks "
                f"{schema!r}, worker speaks {WIRE_SCHEMA!r}"
            )
        return {
            "op": "hello",
            "schema": WIRE_SCHEMA,
            "pid": os.getpid(),
            "cpu_count": os.cpu_count() or 1,
        }
    raise WireError(f"unknown request op {op!r}")


def _moments(triple) -> SampleMoments:
    count, mean, m2 = triple
    return SampleMoments(int(count), float(mean), float(m2))


def decode_result(op: str, reply: dict):
    """Translate one wire reply back into the submitted task's result."""
    if op == "plan-chunks":
        if reply.get("status") == _kernel.PLAN_MISS:
            return (_kernel.PLAN_MISS, reply["key"])
        return (
            _kernel.PLAN_OK,
            [(int(index), _moments(m)) for index, m in reply["pairs"]],
        )
    if op == "chunk":
        return _moments(reply["moments"])
    if op == "estimate":
        return MTTFEstimate.from_dict(reply["estimate"])
    raise WireError(f"unknown reply op {op!r}")


# ---------------------------------------------------------------------------
# The backend protocol and registry.
# ---------------------------------------------------------------------------


class ChunkExecutor:
    """One fan-out backend for the batch engine.

    A backend owns two decisions: where submitted tasks run
    (:meth:`pool` returns a context-managed pool with the
    ``submit(fn, *args) -> Future`` surface of
    :mod:`concurrent.futures`), and whether those tasks share the
    coordinator's memory (:attr:`shares_memory`). Backends that do not
    share memory receive only the three wire-encodable task kinds and
    the engine memoizes per-component work parent-side, exactly as the
    process pool always required. Nothing else may vary: results are
    folded on the coordinator in chunk-index order, so every conforming
    backend is byte-identical by construction.
    """

    #: Registry spelling (CLI ``--executor`` value).
    name: str = "abstract"

    #: Whether pool tasks can touch coordinator memory (closures,
    #: shared caches). ``False`` routes the engine down the
    #: ship-everything path used by process pools.
    shares_memory: bool = True

    def auto_workers(self) -> int:
        """Worker count ``--workers auto`` resolves to for this backend."""
        return os.cpu_count() or 1

    def pool(self, workers: int):
        """A fresh context-managed pool with ``submit(fn, *args)``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class ThreadExecutor(ChunkExecutor):
    """Thread pool: shared memory, GIL-released NumPy sampling."""

    name = "thread"
    shares_memory = True

    def pool(self, workers: int) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=workers)


class ProcessExecutor(ChunkExecutor):
    """Process pool: single-host true parallelism."""

    name = "process"
    shares_memory = False

    def pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=workers)


_BACKENDS: dict[str, ChunkExecutor] = {}


def register_executor(backend: ChunkExecutor) -> ChunkExecutor:
    """Register ``backend`` under its :attr:`~ChunkExecutor.name`.

    Registration is the single source of truth: it legalizes the
    spelling for ``evaluate_design_space(executor=...)``, the CLI, and
    ``repro-serve`` alike. Re-registering a name replaces the backend.
    """
    if not isinstance(backend, ChunkExecutor):
        raise ConfigurationError(
            "an executor backend must be a ChunkExecutor instance, got "
            f"{backend!r}"
        )
    name = backend.name
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"executor backend {backend!r} needs a non-empty string name"
        )
    _BACKENDS[name] = backend
    return backend


def unregister_executor(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    _BACKENDS.pop(name, None)


def available_executors() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_BACKENDS)


def get_executor(executor) -> ChunkExecutor:
    """Resolve an ``executor=`` knob to its backend.

    Accepts a registered name or a :class:`ChunkExecutor` instance
    (e.g. a :class:`RemoteExecutor` built with explicit addresses).
    """
    if isinstance(executor, ChunkExecutor):
        return executor
    backend = _BACKENDS.get(executor)
    if backend is None:
        raise ConfigurationError(
            f"unknown executor {executor!r}; registered backends: "
            f"{available_executors()} (or pass a ChunkExecutor instance)"
        )
    return backend


def executor_name(executor) -> str:
    """The display/registry spelling of an ``executor=`` knob value."""
    return executor if isinstance(executor, str) else executor.name


# ---------------------------------------------------------------------------
# The remote backend: a TCP worker fleet.
# ---------------------------------------------------------------------------


def parse_address(text: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; loud on anything else."""
    host, sep, port = str(text).strip().rpartition(":")
    try:
        number = int(port)
        if not sep or not host or not (0 < number < 65536):
            raise ValueError
    except ValueError:
        raise ConfigurationError(
            f"bad worker address {text!r}: expected host:port"
        ) from None
    return host, number


class RemoteExecutor(ChunkExecutor):
    """Fan chunk batches out over TCP to ``repro-worker`` daemons.

    ``workers`` is a sequence of ``"host:port"`` addresses; repeat an
    address to open more than one channel to the same daemon. The
    registry holds an addressless instance so the ``"remote"`` spelling
    validates everywhere; using it without addresses fails with
    instructions rather than a hang.
    """

    name = "remote"
    shares_memory = False

    def __init__(self, workers: Sequence[str] = ()) -> None:
        self.addresses = tuple(parse_address(item) for item in workers)

    def _require_addresses(self) -> None:
        if not self.addresses:
            raise ConfigurationError(
                "the remote executor needs worker addresses: pass "
                "--workers host:port[,host:port...] on the CLI or "
                "construct RemoteExecutor(['host:port', ...])"
            )

    def auto_workers(self) -> int:
        self._require_addresses()
        return len(self.addresses)

    def pool(self, workers: int) -> "_RemotePool":
        self._require_addresses()
        return _RemotePool(self.addresses)


def _resolve(future: Future, value) -> None:
    try:
        future.set_result(value)
    except InvalidStateError:
        pass  # cancelled straggler; the engine already moved on


def _fail(future: Future, error: BaseException) -> None:
    try:
        future.set_exception(error)
    except InvalidStateError:
        pass


class _RemoteTask:
    """One submitted task: its future, wire request, and op kind."""

    __slots__ = ("future", "request", "op", "started")

    def __init__(self, future: Future, request: dict) -> None:
        self.future = future
        self.request = request
        self.op = request["op"]
        self.started = False


class _Channel:
    """One coordinator connection to one worker daemon.

    A dedicated reader thread resolves replies by request id; sends are
    serialized under a lock so every frame is one contiguous write.
    Any fault — torn frame, socket error, EOF with work outstanding —
    kills the whole channel, and the pool redistributes its in-flight
    tasks to the surviving channels.
    """

    def __init__(self, pool: "_RemotePool", address: tuple[str, int]):
        self.pool = pool
        self.address = address
        self.alive = True
        self.lock = threading.Lock()
        self.inflight: dict[int, _RemoteTask] = {}
        host, port = address
        try:
            self.sock = socket.create_connection(
                (host, port), timeout=CONNECT_TIMEOUT
            )
        except OSError as error:
            raise EstimationError(
                f"cannot reach repro-worker at {host}:{port}: {error}"
            ) from None
        self.sock.settimeout(None)
        self.stream = self.sock.makefile("rb")
        self._handshake()
        self.reader = threading.Thread(
            target=self._read_loop,
            daemon=True,
            name=f"repro-executor-{host}:{port}",
        )
        self.reader.start()

    def _handshake(self) -> None:
        host, port = self.address
        try:
            self.sock.sendall(
                encode_frame({"op": "hello", "schema": WIRE_SCHEMA})
            )
            reply = read_frame(self.stream)
        except (OSError, WireError) as error:
            raise EstimationError(
                f"handshake with repro-worker {host}:{port} failed: "
                f"{error}"
            ) from None
        if reply is None:
            raise EstimationError(
                f"repro-worker {host}:{port} closed during handshake"
            )
        if reply.get("op") == "error":
            raise EstimationError(
                f"repro-worker {host}:{port} refused the handshake: "
                f"{reply.get('error')}"
            )
        if reply.get("schema") != WIRE_SCHEMA:
            raise EstimationError(
                f"repro-worker {host}:{port} speaks "
                f"{reply.get('schema')!r}, coordinator speaks "
                f"{WIRE_SCHEMA!r}"
            )

    def send(self, task_id: int, task: _RemoteTask) -> bool:
        """Ship one task; ``False`` if the channel is/just went dead."""
        frame = encode_frame({**task.request, "id": task_id})
        with self.lock:
            if not self.alive:
                return False
            self.inflight[task_id] = task
            try:
                self.sock.sendall(frame)
            except OSError:
                # The reader will notice the broken socket and fail the
                # channel; reclaim this task so it is not double-routed.
                self.inflight.pop(task_id, None)
                return False
        return True

    def _read_loop(self) -> None:
        fault = None
        try:
            while True:
                reply = read_frame(self.stream)
                if reply is None:
                    break
                self._resolve_reply(reply)
        except (WireError, OSError) as error:
            fault = error
        self.pool._channel_died(self, fault)

    def _resolve_reply(self, reply: dict) -> None:
        try:
            task_id = int(reply.get("id"))
        except (TypeError, ValueError):
            raise WireError(f"reply without request id: {reply!r}")
        with self.lock:
            task = self.inflight.pop(task_id, None)
        if task is None:
            return  # already failed over or cancelled
        host, port = self.address
        if reply.get("op") == "error":
            _fail(
                task.future,
                EstimationError(
                    f"repro-worker {host}:{port} failed {task.op!r}: "
                    f"{reply.get('error')}"
                ),
            )
            return
        try:
            _resolve(task.future, decode_result(task.op, reply))
        except WireError as error:
            _fail(task.future, EstimationError(
                f"bad reply from repro-worker {host}:{port}: {error}"
            ))

    def reap(self) -> list[_RemoteTask]:
        """Mark dead and return the tasks that were in flight."""
        with self.lock:
            self.alive = False
            orphans = list(self.inflight.values())
            self.inflight.clear()
        return orphans

    def close(self) -> None:
        with self.lock:
            self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _RemotePool:
    """The ``submit``-shaped pool over a fleet of worker channels.

    Round-robin dispatch over live channels; a channel death fails over
    its outstanding tasks to the survivors (or fails their futures with
    :class:`~repro.errors.EstimationError` when none remain). Futures
    are plain :class:`concurrent.futures.Future` objects, so the
    engine's ``wait``/``as_completed``/``cancel`` logic — including
    early-stop cancellation of stragglers — works unchanged.
    """

    def __init__(self, addresses: Sequence[tuple[str, int]]):
        self._lock = threading.Lock()
        self._closed = False
        self._next_id = 0
        self._rr = 0
        self._channels: list[_Channel] = []
        try:
            for address in addresses:
                self._channels.append(_Channel(self, address))
        except BaseException:
            self.shutdown()
            raise

    # -- dispatch ----------------------------------------------------------

    def submit(self, fn, *args) -> Future:
        request = encode_task(fn, args)
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "cannot submit to a shut-down remote executor pool"
                )
        self._dispatch(_RemoteTask(future, request))
        return future

    def _dispatch(self, task: _RemoteTask) -> None:
        if not task.started:
            # Futures left PENDING are cancellable, but only an
            # executor calling set_running_or_notify_cancel ever moves
            # them to the CANCELLED_AND_NOTIFIED state that
            # concurrent.futures.wait counts as done — skipping this
            # would let a cancelled straggler wedge the scheduler's
            # wait() forever. RUNNING also matches the semantics: once
            # dispatched, the work is on the wire and cannot be
            # recalled, exactly like a running local task.
            if not task.future.set_running_or_notify_cancel():
                return  # cancelled before dispatch; waiters notified
            task.started = True
        while True:
            with self._lock:
                live = [c for c in self._channels if c.alive]
                if live:
                    channel = live[self._rr % len(live)]
                    self._rr += 1
                    task_id = self._next_id
                    self._next_id += 1
            if not live:
                fleet = ", ".join(
                    f"{host}:{port}" for host, port in (
                        c.address for c in self._channels
                    )
                )
                _fail(task.future, EstimationError(
                    f"no live repro-workers left for {task.op!r} "
                    f"(fleet: {fleet})"
                ))
                return
            if channel.send(task_id, task):
                return
            # That channel died under us; try the next survivor.

    def _channel_died(self, channel: _Channel, fault) -> None:
        orphans = channel.reap()
        channel.close()
        with self._lock:
            closed = self._closed
        for task in orphans:
            if task.future.cancelled():
                continue
            if closed:
                _fail(task.future, EstimationError(
                    "remote executor pool shut down with work in flight"
                ))
            else:
                # Mid-batch worker death: resubmit to the survivors.
                self._dispatch(task)

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
            channels = list(self._channels)
        for channel in channels:
            channel.close()
        if wait:
            for channel in channels:
                reader = getattr(channel, "reader", None)
                if reader is not None:
                    reader.join(timeout=CONNECT_TIMEOUT)

    def __enter__(self) -> "_RemotePool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


register_executor(ThreadExecutor())
register_executor(ProcessExecutor())
register_executor(RemoteExecutor())


# ---------------------------------------------------------------------------
# CLI/knob resolution helpers.
# ---------------------------------------------------------------------------


def parse_workers(text: str):
    """Parse a CLI ``--workers`` value.

    Returns an ``int``, the string ``"auto"``, or a tuple of
    ``"host:port"`` strings (which implies the remote backend).
    """
    value = str(text).strip()
    if value.lower() == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        pass
    addresses = tuple(
        part.strip() for part in value.split(",") if part.strip()
    )
    if not addresses or not all(":" in item for item in addresses):
        raise ConfigurationError(
            f"bad --workers value {text!r}: expected an integer, "
            "'auto', or a comma-separated host:port list"
        )
    for item in addresses:
        parse_address(item)
    return addresses


def resolve_workers(workers, backend: ChunkExecutor) -> int:
    """Resolve a ``workers`` knob to a concrete positive count.

    ``"auto"`` (or ``None``) asks the backend: cpu-count for local
    pools — on a 1-CPU host that resolves to 1 and the engine's serial
    inline path, which is exactly the BENCH_pr7 fix — and the fleet
    size for a remote executor.
    """
    if workers is None or workers == "auto":
        return backend.auto_workers()
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ConfigurationError(
            f"workers must be a positive integer or 'auto', got "
            f"{workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(
            f"workers must be a positive integer, got {workers}"
        )
    return workers


def executor_from_cli(executor: str | None, workers):
    """Map CLI ``(--executor, parsed --workers)`` to ``(backend, count)``.

    ``executor=None`` means the flag was not given: it resolves to the
    thread backend, unless ``workers`` is an address list — worker
    *addresses* imply the remote backend. An explicitly local executor
    combined with a fleet, or the remote backend without addresses,
    fails loudly at argument time.
    """
    if isinstance(workers, tuple):
        if executor not in (None, "remote"):
            raise ConfigurationError(
                f"--workers {','.join(workers)!r} names a worker fleet, "
                f"which implies --executor remote (got {executor!r})"
            )
        backend = RemoteExecutor(workers)
        return backend, backend.auto_workers()
    backend = get_executor("thread" if executor is None else executor)
    if isinstance(backend, RemoteExecutor):
        backend._require_addresses()
    return backend, resolve_workers(workers, backend)
