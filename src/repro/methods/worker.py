"""``repro-worker``: the TCP chunk-worker daemon behind ``--executor remote``.

One worker serves any number of coordinator connections, each on its
own thread; every connection speaks the sealed-frame request/reply
protocol from :mod:`repro.methods.executors` (``repro.executor/v1``).
Task execution delegates to :func:`~repro.methods.executors.perform_task`,
which routes ``plan-chunks`` through the process-global
:func:`~repro.core.kernel.run_plan_chunks` — so a long-lived daemon
hydrates each :class:`~repro.core.kernel.SamplingPlan` once (on the
first ``PLAN_MISS`` resubmission) and serves every later batch for that
fingerprint from its plan cache, across jobs and coordinators.

Fault discipline mirrors the ledger/cache files: a torn or unparsable
inbound frame drops that connection loudly (never a guessed-at reply);
an estimation error inside a task travels back as an ``error`` reply
and fails only that task's future. Determinism needs no cooperation
from this module at all — workers return raw ``(chunk_index, moments)``
pairs and the coordinator folds them in strict index order.

Run it::

    PYTHONPATH=src python -m repro.methods.worker --port 8421
    # or, installed: repro-worker --port 8421

and point any sweep at the fleet::

    repro-experiments fig5 --executor remote \\
        --workers hostA:8421,hostB:8421 ...
"""

from __future__ import annotations

import argparse
import socket
import threading

from ..errors import WireError
from .executors import encode_frame, perform_task, read_frame


class WorkerServer:
    """A listening worker: thread-per-connection, sealed-frame protocol.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`). ``fail_after=N`` is a fault-injection knob for the
    resubmission tests: the server handles N work requests normally,
    then crashes the whole daemon — listener and every connection —
    without replying, exactly like a worker dying mid-batch.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        fail_after: int | None = None,
    ) -> None:
        self.host = host
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind((host, port))
        self._listener.listen()
        self.port = self._listener.getsockname()[1]
        self._fail_after = fail_after
        self._handled = 0
        self._lock = threading.Lock()
        self._connections: set[socket.socket] = set()
        self._closed = False

    @property
    def address(self) -> str:
        """The ``host:port`` spelling ``--workers`` accepts."""
        return f"{self.host}:{self.port}"

    # -- serving -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until :meth:`close` (blocking)."""
        while True:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                daemon=True,
                name=f"repro-worker-conn-{self.port}",
            ).start()

    def start(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread (for tests)."""
        thread = threading.Thread(
            target=self.serve_forever,
            daemon=True,
            name=f"repro-worker-{self.port}",
        )
        thread.start()
        return thread

    def _serve_connection(self, conn: socket.socket) -> None:
        stream = conn.makefile("rb")
        try:
            while True:
                frame = read_frame(stream)
                if frame is None:
                    return  # coordinator closed cleanly
                if self._crash_now(frame):
                    return  # simulated mid-batch death: no reply
                try:
                    reply = perform_task(frame)
                except WireError as error:
                    # Protocol fault (bad schema, unknown op): tell the
                    # coordinator once, then drop the connection.
                    conn.sendall(encode_frame({
                        "op": "error",
                        "error": str(error),
                        "id": frame.get("id"),
                    }))
                    return
                except Exception as error:
                    reply = {
                        "op": "error",
                        "error": f"{type(error).__name__}: {error}",
                    }
                reply["id"] = frame.get("id")
                conn.sendall(encode_frame(reply))
        except WireError:
            # Torn inbound frame: the stream cannot be trusted; drop the
            # connection without replying (the sealed-record discipline).
            return
        except OSError:
            return
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                stream.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def _crash_now(self, frame: dict) -> bool:
        """Apply the ``fail_after`` fault-injection budget."""
        if self._fail_after is None or frame.get("op") == "hello":
            return False
        with self._lock:
            self._handled += 1
            crash = self._handled > self._fail_after
        if crash:
            self.close()
        return crash

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop accepting and sever every live connection."""
        with self._lock:
            self._closed = True
            connections = list(self._connections)
            self._connections.clear()
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


class BackgroundWorker:
    """A live in-process worker daemon (context manager).

    The loopback harness for tests and benchmarks::

        with BackgroundWorker() as worker:
            backend = RemoteExecutor([worker.address])
            ...

    Note the loopback worker shares the coordinator process's plan
    cache, so exercising the PLAN_MISS path requires a raw-socket
    request with an unknown key (see ``tests/test_executor_protocol.py``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        fail_after: int | None = None,
    ) -> None:
        self.server = WorkerServer(host, port, fail_after=fail_after)

    @property
    def address(self) -> str:
        return self.server.address

    def __enter__(self) -> "BackgroundWorker":
        self.server.start()
        return self

    def __exit__(self, *exc) -> None:
        self.server.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description=(
            "Serve Monte-Carlo chunk batches to remote coordinators "
            "(--executor remote)."
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: %(default)s)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8421,
        help="port to listen on; 0 picks an ephemeral port "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)
    server = WorkerServer(args.host, args.port)
    print(f"repro-worker listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    raise SystemExit(main())
