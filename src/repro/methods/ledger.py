"""Cross-shard trial-budget ledger: N shards, one work-conserving fleet.

PR 4 made a single sweep work-conserving: trial budget freed by
early-stopping points is re-granted to the least-converged open points
at deterministic quiescent barriers. But a *sharded* run redistributed
within its own shard only — budget freed on machine A was stranded
there while machine B's straggler kept starving. This module closes
that gap: co-running shards pointed at one shared ``--cache-dir``
coordinate their budget through a per-run append-only **ledger file**,
turning N independent shards into one fleet whose merged result is a
pure function of the configuration.

Protocol (see ``docs/SCHEDULER.md`` for the full narrative)
-----------------------------------------------------------

Every shard runs its deterministic local schedule until *quiescent* —
each of its points resolved (stopping rule satisfied, censored, or
budget exhausted while still short of the target). It then enters
cross-shard **round** ``r`` (0, 1, 2, ...):

1. **publish** — append ``point-converged`` records for points
   finalized since the previous round, one ``point-open`` record per
   still-open point (global point index + current deficit), one
   ``budget-freed`` record carrying the trial budget its early
   stoppers freed since the previous round, and finally a
   ``shard-barrier`` record sealing the round (written last, so a
   visible barrier implies the whole round block is visible);
2. **rendezvous** — poll the ledger until every *active* shard has
   sealed round ``r``;
3. **allocate** — compute the round's grants with
   :func:`repro.core.montecarlo.allocate_grants` over the *global*
   pool (all shards' freed budget, minus earlier rounds' grants) and
   the *global* demand set (all shards' open points, ranked
   worst-deficit first, ties by global index). The function is pure
   and its inputs are identical for every shard, so every shard
   computes the identical allocation and simply applies — and records
   as ``budget-claimed`` — the grants for the points it owns.

A shard that received no grants and has no open points exits (after an
audit ``shard-done`` record); shard activity is itself derived from
the ledger (active at ``r+1`` iff it published open demands at ``r`` —
grant recipients are by construction a subset of the demanders), so
nobody waits on a shard that cannot contribute. The
protocol ends globally at the first round whose allocation is empty —
the pool is spent or no point can use it — which every shard detects
identically. Rounds are matched by *index*, never by wall-clock, so
the grant schedule (and therefore the merged ResultSet) is independent
of shard speed, worker count, and executor.

Determinism, conservation, crash-safety
---------------------------------------

* **Deterministic given the ledger**: grants are recomputed from the
  ``shard-barrier``-sealed round data by a pure function;
  ``budget-claimed`` records are an audit trail, not an input. A
  completed ledger can be *replayed* (``replay=True``): each shard
  rerun sequentially follows the recorded rounds without waiting and
  reproduces its live results bit-for-bit (the replay verifies its
  recomputed publications against the recorded ones and fails loudly
  on any divergence).
* **Budget-conserving**: :func:`allocate_grants` never grants more
  than the pool, and the pool only ever receives budget that a
  stopping rule actually freed — total granted trials <= total freed
  trials, fleet-wide, by construction.
* **Crash-safe appends**: records are newline-framed single-``write``
  appends (:func:`repro.methods.cache.append_record`); a shard that
  dies mid-append leaves one torn line that every reader skips
  (:func:`repro.methods.cache.scan_records`). Duplicate records —
  e.g. a crashed-and-rerun shard re-appending a ``budget-claimed`` —
  are rejected deterministically: the first occurrence in file order
  wins, always, for every reader.

Filesystem assumption: concurrent appenders rely on atomic
``O_APPEND`` writes, which local filesystems (and most cluster
filesystems) provide but NFS famously does not. The failure mode on a
filesystem without it is *loud*, never silently wrong — an
interleaved write corrupts a line that every reader skips, so the
round's sealing barrier goes missing and the fleet fails at the
rendezvous timeout, or a sealed-but-short round block raises "ledger
corrupt"; the numbers a completed fleet reports are still exactly the
recorded schedule. For fleets on plain NFS, give each shard its own
local run and merge, or host the ledger (and cache) on a filesystem
with atomic appends.

Results produced under a ledger tag their ``mc_token`` with
``+xshard`` so :func:`~repro.methods.results.merge_result_sets`
refuses to interleave ledger-coordinated shards with plain or
``+realloc`` (shard-local re-allocation) artifacts.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from ..core.montecarlo import allocate_grants
from ..errors import ConfigurationError, EstimationError
from .cache import append_record, scan_records
from .results import validate_shard

#: Schema tag embedded in every ledger record.
LEDGER_SCHEMA = "repro.xshard-ledger/v1"

#: Record kinds, in the order one shard's round block is written.
SHARD_HELLO = "shard-hello"
POINT_CONVERGED = "point-converged"
POINT_OPEN = "point-open"
BUDGET_FREED = "budget-freed"
SHARD_BARRIER = "shard-barrier"
BUDGET_CLAIMED = "budget-claimed"
SHARD_DONE = "shard-done"

_RUN_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def ledger_path(cache_dir: str | Path, run_id: str) -> Path:
    """The ledger file for fleet ``run_id`` inside a shared cache dir.

    The ``.ledger`` suffix keeps the file invisible to
    :class:`~repro.methods.cache.DiskCache` (which only ever touches
    ``*.json`` entries in the same directory).
    """
    if not _RUN_ID.match(run_id):
        raise ConfigurationError(
            f"invalid ledger run id {run_id!r}; use letters, digits, "
            "'.', '_' or '-'"
        )
    return Path(cache_dir) / f"xshard-{run_id}.ledger"


@dataclass
class _Round:
    """One shard's published state for one round, as scanned."""

    freed: int | None = None
    #: ``(global index, deficit, trials merged so far)`` per open point.
    opens: list[tuple[int, float, int]] = field(default_factory=list)
    #: ``(global index, trials)`` per point finalized before this round.
    converged: list[tuple[int, int]] = field(default_factory=list)
    barrier: dict | None = None

    @property
    def sealed(self) -> bool:
        return self.barrier is not None

    def check(self, shard: int, number: int) -> None:
        """Validate a sealed round block against its barrier summary.

        The barrier is written last, so a visible barrier with missing
        ``budget-freed``/``point-open`` records means a line was lost
        to corruption (not a torn tail) — fail loudly.
        """
        if self.freed is None or len(self.opens) != self.barrier["opens"]:
            raise EstimationError(
                f"ledger corrupt: shard {shard} round {number} barrier "
                f"expects {self.barrier['opens']} open points and a "
                "budget-freed record, but the round block is incomplete"
            )
        if self.freed != self.barrier["freed"]:
            raise EstimationError(
                f"ledger corrupt: shard {shard} round {number} freed "
                f"{self.freed} trials but its barrier says "
                f"{self.barrier['freed']}"
            )


class LedgerState:
    """A validated snapshot of one ledger file's contents.

    Built by :meth:`scan`; every derived quantity (round completeness,
    shard activity, per-round allocations) is a pure function of the
    file contents, so any two readers of the same bytes agree exactly.
    Duplicate records (same shard and kind, same round/point where
    applicable) are rejected deterministically: the first occurrence
    in file order wins and :attr:`duplicates` counts the rest.
    """

    def __init__(self, shard_count: int) -> None:
        self.shard_count = shard_count
        self.hellos: dict[int, dict] = {}
        self.rounds: dict[tuple[int, int], _Round] = {}
        #: ``(shard, round, global index) -> trials`` — first wins.
        self.claims: dict[tuple[int, int, int], int] = {}
        self.done: dict[int, int] = {}
        self.duplicates = 0

    @classmethod
    def scan(cls, path: str | Path, shard_count: int) -> "LedgerState":
        state = cls(shard_count)
        seen_opens: set[tuple[int, int, int]] = set()
        seen_converged: set[tuple[int, int]] = set()
        for record in scan_records(path):
            kind = record.get("kind")
            try:
                if kind == SHARD_HELLO:
                    shard = int(record["shard"])
                    if shard in state.hellos:
                        state.duplicates += 1
                        continue
                    state.hellos[shard] = record
                elif kind == BUDGET_FREED:
                    entry = state._round(record)
                    if entry.freed is not None:
                        state.duplicates += 1
                        continue
                    entry.freed = int(record["trials"])
                elif kind == POINT_OPEN:
                    key = (
                        int(record["shard"]),
                        int(record["round"]),
                        int(record["index"]),
                    )
                    if key in seen_opens:
                        state.duplicates += 1
                        continue
                    seen_opens.add(key)
                    state._round(record).opens.append(
                        (
                            int(record["index"]),
                            float(record["deficit"]),
                            int(record["trials"]),
                        )
                    )
                elif kind == POINT_CONVERGED:
                    key = (int(record["shard"]), int(record["index"]))
                    if key in seen_converged:
                        state.duplicates += 1
                        continue
                    seen_converged.add(key)
                    state._round(record).converged.append(
                        (int(record["index"]), int(record["trials"]))
                    )
                elif kind == SHARD_BARRIER:
                    entry = state._round(record)
                    if entry.barrier is not None:
                        state.duplicates += 1
                        continue
                    entry.barrier = {
                        "freed": int(record["freed"]),
                        "opens": int(record["opens"]),
                    }
                elif kind == BUDGET_CLAIMED:
                    key = (
                        int(record["shard"]),
                        int(record["round"]),
                        int(record["index"]),
                    )
                    if key in state.claims:
                        state.duplicates += 1
                        continue
                    state.claims[key] = int(record["trials"])
                elif kind == SHARD_DONE:
                    shard = int(record["shard"])
                    if shard in state.done:
                        state.duplicates += 1
                        continue
                    state.done[shard] = int(record["round"])
                # Unknown kinds are skipped: a newer writer may add
                # audit records an older reader can ignore.
            except (KeyError, TypeError, ValueError):
                # Malformed-but-parseable record: same discipline as a
                # torn line — skip it, never crash the fleet.
                continue
        return state

    def _round(self, record: Mapping) -> _Round:
        key = (int(record["shard"]), int(record["round"]))
        return self.rounds.setdefault(key, _Round())

    # -- derived state -----------------------------------------------------

    def sealed(self, shard: int, number: int) -> bool:
        """Whether ``shard`` has sealed round ``number`` (validated)."""
        entry = self.rounds.get((shard, number))
        if entry is None or not entry.sealed:
            return False
        entry.check(shard, number)
        return True

    def allocation(
        self, number: int, unit: int
    ) -> dict[int, list[int]] | None:
        """Round ``number``'s fleet-wide grants, or None if not ready.

        Replays the protocol from round 0: shard activity, the running
        pool, and each round's grants are derived only from sealed
        round blocks, with :func:`allocate_grants` as the single
        allocation policy. Returns ``global point index -> chunk
        sizes``. ``None`` means some active shard has not sealed a
        needed round yet (live callers poll and rescan). Raises when
        the protocol provably ended before ``number`` — a live shard
        never asks past the end, so that is a replay of a ledger that
        does not match the configuration.
        """
        active = set(range(self.shard_count))
        pool = 0
        for current in range(number + 1):
            demands: list[tuple[float, int]] = []
            openers: set[int] = set()
            for shard in sorted(active):
                if not self.sealed(shard, current):
                    return None
                entry = self.rounds[(shard, current)]
                pool += entry.freed
                for index, deficit, _trials in entry.opens:
                    demands.append((deficit, index))
                    openers.add(shard)
            grants = allocate_grants(pool, demands, unit)
            if current == number:
                return grants
            if not grants:
                raise EstimationError(
                    f"ledger protocol ended at round {current}, before "
                    f"round {number}: this ledger does not match the "
                    "requested replay"
                )
            pool -= sum(sum(sizes) for sizes in grants.values())
            # Grant recipients are by construction a subset of the
            # shards that published demands, so demand is the whole
            # activity rule.
            active = openers
        raise AssertionError("unreachable")  # pragma: no cover

    def totals(self) -> dict[str, int]:
        """Fleet-wide audit totals (tests and benchmarks assert on these)."""
        freed = sum(
            entry.freed
            for entry in self.rounds.values()
            if entry.freed is not None
        )
        claimed = sum(self.claims.values())
        return {
            "freed_trials": freed,
            "claimed_trials": claimed,
            "rounds": 1 + max(
                (number for _shard, number in self.rounds), default=-1
            ),
            "duplicates": self.duplicates,
        }


class BudgetLedger:
    """One shard's handle on a fleet's shared budget ledger file.

    Parameters
    ----------
    path:
        The per-run ledger file, typically
        ``ledger_path(cache_dir, run_id)`` inside the fleet's shared
        ``--cache-dir``. Created on first append.
    shard:
        This participant's ``(i, n)`` coordinates — the same pair the
        engine's ``shard=`` argument receives.
    replay:
        False (default) runs the live protocol: publish rounds, wait
        for the co-running shards, claim grants. True *replays* a
        completed ledger deterministically — no records are written,
        no waiting happens; the recorded rounds drive the identical
        grant schedule and every recomputed publication is verified
        against the recorded one.
    poll_interval / timeout:
        Live-mode rendezvous polling cadence and patience (seconds).
        The timeout failure is loud: ledger coordination needs its
        shards *co-running*, and a missing sibling should never
        silently degrade the run into an uncoordinated one.
    """

    def __init__(
        self,
        path: str | Path,
        shard: tuple[int, int],
        replay: bool = False,
        poll_interval: float = 0.05,
        timeout: float = 600.0,
    ) -> None:
        self.path = Path(path)
        self.shard = validate_shard(shard)
        self.replay = replay
        self.poll_interval = poll_interval
        self.timeout = timeout
        self._hello: dict | None = None

    @property
    def index(self) -> int:
        return self.shard[0]

    @property
    def count(self) -> int:
        return self.shard[1]

    # -- plumbing ----------------------------------------------------------

    def _record(self, kind: str, **fields) -> dict:
        return {"kind": kind, "shard": self.index, **fields}

    def _scan(self) -> LedgerState:
        return LedgerState.scan(self.path, self.count)

    def _check_hellos(self, state: LedgerState) -> None:
        assert self._hello is not None
        for shard, hello in state.hellos.items():
            if shard == self.index:
                continue
            for key in ("shards", "token", "methods", "reference"):
                if hello.get(key) != self._hello[key]:
                    raise ConfigurationError(
                        f"ledger {self.path} shard {shard} was launched "
                        f"with a different configuration ({key}: "
                        f"{hello.get(key)!r} vs {self._hello[key]!r}); "
                        "every shard of one fleet must share the exact "
                        "sweep configuration"
                    )

    # -- protocol ----------------------------------------------------------

    def open_run(
        self, token: str, methods: Sequence[str], reference: str
    ) -> None:
        """Join the fleet: write (or, replaying, verify) the hello."""
        self._hello = {
            "schema": LEDGER_SCHEMA,
            "shards": self.count,
            "token": token,
            "methods": list(methods),
            "reference": reference,
        }
        state = self._scan()
        recorded = state.hellos.get(self.index)
        if self.replay:
            if recorded is None:
                raise ConfigurationError(
                    f"ledger {self.path} has no shard-hello for shard "
                    f"{self.index}/{self.count}; nothing to replay"
                )
            for key, value in self._hello.items():
                if recorded.get(key) != value:
                    raise ConfigurationError(
                        f"ledger {self.path} was produced by a different "
                        f"configuration ({key}: {recorded.get(key)!r} vs "
                        f"{value!r}); refusing to replay"
                    )
            self._check_hellos(state)
            return
        if recorded is not None:
            raise ConfigurationError(
                f"ledger {self.path} already has records for shard "
                f"{self.index}/{self.count}; each live fleet run needs a "
                "fresh run id (replaying a finished ledger is "
                "replay=True / --ledger-replay)"
            )
        self._check_hellos(state)
        append_record(
            self.path, self._record(SHARD_HELLO, **self._hello)
        )

    def publish_round(
        self,
        number: int,
        freed: int,
        opens: Sequence[tuple[int, float, int]],
        converged: Sequence[tuple[int, int]],
    ) -> None:
        """Publish (or verify, replaying) this shard's round block.

        ``opens`` are ``(global index, deficit, trials)`` for every
        still-open point; ``converged`` are ``(global index, trials)``
        for points finalized since the previous round. The sealing
        ``shard-barrier`` is written last.
        """
        if self.replay:
            state = self._scan()
            if not state.sealed(self.index, number):
                raise EstimationError(
                    f"ledger {self.path} has no sealed round {number} "
                    f"for shard {self.index}; the live run ended (or "
                    "crashed) earlier — cannot replay past it"
                )
            entry = state.rounds[(self.index, number)]
            recorded_opens = sorted(
                (index, deficit) for index, deficit, _t in entry.opens
            )
            computed_opens = sorted(
                (index, deficit) for index, deficit, _t in opens
            )
            if entry.freed != freed or recorded_opens != computed_opens:
                raise EstimationError(
                    f"replay diverged from ledger {self.path} at shard "
                    f"{self.index} round {number}: recorded "
                    f"(freed={entry.freed}, opens={recorded_opens}) vs "
                    f"recomputed (freed={freed}, opens={computed_opens})"
                    " — the configuration does not match the recording"
                )
            return
        for index, trials in converged:
            append_record(
                self.path,
                self._record(
                    POINT_CONVERGED,
                    round=number,
                    index=index,
                    trials=trials,
                ),
            )
        for index, deficit, trials in opens:
            append_record(
                self.path,
                self._record(
                    POINT_OPEN,
                    round=number,
                    index=index,
                    deficit=deficit,
                    trials=trials,
                ),
            )
        append_record(
            self.path,
            self._record(BUDGET_FREED, round=number, trials=freed),
        )
        append_record(
            self.path,
            self._record(
                SHARD_BARRIER, round=number, freed=freed, opens=len(opens)
            ),
        )

    def rendezvous(self, number: int, unit: int) -> dict[int, list[int]]:
        """Round ``number``'s fleet-wide grants (waiting live, not replaying).

        Returns ``global point index -> extension chunk sizes`` for
        the *whole fleet*; callers apply the subset they own. Raises
        :class:`~repro.errors.EstimationError` when the co-running
        shards do not seal the round within ``timeout`` seconds.
        """
        if self.replay:
            grants = self._scan().allocation(number, unit)
            if grants is None:
                raise EstimationError(
                    f"ledger {self.path} is incomplete at round {number} "
                    "(a live shard crashed mid-fleet?); cannot replay"
                )
            return grants
        # repro: allow[D101] liveness timeout only; no clock value ever
        # enters a ledger record, an allocation, or a result
        deadline = time.monotonic() + self.timeout
        # Exponential backoff from poll_interval up to ~1s: a shard
        # waiting out a slow sibling's long initial sweep should not
        # hammer the (possibly shared/network) directory at full rate,
        # but short waits stay responsive.
        interval = self.poll_interval
        while True:
            state = self._scan()
            self._check_hellos(state)
            grants = state.allocation(number, unit)
            if grants is not None:
                return grants
            # repro: allow[D101] same liveness deadline as above; the
            # rendezvous outcome depends only on ledger contents
            if time.monotonic() >= deadline:
                raise EstimationError(
                    f"ledger rendezvous timed out after {self.timeout}s "
                    f"waiting for round {number} of {self.path}; budget-"
                    "ledger coordination needs every shard of the fleet "
                    "co-running against the same ledger file (a slower "
                    "fleet needs a larger timeout: BudgetLedger(..., "
                    "timeout=...) / --ledger-timeout)"
                )
            # repro: allow[D101] poll pacing; sleeping changes when the
            # ledger is re-scanned, never what the scan computes
            time.sleep(interval)
            interval = min(max(1.0, self.poll_interval), interval * 2)

    def record_claims(
        self, number: int, grants: Mapping[int, Sequence[int]]
    ) -> None:
        """Audit-record (or verify, replaying) this shard's applied grants."""
        if self.replay:
            state = self._scan()
            for index, sizes in grants.items():
                recorded = state.claims.get((self.index, number, index))
                if recorded is not None and recorded != sum(sizes):
                    raise EstimationError(
                        f"replay diverged from ledger {self.path}: shard "
                        f"{self.index} round {number} point {index} "
                        f"claimed {recorded} trials in the recording but "
                        f"{sum(sizes)} on replay"
                    )
            return
        for index in sorted(grants):
            sizes = list(grants[index])
            append_record(
                self.path,
                self._record(
                    BUDGET_CLAIMED,
                    round=number,
                    index=index,
                    trials=sum(sizes),
                    chunks=len(sizes),
                ),
            )

    def close(
        self, number: int, converged: Sequence[tuple[int, int]] = ()
    ) -> None:
        """Leave the fleet after round ``number`` (audit records only)."""
        if self.replay:
            return
        for index, trials in converged:
            append_record(
                self.path,
                self._record(
                    POINT_CONVERGED,
                    round=number,
                    index=index,
                    trials=trials,
                ),
            )
        append_record(self.path, self._record(SHARD_DONE, round=number))

    def audit(self) -> dict[str, int]:
        """Fleet-wide totals scanned from the ledger file."""
        totals = self._scan().totals()
        if totals["claimed_trials"] > totals["freed_trials"]:
            raise EstimationError(
                f"ledger {self.path} violates budget conservation: "
                f"{totals['claimed_trials']} trials claimed of "
                f"{totals['freed_trials']} freed"
            )
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "replay" if self.replay else "live"
        return (
            f"BudgetLedger({str(self.path)!r}, shard="
            f"{self.index}/{self.count}, {mode})"
        )
