"""Cross-shard trial-budget ledger: N shards, one work-conserving fleet.

PR 4 made a single sweep work-conserving: trial budget freed by
early-stopping points is re-granted to the least-converged open points
at deterministic quiescent barriers. But a *sharded* run redistributed
within its own shard only — budget freed on machine A was stranded
there while machine B's straggler kept starving. This module closes
that gap: co-running shards pointed at one shared ``--cache-dir``
coordinate their budget through a per-run append-only **ledger file**,
turning N independent shards into one fleet whose merged result is a
pure function of the configuration.

Protocol (see ``docs/SCHEDULER.md`` for the full narrative)
-----------------------------------------------------------

Every shard runs its deterministic local schedule until *quiescent* —
each of its points resolved (stopping rule satisfied, censored, or
budget exhausted while still short of the target). It then enters
cross-shard **round** ``r`` (0, 1, 2, ...):

1. **publish** — append ``point-converged`` records for points
   finalized since the previous round, one ``point-open`` record per
   still-open point (global point index + current deficit), one
   ``budget-freed`` record carrying the trial budget its early
   stoppers freed since the previous round, and finally a
   ``shard-barrier`` record sealing the round (written last, so a
   visible barrier implies the whole round block is visible);
2. **rendezvous** — poll the ledger until every *active* shard has
   sealed round ``r``;
3. **allocate** — compute the round's grants with
   :func:`repro.core.montecarlo.allocate_grants` over the *global*
   pool (all shards' freed budget, minus earlier rounds' grants) and
   the *global* demand set (all shards' open points, ranked
   worst-deficit first, ties by global index). The function is pure
   and its inputs are identical for every shard, so every shard
   computes the identical allocation and simply applies — and records
   as ``budget-claimed`` — the grants for the points it owns.

A shard that received no grants and has no open points exits (after an
audit ``shard-done`` record); shard activity is itself derived from
the ledger (active at ``r+1`` iff it published open demands at ``r`` —
grant recipients are by construction a subset of the demanders), so
nobody waits on a shard that cannot contribute. The
protocol ends globally at the first round whose allocation is empty —
the pool is spent or no point can use it — which every shard detects
identically. Rounds are matched by *index*, never by wall-clock, so
the grant schedule (and therefore the merged ResultSet) is independent
of shard speed, worker count, and executor.

Determinism, conservation, crash-safety
---------------------------------------

* **Deterministic given the ledger**: grants are recomputed from the
  ``shard-barrier``-sealed round data by a pure function;
  ``budget-claimed`` records are an audit trail, not an input. A
  completed ledger can be *replayed* (``replay=True``): each shard
  rerun sequentially follows the recorded rounds without waiting and
  reproduces its live results bit-for-bit (the replay verifies its
  recomputed publications against the recorded ones and fails loudly
  on any divergence).
* **Budget-conserving**: :func:`allocate_grants` never grants more
  than the pool, and the pool only ever receives budget that a
  stopping rule actually freed — total granted trials <= total freed
  trials, fleet-wide, by construction.
* **Crash-safe appends**: records are newline-framed single-``write``
  appends (:func:`repro.methods.cache.append_record`); a shard that
  dies mid-append leaves one torn line that every reader skips
  (:func:`repro.methods.cache.scan_records`). Duplicate records —
  e.g. a crashed-and-rerun shard re-appending a ``budget-claimed`` —
  are rejected deterministically: the first occurrence in file order
  wins, always, for every reader.

Filesystem assumption: concurrent appenders rely on atomic
``O_APPEND`` writes, which local filesystems (and most cluster
filesystems) provide but NFS famously does not. The failure mode on a
filesystem without it is *loud*, never silently wrong — an
interleaved write corrupts a line that every reader skips, so the
round's sealing barrier goes missing and the fleet fails at the
rendezvous timeout, or a sealed-but-short round block raises "ledger
corrupt"; the numbers a completed fleet reports are still exactly the
recorded schedule. For fleets on plain NFS, give each shard its own
local run and merge, or host the ledger (and cache) on a filesystem
with atomic appends.

Results produced under a ledger tag their ``mc_token`` with
``+xshard`` so :func:`~repro.methods.results.merge_result_sets`
refuses to interleave ledger-coordinated shards with plain or
``+realloc`` (shard-local re-allocation) artifacts.

Elastic membership (slots vs members)
-------------------------------------

The fleet's *geometry* — ``n`` round-robin shard slots — is fixed for
the life of a run, but the *member* working a slot is elastic. Three
membership record kinds (``shard-join`` / ``shard-heartbeat`` /
``shard-depart``) track member changes; every accepted join or depart
advances the fleet's **membership epoch** (derived from record order,
so every reader of the same bytes sees the same epoch history).

* **Heartbeats** are monotone *beat counters* (never clock values — no
  wall-clock reading enters any ledger record) appended by a daemon
  thread while a member is live. An observer judges liveness against
  its *own* clock: a slot whose records stop progressing for longer
  than the configured ``lease`` is presumed dead.
* **Depart** records make the liveness judgment part of the ledger: a
  survivor (or a voluntarily leaving shard — ``leave_after`` /
  ``--leave-after``) appends one ``shard-depart`` record naming the
  slot, the blocked round, and a deterministic *adopter*. Replay never
  re-detects anything; it follows the recorded rounds.
* **Adoption / join** re-runs the vacant slot's deterministic schedule
  — prefix-preserving chunk seeds make the recomputation bit-identical
  — verifying the rounds the departed member already sealed and
  continuing live from the first unsealed one (``takeover=True`` /
  ``--join``). Because the adopter seals exactly the rounds the
  departed member would have sealed, the grant schedule (and therefore
  every shard's merged bits) is *independent of membership changes*:
  round allocation never consults membership, only sealed rounds.

A false-positive depart (a paused-not-dead member resuming past its
lease) is therefore safe: the zombie and the adopter append identical
records (first occurrence wins for every reader) and produce identical
results — liveness judgments place work, they never change numbers.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from ..core.montecarlo import allocate_grants
from ..errors import ConfigurationError, EstimationError
from .cache import append_record, scan_records
from .results import validate_shard

#: Schema tag embedded in every ledger record.
LEDGER_SCHEMA = "repro.xshard-ledger/v1"

#: Record kinds, in the order one shard's round block is written.
SHARD_HELLO = "shard-hello"
POINT_CONVERGED = "point-converged"
POINT_OPEN = "point-open"
BUDGET_FREED = "budget-freed"
SHARD_BARRIER = "shard-barrier"
BUDGET_CLAIMED = "budget-claimed"
SHARD_DONE = "shard-done"

#: Elastic-membership record kinds (see the module docstring): a
#: replacement member taking over a slot, a live member's monotone
#: beat counter, and a recorded member departure (voluntary leave or a
#: survivor's lease-expiry judgment).
SHARD_JOIN = "shard-join"
SHARD_HEARTBEAT = "shard-heartbeat"
SHARD_DEPART = "shard-depart"

_RUN_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class ShardDeparted(EstimationError):
    """A shard left its fleet mid-run (``leave_after`` / ``--leave-after``).

    Raised *after* the ``shard-depart`` record is on the ledger, so the
    surviving members (or a ``--join`` replacement) can adopt the
    slot's open points. Carries the vacated slot and the first round
    the departing member did not publish.
    """

    def __init__(self, message: str, slot: int, round_number: int) -> None:
        super().__init__(message)
        self.slot = slot
        self.round_number = round_number


def ledger_path(cache_dir: str | Path, run_id: str) -> Path:
    """The ledger file for fleet ``run_id`` inside a shared cache dir.

    The ``.ledger`` suffix keeps the file invisible to
    :class:`~repro.methods.cache.DiskCache` (which only ever touches
    ``*.json`` entries in the same directory).
    """
    if not _RUN_ID.match(run_id):
        raise ConfigurationError(
            f"invalid ledger run id {run_id!r}; use letters, digits, "
            "'.', '_' or '-'"
        )
    return Path(cache_dir) / f"xshard-{run_id}.ledger"


@dataclass
class _Round:
    """One shard's published state for one round, as scanned."""

    freed: int | None = None
    #: ``(global index, deficit, trials merged so far)`` per open point.
    opens: list[tuple[int, float, int]] = field(default_factory=list)
    #: ``(global index, trials)`` per point finalized before this round.
    converged: list[tuple[int, int]] = field(default_factory=list)
    barrier: dict | None = None

    @property
    def sealed(self) -> bool:
        return self.barrier is not None

    def check(self, shard: int, number: int) -> None:
        """Validate a sealed round block against its barrier summary.

        The barrier is written last, so a visible barrier with missing
        ``budget-freed``/``point-open`` records means a line was lost
        to corruption (not a torn tail) — fail loudly.
        """
        if self.freed is None or len(self.opens) != self.barrier["opens"]:
            raise EstimationError(
                f"ledger corrupt: shard {shard} round {number} barrier "
                f"expects {self.barrier['opens']} open points and a "
                "budget-freed record, but the round block is incomplete"
            )
        if self.freed != self.barrier["freed"]:
            raise EstimationError(
                f"ledger corrupt: shard {shard} round {number} freed "
                f"{self.freed} trials but its barrier says "
                f"{self.barrier['freed']}"
            )


class LedgerState:
    """A validated snapshot of one ledger file's contents.

    Built by :meth:`scan`; every derived quantity (round completeness,
    shard activity, per-round allocations) is a pure function of the
    file contents, so any two readers of the same bytes agree exactly.
    Duplicate records (same shard and kind, same round/point where
    applicable) are rejected deterministically: the first occurrence
    in file order wins and :attr:`duplicates` counts the rest.
    """

    def __init__(self, shard_count: int) -> None:
        self.shard_count = shard_count
        self.hellos: dict[int, dict] = {}
        self.rounds: dict[tuple[int, int], _Round] = {}
        #: ``(shard, round, global index) -> trials`` — first wins.
        self.claims: dict[tuple[int, int, int], int] = {}
        self.done: dict[int, int] = {}
        self.duplicates = 0
        #: Well-formed records per *writer* slot — the liveness-progress
        #: marker lease observers watch (depart records count for their
        #: ``by`` writer, not the slot they depart).
        self.record_counts: dict[int, int] = {}
        #: Latest heartbeat beat counter per slot (monotone take-max).
        self.heartbeats: dict[int, int] = {}
        #: Accepted join/depart events in file order — the epoch trail.
        self.membership: list[dict] = []

    @classmethod
    def scan(cls, path: str | Path, shard_count: int) -> "LedgerState":
        state = cls(shard_count)
        seen_opens: set[tuple[int, int, int]] = set()
        seen_converged: set[tuple[int, int]] = set()
        seen_membership: set[tuple[str, int, int]] = set()
        for record in scan_records(path):
            kind = record.get("kind")
            try:
                writer = int(record.get("by", record["shard"]))
                state.record_counts[writer] = (
                    state.record_counts.get(writer, 0) + 1
                )
                if kind == SHARD_HELLO:
                    shard = int(record["shard"])
                    if shard in state.hellos:
                        state.duplicates += 1
                        continue
                    state.hellos[shard] = record
                elif kind == BUDGET_FREED:
                    entry = state._round(record)
                    if entry.freed is not None:
                        state.duplicates += 1
                        continue
                    entry.freed = int(record["trials"])
                elif kind == POINT_OPEN:
                    key = (
                        int(record["shard"]),
                        int(record["round"]),
                        int(record["index"]),
                    )
                    if key in seen_opens:
                        state.duplicates += 1
                        continue
                    seen_opens.add(key)
                    state._round(record).opens.append(
                        (
                            int(record["index"]),
                            float(record["deficit"]),
                            int(record["trials"]),
                        )
                    )
                elif kind == POINT_CONVERGED:
                    key = (int(record["shard"]), int(record["index"]))
                    if key in seen_converged:
                        state.duplicates += 1
                        continue
                    seen_converged.add(key)
                    state._round(record).converged.append(
                        (int(record["index"]), int(record["trials"]))
                    )
                elif kind == SHARD_BARRIER:
                    entry = state._round(record)
                    if entry.barrier is not None:
                        state.duplicates += 1
                        continue
                    entry.barrier = {
                        "freed": int(record["freed"]),
                        "opens": int(record["opens"]),
                    }
                elif kind == BUDGET_CLAIMED:
                    key = (
                        int(record["shard"]),
                        int(record["round"]),
                        int(record["index"]),
                    )
                    if key in state.claims:
                        state.duplicates += 1
                        continue
                    state.claims[key] = int(record["trials"])
                elif kind == SHARD_DONE:
                    shard = int(record["shard"])
                    if shard in state.done:
                        state.duplicates += 1
                        continue
                    state.done[shard] = int(record["round"])
                elif kind == SHARD_HEARTBEAT:
                    shard = int(record["shard"])
                    beat = int(record["beat"])
                    state.heartbeats[shard] = max(
                        state.heartbeats.get(shard, -1), beat
                    )
                elif kind in (SHARD_JOIN, SHARD_DEPART):
                    key = (
                        kind,
                        int(record["shard"]),
                        int(record["generation"]),
                    )
                    if key in seen_membership:
                        state.duplicates += 1
                        continue
                    seen_membership.add(key)
                    state.membership.append(
                        {
                            "kind": kind,
                            "shard": int(record["shard"]),
                            "generation": int(record["generation"]),
                            "round": int(record.get("round", 0)),
                            "by": int(record.get("by", record["shard"])),
                            "adopter": record.get("adopter"),
                            "reason": record.get("reason"),
                        }
                    )
                # Unknown kinds are skipped: a newer writer may add
                # audit records an older reader can ignore.
            except (KeyError, TypeError, ValueError):
                # Malformed-but-parseable record: same discipline as a
                # torn line — skip it, never crash the fleet.
                continue
        return state

    def _round(self, record: Mapping) -> _Round:
        key = (int(record["shard"]), int(record["round"]))
        return self.rounds.setdefault(key, _Round())

    # -- derived state -----------------------------------------------------

    def sealed(self, shard: int, number: int) -> bool:
        """Whether ``shard`` has sealed round ``number`` (validated)."""
        entry = self.rounds.get((shard, number))
        if entry is None or not entry.sealed:
            return False
        entry.check(shard, number)
        return True

    # -- membership epochs -------------------------------------------------

    def epoch(self) -> int:
        """Current membership epoch: accepted join/depart events so far.

        Epoch 0 is the co-started fleet (hellos only); every accepted
        ``shard-join`` / ``shard-depart`` record advances it by one.
        Derived from record order alone, so any two readers of the same
        bytes agree exactly.
        """
        return len(self.membership)

    def epoch_history(self) -> list[tuple[int, str, int, int]]:
        """``(epoch, kind, slot, generation)`` per membership change."""
        return [
            (number + 1, event["kind"], event["shard"], event["generation"])
            for number, event in enumerate(self.membership)
        ]

    def generation(self, slot: int) -> int:
        """How many members have joined ``slot`` after its hello."""
        return sum(
            1
            for event in self.membership
            if event["kind"] == SHARD_JOIN and event["shard"] == slot
        )

    def departed(self, slot: int) -> bool:
        """Whether ``slot`` is currently vacant (departed, not rejoined)."""
        state = False
        for event in self.membership:
            if event["shard"] != slot:
                continue
            state = event["kind"] == SHARD_DEPART
        return state

    def depart_event(self, slot: int) -> dict | None:
        """The latest accepted depart record for ``slot``, if any."""
        found = None
        for event in self.membership:
            if event["shard"] == slot and event["kind"] == SHARD_DEPART:
                found = event
        return found

    def members(self) -> dict[int, dict]:
        """Per-slot membership snapshot: generation + departed flag.

        The point-ownership map: every global point ``k`` is owned by
        whatever member currently works slot ``k % n``; a departed
        slot's points belong to its recorded adopter (or a ``--join``
        replacement) until a newer join record claims the slot.
        """
        slots: dict[int, dict] = {
            slot: {"generation": 0, "departed": False}
            for slot in self.hellos
        }
        for event in self.membership:
            entry = slots.setdefault(
                event["shard"], {"generation": 0, "departed": False}
            )
            entry["generation"] = event["generation"]
            entry["departed"] = event["kind"] == SHARD_DEPART
        return slots

    # -- round replay ------------------------------------------------------

    def allocation(
        self, number: int, unit: int
    ) -> dict[int, list[int]] | None:
        """Round ``number``'s fleet-wide grants, or None if not ready.

        Replays the protocol from round 0: shard activity, the running
        pool, and each round's grants are derived only from sealed
        round blocks, with :func:`allocate_grants` as the single
        allocation policy. Returns ``global point index -> chunk
        sizes``. ``None`` means some active shard has not sealed a
        needed round yet (live callers poll and rescan). Raises when
        the protocol provably ended before ``number`` — a live shard
        never asks past the end, so that is a replay of a ledger that
        does not match the configuration.

        Deliberately membership-blind: a departed slot's rounds are
        still waited on — its adopter (or replacement) seals them with
        the identical bits — so the grant schedule is a pure function
        of the sealed rounds regardless of how membership evolved.
        """
        grants, _blocked = self._replay(number, unit)
        return grants

    def blocking(
        self, number: int, unit: int
    ) -> tuple[int, list[int]] | None:
        """Who is holding up round ``number``: ``(round, shards)`` or None.

        The lease observer's (and the timeout message's) view: the
        first incomplete round at or before ``number`` and the shards
        whose seal of it is missing. ``None`` when the allocation is
        ready.
        """
        _grants, blocked = self._replay(number, unit)
        return blocked

    def _replay(
        self, number: int, unit: int
    ) -> tuple[dict[int, list[int]] | None, tuple[int, list[int]] | None]:
        active = set(range(self.shard_count))
        pool = 0
        for current in range(number + 1):
            missing = sorted(
                shard
                for shard in active
                if not self.sealed(shard, current)
            )
            if missing:
                return None, (current, missing)
            demands: list[tuple[float, int]] = []
            openers: set[int] = set()
            for shard in sorted(active):
                entry = self.rounds[(shard, current)]
                pool += entry.freed
                for index, deficit, _trials in entry.opens:
                    demands.append((deficit, index))
                    openers.add(shard)
            grants = allocate_grants(pool, demands, unit)
            if current == number:
                return grants, None
            if not grants:
                raise EstimationError(
                    f"ledger protocol ended at round {current}, before "
                    f"round {number}: this ledger does not match the "
                    "requested replay"
                )
            pool -= sum(sum(sizes) for sizes in grants.values())
            # Grant recipients are by construction a subset of the
            # shards that published demands, so demand is the whole
            # activity rule.
            active = openers
        raise AssertionError("unreachable")  # pragma: no cover

    def totals(self) -> dict[str, int]:
        """Fleet-wide audit totals (tests and benchmarks assert on these)."""
        freed = sum(
            entry.freed
            for entry in self.rounds.values()
            if entry.freed is not None
        )
        claimed = sum(self.claims.values())
        return {
            "freed_trials": freed,
            "claimed_trials": claimed,
            "rounds": 1 + max(
                (number for _shard, number in self.rounds), default=-1
            ),
            "duplicates": self.duplicates,
        }


class BudgetLedger:
    """One shard's handle on a fleet's shared budget ledger file.

    Parameters
    ----------
    path:
        The per-run ledger file, typically
        ``ledger_path(cache_dir, run_id)`` inside the fleet's shared
        ``--cache-dir``. Created on first append.
    shard:
        This participant's ``(i, n)`` coordinates — the same pair the
        engine's ``shard=`` argument receives.
    replay:
        False (default) runs the live protocol: publish rounds, wait
        for the co-running shards, claim grants. True *replays* a
        completed ledger deterministically — no records are written,
        no waiting happens; the recorded rounds drive the identical
        grant schedule and every recomputed publication is verified
        against the recorded one.
    poll_interval / timeout:
        Live-mode rendezvous polling cadence and patience (seconds).
        The timeout failure is loud: ledger coordination needs its
        shards *co-running*, and a missing sibling should never
        silently degrade the run into an uncoordinated one.
    takeover:
        True makes this member a *replacement* for its slot
        (``--join``): the hello and every round the previous member
        already sealed are verified like a replay, and the protocol
        goes live at the first unsealed round. Joining a slot whose
        run already finished (``shard-done`` on the ledger) is refused
        loudly. Duplicate appends from a racing zombie member are
        harmless — first occurrence wins, and determinism makes the
        values identical.
    lease:
        Liveness patience in seconds (None disables elastic
        membership). While blocked at a rendezvous, a member whose
        sibling's records stop progressing for longer than ``lease``
        (judged against the observer's own clock — no clock value
        enters the ledger) appends a ``shard-depart`` record naming a
        deterministic adopter, and the ``on_depart`` / ``on_adopt``
        callbacks let the scheduler re-run the vacant slot in-process.
    heartbeat_interval:
        Cadence of this member's ``shard-heartbeat`` beat-counter
        records, written by a daemon thread between ``open_run`` and
        ``close``. Defaults to ``lease / 4`` when a lease is set.
    leave_after:
        Voluntarily depart the fleet instead of publishing this round
        number (``--leave-after``): the scheduler writes the
        ``shard-depart`` record and raises :class:`ShardDeparted`,
        leaving the slot vacant for adoption or a ``--join``
        replacement.
    """

    def __init__(
        self,
        path: str | Path,
        shard: tuple[int, int],
        replay: bool = False,
        poll_interval: float = 0.05,
        timeout: float = 600.0,
        takeover: bool = False,
        lease: float | None = None,
        heartbeat_interval: float | None = None,
        leave_after: int | None = None,
    ) -> None:
        self.path = Path(path)
        self.shard = validate_shard(shard)
        self.replay = replay
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.takeover = takeover
        self.lease = lease
        if heartbeat_interval is None and lease is not None:
            heartbeat_interval = max(lease / 4.0, 0.02)
        self.heartbeat_interval = heartbeat_interval
        self.leave_after = leave_after
        #: Scheduler hooks for elastic membership: ``on_depart(slot,
        #: round)`` observes a recorded departure; ``on_adopt(slot)``
        #: asks the owner to re-run the vacant slot's schedule.
        self.on_depart = None
        self.on_adopt = None
        self._hello: dict | None = None
        self._beat_thread: threading.Thread | None = None
        self._beat_stop: threading.Event | None = None
        #: Liveness bookkeeping: slot -> (progress marker, local time
        #: the marker last changed); adoption/escalation state.
        self._progress: dict[int, tuple[tuple, float]] = {}
        self._adoptions: set[tuple[int, int]] = set()
        self._escalations: dict[tuple[int, int], float] = {}

    @property
    def index(self) -> int:
        return self.shard[0]

    @property
    def count(self) -> int:
        return self.shard[1]

    # -- plumbing ----------------------------------------------------------

    def _record(self, kind: str, **fields) -> dict:
        return {"kind": kind, "shard": self.index, **fields}

    def _scan(self) -> LedgerState:
        return LedgerState.scan(self.path, self.count)

    def _check_hellos(self, state: LedgerState) -> None:
        assert self._hello is not None
        for shard, hello in state.hellos.items():
            if shard == self.index:
                continue
            for key in ("shards", "token", "methods", "reference"):
                if hello.get(key) != self._hello[key]:
                    raise ConfigurationError(
                        f"ledger {self.path} shard {shard} was launched "
                        f"with a different configuration ({key}: "
                        f"{hello.get(key)!r} vs {self._hello[key]!r}); "
                        "every shard of one fleet must share the exact "
                        "sweep configuration"
                    )

    # -- elastic membership ------------------------------------------------

    def takeover_handle(self, slot: int) -> "BudgetLedger":
        """A replacement member's handle for adopting vacant ``slot``.

        The adopting scheduler (or a ``--join`` process) runs the
        slot's whole deterministic schedule through this handle:
        rounds the departed member already sealed verify like a
        replay; the first unsealed round goes live.
        """
        return BudgetLedger(
            self.path,
            (slot, self.count),
            replay=False,
            poll_interval=self.poll_interval,
            timeout=self.timeout,
            takeover=True,
            lease=self.lease,
            heartbeat_interval=self.heartbeat_interval,
        )

    def _start_heartbeat(self) -> None:
        if (
            self.replay
            or self.heartbeat_interval is None
            or self._beat_thread is not None
        ):
            return
        self._beat_stop = threading.Event()

        def beat_loop() -> None:
            beat = 0
            while True:
                try:
                    append_record(
                        self.path,
                        self._record(SHARD_HEARTBEAT, beat=beat),
                    )
                except OSError:  # pragma: no cover - liveness only
                    pass  # next beat retries; correctness unaffected
                beat += 1
                if self._beat_stop.wait(self.heartbeat_interval):
                    return

        self._beat_thread = threading.Thread(
            target=beat_loop,
            name=f"ledger-heartbeat-{self.index}",
            daemon=True,
        )
        self._beat_thread.start()

    def stop_heartbeat(self) -> None:
        """Stop the heartbeat thread (idempotent; called on any exit)."""
        if self._beat_stop is not None:
            self._beat_stop.set()
        if self._beat_thread is not None:
            self._beat_thread.join(timeout=5.0)
            self._beat_thread = None

    def depart(
        self,
        number: int,
        target: int | None = None,
        reason: str = "leave",
        adopter: int | None = None,
    ) -> None:
        """Append a ``shard-depart`` membership record (idempotent).

        ``target`` defaults to this member's own slot (a voluntary
        leave); a survivor passes the presumed-dead sibling's slot.
        ``number`` is the first round the departing member will not
        seal. The record's ``generation`` pins it to the slot's
        current member, so a later rejoin is never retro-departed by a
        stale record (duplicate generations are first-wins rejected).
        """
        if self.replay:
            return
        state = self._scan()
        slot = self.index if target is None else target
        if state.departed(slot):
            return
        append_record(
            self.path,
            {
                "kind": SHARD_DEPART,
                "shard": slot,
                "by": self.index,
                "round": number,
                "generation": state.generation(slot),
                "adopter": adopter,
                "reason": reason,
            },
        )

    def _lease_check(self, state: LedgerState, number: int, unit: int) -> None:
        """One liveness pass while blocked at a rendezvous.

        Updates per-slot progress markers (record counts + heartbeat
        beats + join generation), departs siblings whose lease
        expired, and triggers adoption of vacant blocking slots. The
        adopter named in the depart record adopts immediately; every
        other observer escalates — adopts anyway — if the round stays
        blocked a full extra lease, so a dead adopter cannot strand
        the fleet. Over-adoption is safe (identical bits, first-wins
        records); under-adoption is the only failure mode.
        """
        # repro: allow[D101] liveness judgment only: observers compare
        # their own clock against ledger progress; no clock value is
        # written to the ledger or reaches any number downstream
        now = time.monotonic()
        for slot in range(self.count):
            marker = (
                state.record_counts.get(slot, 0),
                state.heartbeats.get(slot, -1),
                state.generation(slot),
            )
            previous = self._progress.get(slot)
            if previous is None or previous[0] != marker:
                self._progress[slot] = (marker, now)
        blocked = state.blocking(number, unit)
        if blocked is None:
            return
        round_blocked, missing = blocked
        fresh = {self.index}
        for slot in range(self.count):
            seen_at = self._progress[slot][1]
            if now - seen_at < self.lease and not state.departed(slot):
                fresh.add(slot)
        for slot in missing:
            if slot == self.index:
                continue
            if not state.departed(slot):
                if now - self._progress[slot][1] < self.lease:
                    continue
                candidates = sorted(fresh - {slot})
                adopter = candidates[0] if candidates else self.index
                self.depart(
                    round_blocked,
                    target=slot,
                    reason="lease-expired",
                    adopter=adopter,
                )
                state = self._scan()
                if self.on_depart is not None:
                    self.on_depart(slot, round_blocked)
            event = state.depart_event(slot)
            if event is None:
                continue
            key = (slot, state.generation(slot))
            if key in self._adoptions:
                continue
            adopter = event.get("adopter")
            if adopter is None:
                # Voluntary leaves name no adopter: the lowest fresh
                # survivor is the canonical choice every observer
                # derives identically.
                candidates = sorted(fresh - {slot})
                adopter = candidates[0] if candidates else self.index
            if adopter == self.index:
                self._adoptions.add(key)
                if self.on_adopt is not None:
                    self.on_adopt(slot)
                continue
            # Somebody else was assigned; give them one lease, then
            # adopt anyway rather than strand the round.
            deadline = self._escalations.setdefault(
                key, now + self.lease
            )
            if now >= deadline:
                self._adoptions.add(key)
                if self.on_adopt is not None:
                    self.on_adopt(slot)

    # -- protocol ----------------------------------------------------------

    def open_run(
        self, token: str, methods: Sequence[str], reference: str
    ) -> None:
        """Join the fleet: write (or, replaying, verify) the hello."""
        self._hello = {
            "schema": LEDGER_SCHEMA,
            "shards": self.count,
            "token": token,
            "methods": list(methods),
            "reference": reference,
        }
        state = self._scan()
        recorded = state.hellos.get(self.index)
        if self.replay:
            if recorded is None:
                raise ConfigurationError(
                    f"ledger {self.path} has no shard-hello for shard "
                    f"{self.index}/{self.count}; nothing to replay"
                )
            for key, value in self._hello.items():
                if recorded.get(key) != value:
                    raise ConfigurationError(
                        f"ledger {self.path} was produced by a different "
                        f"configuration ({key}: {recorded.get(key)!r} vs "
                        f"{value!r}); refusing to replay"
                    )
            self._check_hellos(state)
            return
        if self.takeover:
            self._open_takeover(state, recorded)
            self._start_heartbeat()
            return
        if recorded is not None:
            raise ConfigurationError(
                f"ledger {self.path} already has records for shard "
                f"{self.index}/{self.count}; each live fleet run needs a "
                "fresh run id (replaying a finished ledger is "
                "replay=True / --ledger-replay; taking over a departed "
                "member's slot mid-run is takeover=True / --join)"
            )
        self._check_hellos(state)
        append_record(
            self.path, self._record(SHARD_HELLO, **self._hello)
        )
        self._start_heartbeat()

    def _open_takeover(
        self, state: LedgerState, recorded: dict | None
    ) -> None:
        """Join a running fleet by taking over this handle's slot.

        A finished run is refused loudly (nothing left to join); an
        in-flight run gets a ``shard-join`` membership record and the
        new member replays the slot's already-sealed rounds before
        going live at the first unsealed one.
        """
        if self.index in state.done or (
            state.hellos and len(state.done) >= len(state.hellos)
        ):
            done_round = state.done.get(self.index)
            detail = (
                f"slot {self.index} closed at round {done_round}"
                if done_round is not None
                else f"all {len(state.done)} member(s) closed"
            )
            raise ConfigurationError(
                f"ledger {self.path} records a finished run ({detail}); "
                f"refusing to join shard {self.index}/{self.count} — a "
                "finished ledger is reproduced with --ledger-replay, "
                "not joined"
            )
        if recorded is None:
            # The slot never said hello (its member died before its
            # first record, or never launched): the joiner co-starts
            # it fresh. No membership record — epoch 0 covers it.
            self._check_hellos(state)
            append_record(
                self.path, self._record(SHARD_HELLO, **self._hello)
            )
            return
        for key, value in self._hello.items():
            if recorded.get(key) != value:
                raise ConfigurationError(
                    f"ledger {self.path} slot {self.index} was launched "
                    f"with a different configuration ({key}: "
                    f"{recorded.get(key)!r} vs {value!r}); a joining "
                    "member must share the exact sweep configuration"
                )
        self._check_hellos(state)
        sealed_rounds = 0
        while state.sealed(self.index, sealed_rounds):
            sealed_rounds += 1
        append_record(
            self.path,
            self._record(
                SHARD_JOIN,
                generation=state.generation(self.index) + 1,
                round=sealed_rounds,
            ),
        )

    def publish_round(
        self,
        number: int,
        freed: int,
        opens: Sequence[tuple[int, float, int]],
        converged: Sequence[tuple[int, int]],
    ) -> None:
        """Publish (or verify, replaying) this shard's round block.

        ``opens`` are ``(global index, deficit, trials)`` for every
        still-open point; ``converged`` are ``(global index, trials)``
        for points finalized since the previous round. The sealing
        ``shard-barrier`` is written last.
        """
        if self.replay:
            state = self._scan()
            if not state.sealed(self.index, number):
                raise EstimationError(
                    f"ledger {self.path} has no sealed round {number} "
                    f"for shard {self.index}; the live run ended (or "
                    "crashed) earlier — cannot replay past it"
                )
            self._verify_round(state, number, freed, opens)
            return
        if self.takeover:
            state = self._scan()
            if state.sealed(self.index, number):
                # Predecessor sealed this round: verify instead of
                # re-publishing, exactly like a replay.
                self._verify_round(state, number, freed, opens)
                return
            # First unsealed round: go live. The predecessor may have
            # written part of this block before dying; re-appending is
            # safe because first-occurrence-wins dedup keeps its
            # records and determinism makes ours identical anyway.
        for index, trials in converged:
            append_record(
                self.path,
                self._record(
                    POINT_CONVERGED,
                    round=number,
                    index=index,
                    trials=trials,
                ),
            )
        for index, deficit, trials in opens:
            append_record(
                self.path,
                self._record(
                    POINT_OPEN,
                    round=number,
                    index=index,
                    deficit=deficit,
                    trials=trials,
                ),
            )
        append_record(
            self.path,
            self._record(BUDGET_FREED, round=number, trials=freed),
        )
        append_record(
            self.path,
            self._record(
                SHARD_BARRIER, round=number, freed=freed, opens=len(opens)
            ),
        )

    def _verify_round(
        self,
        state: LedgerState,
        number: int,
        freed: int,
        opens: Sequence[tuple[int, float, int]],
    ) -> None:
        """Check a recomputed round block against its sealed recording."""
        entry = state.rounds[(self.index, number)]
        recorded_opens = sorted(
            (index, deficit) for index, deficit, _t in entry.opens
        )
        computed_opens = sorted(
            (index, deficit) for index, deficit, _t in opens
        )
        if entry.freed != freed or recorded_opens != computed_opens:
            raise EstimationError(
                f"replay diverged from ledger {self.path} at shard "
                f"{self.index} round {number}: recorded "
                f"(freed={entry.freed}, opens={recorded_opens}) vs "
                f"recomputed (freed={freed}, opens={computed_opens})"
                " — the configuration does not match the recording"
            )

    def rendezvous(self, number: int, unit: int) -> dict[int, list[int]]:
        """Round ``number``'s fleet-wide grants (waiting live, not replaying).

        Returns ``global point index -> extension chunk sizes`` for
        the *whole fleet*; callers apply the subset they own. Raises
        :class:`~repro.errors.EstimationError` when the co-running
        shards do not seal the round within ``timeout`` seconds.
        """
        if self.replay:
            grants = self._scan().allocation(number, unit)
            if grants is None:
                raise EstimationError(
                    f"ledger {self.path} is incomplete at round {number} "
                    "(a live shard crashed mid-fleet?); cannot replay"
                )
            return grants
        # repro: allow[D101] liveness timeout only; no clock value ever
        # enters a ledger record, an allocation, or a result
        deadline = time.monotonic() + self.timeout
        # Exponential backoff from poll_interval up to ~1s: a shard
        # waiting out a slow sibling's long initial sweep should not
        # hammer the (possibly shared/network) directory at full rate,
        # but short waits stay responsive.
        interval = self.poll_interval
        while True:
            state = self._scan()
            self._check_hellos(state)
            grants = state.allocation(number, unit)
            if grants is not None:
                return grants
            if self.lease is not None:
                self._lease_check(state, number, unit)
            # repro: allow[D101] same liveness deadline as above; the
            # rendezvous outcome depends only on ledger contents
            if time.monotonic() >= deadline:
                blocked = state.blocking(number, unit)
                if blocked is None:
                    who = "the fleet"  # pragma: no cover - raced a seal
                else:
                    blocked_round, missing = blocked
                    who = (
                        f"shard(s) {', '.join(map(str, missing))} to seal "
                        f"round {blocked_round}"
                    )
                raise EstimationError(
                    f"ledger rendezvous timed out after {self.timeout}s "
                    f"waiting for {who} (round {number} of {self.path}, "
                    f"membership epoch {state.epoch()}); budget-"
                    "ledger coordination needs every shard of the fleet "
                    "co-running against the same ledger file (a slower "
                    "fleet needs a larger timeout: BudgetLedger(..., "
                    "timeout=...) / --ledger-timeout; a fleet that should "
                    "survive member loss needs a lease: --ledger-lease)"
                )
            # repro: allow[D101] poll pacing; sleeping changes when the
            # ledger is re-scanned, never what the scan computes
            time.sleep(interval)
            interval = min(max(1.0, self.poll_interval), interval * 2)

    def record_claims(
        self, number: int, grants: Mapping[int, Sequence[int]]
    ) -> None:
        """Audit-record (or verify, replaying) this shard's applied grants."""
        if self.replay:
            state = self._scan()
            for index, sizes in grants.items():
                recorded = state.claims.get((self.index, number, index))
                if recorded is not None and recorded != sum(sizes):
                    raise EstimationError(
                        f"replay diverged from ledger {self.path}: shard "
                        f"{self.index} round {number} point {index} "
                        f"claimed {recorded} trials in the recording but "
                        f"{sum(sizes)} on replay"
                    )
            return
        for index in sorted(grants):
            sizes = list(grants[index])
            append_record(
                self.path,
                self._record(
                    BUDGET_CLAIMED,
                    round=number,
                    index=index,
                    trials=sum(sizes),
                    chunks=len(sizes),
                ),
            )

    def close(
        self, number: int, converged: Sequence[tuple[int, int]] = ()
    ) -> None:
        """Leave the fleet after round ``number`` (audit records only)."""
        self.stop_heartbeat()
        if self.replay:
            return
        for index, trials in converged:
            append_record(
                self.path,
                self._record(
                    POINT_CONVERGED,
                    round=number,
                    index=index,
                    trials=trials,
                ),
            )
        append_record(self.path, self._record(SHARD_DONE, round=number))

    def audit(self) -> dict[str, int]:
        """Fleet-wide totals scanned from the ledger file."""
        totals = self._scan().totals()
        if totals["claimed_trials"] > totals["freed_trials"]:
            raise EstimationError(
                f"ledger {self.path} violates budget conservation: "
                f"{totals['claimed_trials']} trials claimed of "
                f"{totals['freed_trials']} freed"
            )
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "replay" if self.replay else "live"
        return (
            f"BudgetLedger({str(self.path)!r}, shard="
            f"{self.index}/{self.count}, {mode})"
        )
