"""Uncore/ECC-aware MTTF estimation (after Cho et al.'s uncore SER study).

The uncore soft-error work of Cho et al. ("Understanding Soft Errors in
Uncore Components", DAC'15) observes that raw SER is the wrong failure
currency for protected structures: most strikes in an ECC-protected
array are *corrected* in place, most strikes in a parity-protected
queue are *detected* and recovered by a pipeline/checkpoint flush, and
only the residual slice becomes silent data corruption (SDC). An
architecture-level MTTF estimate should therefore partition each
component's raw rate into corrected / detected-recoverable / SDC and
drive the failure process with the SDC residue alone.

:func:`uncore_ecc` applies exactly that partition on top of this
repository's system model: every component's raw rate is classified by
its protection class (keyword-matched from the component name — caches
and register files carry SEC-DED ECC, queues and buffers carry parity
with flush recovery, unlabeled logic is unprotected), the rate is
scaled by the class's SDC fraction, and the exact renewal MTTF of the
rescaled system is returned. Masking profiles still apply — protection
composes with architectural masking, it does not replace it.

Registered as ``uncore_ecc`` — the registry's first post-seed method:
usable from ``repro.analyze``, ``evaluate_design_space`` and the CLI's
``--method uncore_ecc`` with no other code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.firstprinciples import first_principles_mttf
from ..core.system import Component, SystemModel
from ..reliability.metrics import MTTFEstimate
from .base import MethodConfig
from .registry import register_method


@dataclass(frozen=True)
class EccProtection:
    """Raw-SER partition of one protection class.

    ``corrected`` errors vanish (ECC corrects in place), ``detected``
    errors are caught and recovered by a flush/checkpoint (a
    detectable-unrecoverable-turned-recoverable event — availability
    cost, not data loss), and the remainder — the SDC fraction — is
    what can actually fail the system silently.
    """

    label: str
    corrected: float
    detected: float

    def __post_init__(self) -> None:
        for name in ("corrected", "detected"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.corrected + self.detected > 1.0:
            raise ValueError(
                f"{self.label}: corrected + detected exceeds 1"
            )

    @property
    def sdc_fraction(self) -> float:
        """The raw-rate fraction that survives as silent corruption."""
        return 1.0 - self.corrected - self.detected


#: Protection classes with Cho et al.-style partitions: SEC-DED ECC
#: corrects single-bit upsets (the overwhelming majority) and detects
#: most double-bit ones; parity detects but cannot correct, so detected
#: events become recoverable flushes; bare logic passes everything
#: through as potential SDC.
PROTECTION_CLASSES: dict[str, EccProtection] = {
    "ecc": EccProtection("sec-ded ecc", corrected=0.990, detected=0.009),
    "parity": EccProtection("parity + flush", corrected=0.0, detected=0.95),
    "none": EccProtection("unprotected", corrected=0.0, detected=0.0),
}

#: Component-name keywords mapped to protection classes. ECC wins over
#: parity when both match (arrays named "store_buffer_cache" etc.).
_ECC_KEYWORDS = (
    "cache", "register", "regfile", "memory", "dram", "sram", "l2", "l3",
    "directory", "tag",
)
_PARITY_KEYWORDS = ("queue", "buffer", "fifo", "link", "bus", "tlb")


def protection_for(component_name: str) -> EccProtection:
    """The protection class a component's name implies."""
    lowered = component_name.lower()
    if any(keyword in lowered for keyword in _ECC_KEYWORDS):
        return PROTECTION_CLASSES["ecc"]
    if any(keyword in lowered for keyword in _PARITY_KEYWORDS):
        return PROTECTION_CLASSES["parity"]
    return PROTECTION_CLASSES["none"]


@dataclass(frozen=True)
class ComponentSerPartition:
    """One component's raw SER split into its Cho-style destinations."""

    name: str
    protection: str
    raw_rate_per_second: float
    corrected_rate: float
    flush_rate: float
    sdc_rate: float


def uncore_partition(system: SystemModel) -> list[ComponentSerPartition]:
    """Per-component raw-SER partition (the audit behind the estimate)."""
    partitions = []
    for component in system.components:
        protection = protection_for(component.name)
        raw = component.rate_per_second
        partitions.append(
            ComponentSerPartition(
                name=component.name,
                protection=protection.label,
                raw_rate_per_second=raw,
                corrected_rate=raw * protection.corrected,
                flush_rate=raw * protection.detected,
                sdc_rate=raw * protection.sdc_fraction,
            )
        )
    return partitions


def _sdc_system(system: SystemModel) -> SystemModel:
    """The system whose raw rates are each component's SDC residue."""
    return SystemModel(
        [
            replace(
                component,
                rate_per_second=component.rate_per_second
                * protection_for(component.name).sdc_fraction,
            )
            for component in system.components
        ]
    )


@register_method("uncore_ecc", per_component=True)
def uncore_ecc(system: SystemModel, config: MethodConfig) -> MTTFEstimate:
    """ECC/flush/SDC-partitioned MTTF over per-component raw SER.

    Exact renewal MTTF of the SDC-residue system: protection first
    (the Cho et al. partition), architectural masking second (the
    profile), renewal theory last — no AVF/SOFR assumptions.
    """
    estimate = first_principles_mttf(_sdc_system(system))
    return replace(estimate, method="uncore_ecc")
