"""Per-point progress events emitted by the batch engine.

The streaming engine (:func:`repro.methods.batch.evaluate_design_space`)
reports its work through a caller-supplied callback so long sweeps are
observable while they run — which grid point is being estimated, how
many trial chunks have merged, the precision reached so far, and
whether an adaptive run stopped early. The CLI's progress reporter
(:mod:`repro.harness.runner`) is one consumer; tests and notebook
monitors are others.

Events are plain frozen dataclasses; the callback runs inline on
whichever thread finishes the work, so consumers should be cheap and
thread-safe (printing is — the engine never emits two events for one
point concurrently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: Event kinds, in lifecycle order for one grid point.
POINT_START = "point-start"
CHUNK_MERGED = "chunk"
POINT_DONE = "point-done"


@dataclass(frozen=True)
class ProgressEvent:
    """One observation of the engine's work on one grid point.

    Attributes
    ----------
    label:
        The grid point's system label.
    kind:
        ``"point-start"`` (reference estimation begins),
        ``"chunk"`` (one more trial chunk folded into the running
        moments), or ``"point-done"`` (reference estimate final).
    merged_chunks / total_chunks:
        Streaming position within the point's chunk plan. ``0/0`` for
        unchunked or non-stochastic references.
    trials:
        Trials merged so far (the final trial count on ``point-done``).
    rel_stderr:
        Achieved relative standard error of the running estimate, or
        ``None`` while undefined (no finite moments yet).
    stopped_early:
        On ``point-done``: True when a stopping rule ended the point
        before its full chunk plan.
    cached:
        On ``point-done``: True when the estimate came from the cache
        and no sampling ran at all.
    """

    label: str
    kind: str
    merged_chunks: int = 0
    total_chunks: int = 0
    trials: int = 0
    rel_stderr: float | None = None
    stopped_early: bool = False
    cached: bool = False


#: The callback shape ``evaluate_design_space(progress=...)`` accepts.
ProgressCallback = Callable[[ProgressEvent], None]


def relative_stderr(moments) -> float | None:
    """Achieved relative standard error of merged chunk moments."""
    if moments is None:
        return None
    return moments.rel_stderr
