"""Per-point progress events emitted by the batch engine.

The streaming engine (:func:`repro.methods.batch.evaluate_design_space`)
reports its work through a caller-supplied callback so long sweeps are
observable while they run — which grid point is being estimated, how
many trial chunks have merged, the precision reached so far, whether an
adaptive run stopped early, when a method estimate was pipelined into
the stream, and where re-allocated trial budget went. The CLI's
progress reporter (:mod:`repro.harness.runner`) is one consumer; tests
and notebook monitors are others.

Event vocabulary
----------------

Every event the engine can emit carries one of these ``kind`` strings
(the module-level constants; ``docs/SCHEDULER.md`` and DESIGN.md carry
the same table):

``"point-start"``
    Reference estimation of one grid point begins. Carries
    ``total_chunks`` when the reference runs as a streamed chunk plan.
``"chunk"``
    One more reference trial chunk folded into the point's running
    moments. Carries ``merged_chunks``/``total_chunks``, ``trials``,
    and the achieved ``rel_stderr``.
``"point-done"``
    The point's reference estimate is final. Carries the final
    ``trials``; ``stopped_early`` when a stopping rule ended the point
    before its full chunk plan; ``cached`` when the estimate replayed
    from the cache and no sampling ran.
``"method-start"`` / ``"method-done"``
    One pipelined method estimate entered / left the worker pool
    (``pipeline_methods=True``). Carry ``method``; done additionally
    carries ``trials`` and ``cached``. Cached method estimates emit
    only ``"method-done"``.
``"budget-reallocated"``
    Freed trial budget was re-granted to this point at a quiescent
    barrier by *shard-local* re-allocation (``reallocate_budget=True``
    without a ledger). Carries ``granted_trials``/``granted_chunks``
    plus the point's running chunk position and precision.
``"budget-claimed"``
    Same grant, but funded through the *cross-shard budget ledger*
    (``budget_ledger=...``): the trials may have been freed by a
    co-running shard. Field shape is identical to
    ``"budget-reallocated"``; only the funding pool differs.
``"prewarm"``
    The one-shot disk-cache prewarm a sharded sweep performs before
    scheduling any work. Run-level label; carries ``warmed_entries``.
``"shard-departed"``
    A ledger-fleet member left mid-run — voluntarily (``--leave-after``)
    or declared dead by lease expiry — and its slot's open points await
    adoption. Run-level label; carries ``shard`` (the vacant slot) and
    ``round`` (the first round the departed member will not seal).
``"shard-adopted"``
    This member adopted a vacant slot: it re-runs the departed
    member's deterministic schedule (verifying sealed rounds, sealing
    the rest) so the fleet's merged bits match the static-fleet run.
    Run-level label; carries ``shard`` (the adopted slot).

Ordering guarantees
-------------------

Per grid point the lifecycle order is ``point-start`` -> (``chunk`` |
``budget-reallocated`` | ``budget-claimed``)* -> ``point-done`` ->
(``method-start`` -> ``method-done``)*; ``merged_chunks`` and
``trials`` are non-decreasing along it, and no two events for one
point are ever emitted concurrently. *Across* points the interleaving
follows the schedule (and so may vary with workers and executors) —
only the per-point order and a run-initial ``prewarm`` (when a disk
cache is attached to the pipelined scheduler) are contractual. Events
report the engine's deterministic fold state, so the *numbers* carried
by each point's event sequence are bit-identical across worker counts
and executors even though the global interleaving is not.

Events are plain frozen dataclasses; the callback runs inline on
whichever thread finishes the work, so consumers should be cheap and
thread-safe (printing is — the engine never emits two events for one
point concurrently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: Event kinds, in lifecycle order for one grid point.
POINT_START = "point-start"
CHUNK_MERGED = "chunk"
POINT_DONE = "point-done"

#: Pipelined-scheduler events: one method estimate entering/leaving the
#: pool, trial budget re-allocated to a straggler, and the one-shot
#: disk-cache prewarm a sharded sweep performs before scheduling work.
METHOD_STARTED = "method-start"
METHOD_DONE = "method-done"
BUDGET_REALLOCATED = "budget-reallocated"
CACHE_PREWARMED = "prewarm"

#: Cross-shard ledger event: budget freed somewhere in the fleet was
#: claimed for this point through the shared ledger file.
BUDGET_CLAIMED = "budget-claimed"

#: Elastic-membership events: a fleet member departed mid-run (crash,
#: lease expiry, or --leave-after) and a survivor adopted its slot.
SHARD_DEPARTED = "shard-departed"
SHARD_ADOPTED = "shard-adopted"


@dataclass(frozen=True)
class ProgressEvent:
    """One observation of the engine's work on one grid point.

    Attributes
    ----------
    label:
        The grid point's system label (sweep-wide events such as
        ``"prewarm"`` use a run-level label instead).
    kind:
        One of the event-vocabulary strings above:
        ``"point-start"`` (reference estimation begins),
        ``"chunk"`` (one more trial chunk folded into the running
        moments), ``"point-done"`` (reference estimate final),
        ``"method-start"`` / ``"method-done"`` (one pipelined method
        estimate entered / left the pool),
        ``"budget-reallocated"`` (shard-local freed budget granted to
        this point), ``"budget-claimed"`` (cross-shard ledger budget
        granted to this point), ``"prewarm"`` (shard-aware
        disk-cache prewarm completed before scheduling),
        ``"shard-departed"`` (a fleet member left mid-run and its
        slot awaits adoption), or ``"shard-adopted"`` (this member
        adopted a vacant slot's schedule).
    merged_chunks / total_chunks:
        Streaming position within the point's chunk plan. ``0/0`` for
        unchunked or non-stochastic references. ``merged_chunks`` is
        always the accumulator's *fold* count — chunks whose futures
        were cancelled (or arrived after the point finalized) are never
        counted.
    trials:
        Trials merged so far (the final trial count on ``point-done``;
        the estimate's trial count on ``method-done``).
    rel_stderr:
        Achieved relative standard error of the running estimate, or
        ``None`` while undefined (no finite moments yet).
    stopped_early:
        On ``point-done``: True when a stopping rule ended the point
        before its full chunk plan.
    cached:
        On ``point-done`` / ``method-done``: True when the estimate
        came from the cache and no sampling ran at all.
    method:
        On ``method-start`` / ``method-done``: the method name.
    granted_trials / granted_chunks:
        On ``budget-reallocated`` / ``budget-claimed``: how much freed
        budget this point received, in trials and in extension chunks.
    warmed_entries:
        On ``prewarm``: disk entries pulled into the in-memory cache
        before any work was scheduled.
    shard / round:
        On ``shard-departed`` / ``shard-adopted``: the fleet slot that
        changed hands and (departed only) the first round its old
        member will not seal.
    """

    label: str
    kind: str
    merged_chunks: int = 0
    total_chunks: int = 0
    trials: int = 0
    rel_stderr: float | None = None
    stopped_early: bool = False
    cached: bool = False
    method: str | None = None
    granted_trials: int = 0
    granted_chunks: int = 0
    warmed_entries: int = 0
    shard: int | None = None
    round: int | None = None

    def to_dict(self) -> dict:
        """Compact plain-dict wire form — the analysis service's SSE payload.

        ``label`` and ``kind`` are always present; every other field is
        included only when it differs from its default, so a ``chunk``
        event serializes to a handful of keys instead of twelve. The
        round trip is lossless (``from_dict(to_dict(e)) == e``), and
        the key set is exactly the dataclass field set — a consistency
        test pins the two together so the SSE schema cannot drift from
        the documented event vocabulary.
        """
        data = {"label": self.label, "kind": self.kind}
        for name, default in (
            ("merged_chunks", 0),
            ("total_chunks", 0),
            ("trials", 0),
            ("rel_stderr", None),
            ("stopped_early", False),
            ("cached", False),
            ("method", None),
            ("granted_trials", 0),
            ("granted_chunks", 0),
            ("warmed_entries", 0),
            ("shard", None),
            ("round", None),
        ):
            value = getattr(self, name)
            if value != default:
                data[name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ProgressEvent":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        payload = dict(data)
        try:
            label = str(payload.pop("label"))
            kind = str(payload.pop("kind"))
        except KeyError as missing:
            raise ValueError(
                f"progress-event wire form is missing {missing}"
            ) from None
        allowed = {
            "merged_chunks", "total_chunks", "trials", "rel_stderr",
            "stopped_early", "cached", "method", "granted_trials",
            "granted_chunks", "warmed_entries", "shard", "round",
        }
        unknown = set(payload) - allowed
        if unknown:
            raise ValueError(
                f"unknown progress-event fields {sorted(unknown)}"
            )
        return cls(label=label, kind=kind, **payload)


#: The callback shape ``evaluate_design_space(progress=...)`` accepts.
ProgressCallback = Callable[[ProgressEvent], None]


def relative_stderr(moments) -> float | None:
    """Achieved relative standard error of merged chunk moments."""
    if moments is None:
        return None
    return moments.rel_stderr
