"""Component raw error rates.

Two parameterisations appear in the paper:

* **Unit rates** (Section 4.1): absolute raw rates for four POWER4-like
  processor components, derived by Li et al. [DSN'05] from device-level
  measurements — integer unit 2.3e-6, floating-point unit 4.5e-6,
  instruction-decode unit 3.3e-6, and 256-entry register file 1.0e-4
  errors/year.
* **N x S rates** (Section 4.2, Table 2): ``rate = N * S * baseline``
  with baseline 1e-8 errors/year per element, N the element count and S
  the technology/altitude scaling factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import BASELINE_RATE_PER_BIT_YEAR, per_year_to_per_second

#: Section 4.1 unit raw error rates, errors/year.
PAPER_UNIT_RATES_PER_YEAR: dict[str, float] = {
    "int_unit": 2.3e-6,
    "fp_unit": 4.5e-6,
    "decode_unit": 3.3e-6,
    "register_file": 1.0e-4,
}


def paper_unit_rate_per_second(component: str) -> float:
    """Raw rate (errors/second) for one of the paper's four components."""
    if component not in PAPER_UNIT_RATES_PER_YEAR:
        raise ConfigurationError(
            f"unknown component {component!r}; "
            f"have {sorted(PAPER_UNIT_RATES_PER_YEAR)}"
        )
    return per_year_to_per_second(PAPER_UNIT_RATES_PER_YEAR[component])


def component_rate_per_second(
    n_elements: float,
    scaling: float = 1.0,
    baseline_per_year: float = BASELINE_RATE_PER_BIT_YEAR,
) -> float:
    """Table-2 component raw rate: ``N * S * baseline`` in errors/second."""
    if n_elements <= 0:
        raise ConfigurationError(
            f"element count must be positive, got {n_elements}"
        )
    if scaling <= 0:
        raise ConfigurationError(
            f"scaling factor must be positive, got {scaling}"
        )
    if baseline_per_year <= 0:
        raise ConfigurationError(
            f"baseline rate must be positive, got {baseline_per_year}"
        )
    return per_year_to_per_second(n_elements * scaling * baseline_per_year)


@dataclass(frozen=True)
class ComponentErrorModel:
    """A named component with an N x S raw error rate.

    Attributes
    ----------
    name:
        Component label for reports.
    n_elements:
        Number of elements (bits of storage or logic devices), the
        paper's N. Up to ~1e9 for large caches or whole processors.
    scaling:
        Technology/altitude scaling, the paper's S (1 terrestrial up to
        5000 for space / accelerated test).
    baseline_per_year:
        Per-element raw rate at S = 1, errors/year.
    """

    name: str
    n_elements: float
    scaling: float = 1.0
    baseline_per_year: float = BASELINE_RATE_PER_BIT_YEAR

    def __post_init__(self) -> None:
        # Validation is delegated so the dataclass stays usable in sets.
        component_rate_per_second(
            self.n_elements, self.scaling, self.baseline_per_year
        )

    @property
    def n_times_s(self) -> float:
        """The paper's headline parameter ``N x S``."""
        return self.n_elements * self.scaling

    @property
    def rate_per_year(self) -> float:
        return self.n_elements * self.scaling * self.baseline_per_year

    @property
    def rate_per_second(self) -> float:
        return component_rate_per_second(
            self.n_elements, self.scaling, self.baseline_per_year
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: N={self.n_elements:g}, S={self.scaling:g} "
            f"-> {self.rate_per_year:g} errors/year"
        )


def cache_bits(megabytes: float) -> float:
    """Bits in a cache of the given size in MB (binary mebibytes).

    The paper's Figure 3 example is a "100MB cache"; 100 MB = 8.389e8
    bits, which matches the paper's "10 errors/year for the full cache"
    at the baseline per-bit rate (rounded).
    """
    if megabytes <= 0:
        raise ConfigurationError(f"size must be positive, got {megabytes}")
    return megabytes * 1024.0 * 1024.0 * 8.0
