"""Radiation environment presets.

The paper's S factor (Table 2) scales the baseline terrestrial raw error
rate for technology and altitude: "The larger factors correspond to
systems running in airplanes flying at a high altitude and for systems in
outer space ... Test systems using accelerated conditions are also
subject to high raw error rates." These presets name the Table-2 values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Environment:
    """A named radiation environment with its rate-scaling factor."""

    name: str
    scaling: float
    description: str

    def __post_init__(self) -> None:
        if self.scaling <= 0:
            raise ConfigurationError(
                f"scaling must be positive, got {self.scaling}"
            )


#: The Table-2 scaling factors with representative environment names.
ENVIRONMENTS: dict[str, Environment] = {
    env.name: env
    for env in (
        Environment(
            "terrestrial", 1.0, "sea-level ground operation, current technology"
        ),
        Environment(
            "scaled_technology",
            5.0,
            "future technology node / moderate altitude",
        ),
        Environment(
            "avionics", 100.0, "commercial flight altitude (~12 km)"
        ),
        Environment("space", 2000.0, "outer-space radiation environment"),
        Environment(
            "accelerated_test",
            5000.0,
            "accelerated-beam test conditions",
        ),
    )
}


def environment(name: str) -> Environment:
    """Look up an environment preset by name."""
    if name not in ENVIRONMENTS:
        raise ConfigurationError(
            f"unknown environment {name!r}; have {sorted(ENVIRONMENTS)}"
        )
    return ENVIRONMENTS[name]


#: The Table-2 S column, in ascending order.
TABLE2_SCALING_FACTORS: tuple[float, ...] = (1.0, 5.0, 100.0, 2000.0, 5000.0)

#: The Table-2 N column (elements per component).
TABLE2_ELEMENT_COUNTS: tuple[float, ...] = (1e5, 1e6, 1e7, 1e8, 1e9)

#: The Table-2 C column (components per system).
TABLE2_COMPONENT_COUNTS: tuple[int, ...] = (2, 8, 5000, 50000, 500000)
