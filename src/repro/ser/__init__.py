"""Raw soft-error-rate (SER) models.

Provides the paper's raw-rate constants and the Table-2 parameterisation:
a component's raw error rate is ``N x S x baseline``, where ``N`` is the
number of elements (bits / logic devices), ``S`` scales for technology and
altitude, and the baseline is 1e-8 errors/year per element.
"""

from .rates import (
    ComponentErrorModel,
    PAPER_UNIT_RATES_PER_YEAR,
    component_rate_per_second,
    paper_unit_rate_per_second,
)
from .environment import Environment, ENVIRONMENTS

__all__ = [
    "ComponentErrorModel",
    "PAPER_UNIT_RATES_PER_YEAR",
    "component_rate_per_second",
    "paper_unit_rate_per_second",
    "Environment",
    "ENVIRONMENTS",
]
