"""Exponentiality diagnostics for time-to-failure samples.

The SOFR step's central assumption is that each component's time to
failure is exponential (Section 2.3). These diagnostics quantify how far
a sampled (or exact) masked TTF distribution is from exponential:

* coefficient of variation — exactly 1 for an exponential;
* Kolmogorov–Smirnov distance against the exponential fitted by the
  sample mean;
* a combined report used by the validity advisor and the ablation
  benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import EstimationError


def coefficient_of_variation(samples: np.ndarray) -> float:
    """Sample CoV (std / mean). Requires a positive mean."""
    samples = np.asarray(samples, dtype=float)
    if samples.size < 2:
        raise EstimationError("need at least two samples for a CoV")
    mean = samples.mean()
    if mean <= 0:
        raise EstimationError("CoV requires a positive mean")
    return float(samples.std(ddof=1) / mean)


def ks_statistic_exponential(samples: np.ndarray) -> float:
    """KS distance between the empirical CDF and Exp(1/mean).

    The rate is fitted from the sample mean, matching how SOFR would
    summarise the component (a single failure rate = 1/MTTF).
    """
    samples = np.sort(np.asarray(samples, dtype=float))
    if samples.size < 2:
        raise EstimationError("need at least two samples for a KS statistic")
    if np.any(samples < 0):
        raise EstimationError("times to failure must be non-negative")
    mean = samples.mean()
    if mean <= 0:
        raise EstimationError("KS fit requires a positive mean")
    n = samples.size
    cdf = -np.expm1(-samples / mean)
    ecdf_hi = np.arange(1, n + 1) / n
    ecdf_lo = np.arange(0, n) / n
    return float(np.max(np.maximum(np.abs(ecdf_hi - cdf), np.abs(cdf - ecdf_lo))))


@dataclass(frozen=True)
class ExponentialityReport:
    """Summary of how exponential a TTF sample looks."""

    sample_size: int
    mean: float
    coefficient_of_variation: float
    ks_distance: float

    @property
    def looks_exponential(self) -> bool:
        """A pragmatic screen, not a formal hypothesis test.

        CoV within 5% of 1 and KS distance below ~1.5/sqrt(n) (roughly the
        5% Lilliefors band for large n) together indicate the SOFR
        exponentiality assumption is safe for this component.
        """
        band = 1.5 / math.sqrt(self.sample_size)
        return abs(self.coefficient_of_variation - 1.0) < 0.05 and (
            self.ks_distance < band
        )


def exponentiality_report(samples: np.ndarray) -> ExponentialityReport:
    """Build an :class:`ExponentialityReport` from TTF samples."""
    samples = np.asarray(samples, dtype=float)
    finite = samples[np.isfinite(samples)]
    if finite.size < 2:
        raise EstimationError("need at least two finite samples")
    return ExponentialityReport(
        sample_size=int(finite.size),
        mean=float(finite.mean()),
        coefficient_of_variation=coefficient_of_variation(finite),
        ks_distance=ks_statistic_exponential(finite),
    )
