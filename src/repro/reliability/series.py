"""Series (first-failure) systems.

The SOFR step models a system as failing at the first failure of any
component (a series system without redundancy — Section 2.3 assumption 2,
which this library keeps, following the paper). This module provides:

* :func:`sofr_mttf` — the SOFR combination itself (sum of reciprocal
  component MTTFs), i.e. the step under examination;
* :class:`SeriesSystem` — the *exact* series system built by hazard
  superposition: for independent components the first-failure process is
  an inhomogeneous Poisson process whose intensity is the sum of the
  component intensities, so the exact machinery of
  :class:`~repro.reliability.process.FailureProcess` applies unchanged;
* :func:`min_of_iid_mttf` — numerical MTTF of the minimum of ``n`` i.i.d.
  variables given a survival function (used by the Section 3.2.2
  half-normal analysis, Figure 4).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np
from scipy import integrate

from ..errors import ConfigurationError
from .hazard import CyclicIntensity, PiecewiseHazard, merge_piecewise
from .process import FailureProcess


def sofr_mttf(component_mttfs: Sequence[float]) -> float:
    """The SOFR step: ``MTTF_sys = 1 / sum_i (1 / MTTF_i)``.

    Infinite component MTTFs contribute zero failure rate. If every
    component is infinite the system MTTF is infinite.
    """
    if not len(component_mttfs):
        raise ConfigurationError("need at least one component MTTF")
    total_rate = 0.0
    for m in component_mttfs:
        if m <= 0:
            raise ConfigurationError(f"MTTF must be positive, got {m}")
        if math.isinf(m):
            continue
        total_rate += 1.0 / m
    if total_rate == 0.0:
        return math.inf
    return 1.0 / total_rate


class SeriesSystem:
    """Exact series system of independent cyclically masked components.

    Each component contributes a failure intensity (raw rate x
    vulnerability profile). Independent Poisson processes superpose, so
    the system's first-failure process has the summed intensity.

    Components whose intensities are :class:`PiecewiseHazard` instances
    with one common period are merged into a single breakpoint-refined
    hazard; a ``multiplicity`` may be attached to each component to model
    ``C`` identical components (e.g. a homogeneous cluster) without
    enumerating them.
    """

    def __init__(
        self,
        components: Sequence[CyclicIntensity],
        multiplicities: Sequence[int] | None = None,
    ):
        if not components:
            raise ConfigurationError("need at least one component")
        if multiplicities is None:
            multiplicities = [1] * len(components)
        if len(multiplicities) != len(components):
            raise ConfigurationError(
                "multiplicities must match components in length"
            )
        for m in multiplicities:
            if m < 1:
                raise ConfigurationError(f"multiplicity must be >= 1, got {m}")
        self._components = list(components)
        self._multiplicities = list(multiplicities)
        self._combined = self._combine()

    def _combine(self) -> CyclicIntensity:
        scaled = [
            comp.scaled(float(mult)) if mult != 1 else comp
            for comp, mult in zip(self._components, self._multiplicities)
        ]
        if len(scaled) == 1:
            return scaled[0]
        if all(isinstance(c, PiecewiseHazard) for c in scaled):
            return merge_piecewise(scaled)  # type: ignore[arg-type]
        raise ConfigurationError(
            "heterogeneous composition of nested hazards requires a common "
            "piecewise representation; flatten nested hazards first"
        )

    @property
    def combined_intensity(self) -> CyclicIntensity:
        return self._combined

    @property
    def component_count(self) -> int:
        return sum(self._multiplicities)

    def process(self) -> FailureProcess:
        """The exact first-failure process of the whole system."""
        return FailureProcess(self._combined)

    def component_processes(self) -> list[FailureProcess]:
        """Per-component (single-instance) failure processes."""
        return [FailureProcess(c) for c in self._components]

    def mttf(self) -> float:
        """Exact system MTTF from first principles."""
        return self.process().mttf()


def min_of_iid_mttf(
    survival: Callable[[np.ndarray], np.ndarray],
    n: int,
    upper: float = np.inf,
) -> float:
    """MTTF of ``min(X_1..X_n)`` for i.i.d. ``X`` with the given survival.

    Uses ``E[min] = ∫_0^∞ S(t)^n dt`` (valid for non-negative variables),
    evaluated with adaptive quadrature. This is the "first principles"
    side of the paper's Figure 4 analysis.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")

    def integrand(t: float) -> float:
        return float(survival(np.asarray(t))) ** n

    value, _abserr = integrate.quad(integrand, 0.0, upper, limit=200)
    return value
