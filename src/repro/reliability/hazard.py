"""Cyclic inhomogeneous-Poisson hazard machinery.

The paper's whole subject can be phrased in one modelling sentence: raw
soft errors arrive as a Poisson process with rate ``lambda``; architectural
masking discards an arrival at time ``t`` with probability ``1 - v(t)``
where ``v`` is the component's cyclic *vulnerability profile*; thinning a
Poisson process yields an inhomogeneous Poisson **failure** process with
intensity ``lambda * v(t)`` and cumulative hazard ``Lambda(t)``.

Everything downstream (exact first-principles MTTF, fast Monte Carlo,
series systems) needs only four operations on the intensity restricted to
one period:

* ``cumulative(tau)`` — ``Lambda(tau)`` for ``tau`` in ``[0, period]``;
* ``invert(u)``       — ``inf{tau : Lambda(tau) >= u}`` for ``u`` in
  ``(0, mass]`` (``mass = Lambda(period)``);
* ``survival_integral(x)`` — ``∫_0^x exp(-Lambda(tau)) d tau``;
* ``time_weighted_survival_integral(x)`` — ``∫_0^x tau·exp(-Lambda(tau)) d tau``
  (for second moments).

Two concrete intensities are provided:

* :class:`PiecewiseHazard` — piecewise-constant intensity (covers unit
  busy/idle masks and fractional register-liveness profiles);
* :class:`NestedHazard` — an outer cycle whose segments each repeat an
  inner cyclic intensity (covers the paper's ``combined`` workload, where
  a 24-hour loop alternates two SPEC benchmarks whose own masking traces
  repeat billions of times inside each half — far too many breakpoints to
  enumerate, but closed-form via geometric series).

All computations are exact (closed form per segment); there is no
discretisation anywhere in this module.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, ProfileError

_REL_TOL = 1e-9

#: Elementwise libm transcendentals. The vectorised survival integrals
#: must reproduce the scalar per-segment closed forms *bit for bit*;
#: NumPy's SIMD ``exp``/``expm1`` loops differ from libm's in the last
#: ulp on a few percent of inputs, and the weighted closed form
#: amplifies that through cancellation. ``frompyfunc`` keeps the exact
#: ``math.exp``/``math.expm1`` values while everything around them
#: stays array code.
_libm_exp = np.frompyfunc(math.exp, 1, 1)
_libm_expm1 = np.frompyfunc(math.expm1, 1, 1)


class CyclicIntensity(ABC):
    """A non-negative intensity function, cyclic with a finite period."""

    @property
    @abstractmethod
    def period(self) -> float:
        """Length of one cycle (seconds)."""

    @property
    @abstractmethod
    def mass(self) -> float:
        """Cumulative hazard accrued over one full period, ``Lambda(period)``."""

    @abstractmethod
    def cumulative(self, tau):
        """``Lambda(tau)`` for ``tau`` in ``[0, period]`` (vectorised)."""

    @abstractmethod
    def invert(self, u):
        """``inf{tau : Lambda(tau) >= u}`` for ``u`` in ``(0, mass]`` (vectorised)."""

    @abstractmethod
    def survival_integral(self, x: float) -> float:
        """``∫_0^x exp(-Lambda(tau)) d tau`` for ``x`` in ``[0, period]``."""

    @abstractmethod
    def time_weighted_survival_integral(self, x: float) -> float:
        """``∫_0^x tau * exp(-Lambda(tau)) d tau`` for ``x`` in ``[0, period]``."""

    @abstractmethod
    def scaled(self, factor: float) -> "CyclicIntensity":
        """The intensity multiplied pointwise by ``factor`` (>= 0)."""

    # ------------------------------------------------------------------
    # Shared helpers (operate on the infinite cyclic extension).
    # ------------------------------------------------------------------

    def cumulative_extended(self, t):
        """``Lambda(t)`` for any ``t >= 0`` using cyclic extension."""
        t = np.asarray(t, dtype=float)
        if np.any(t < 0):
            raise ProfileError("time must be non-negative")
        k = np.floor(t / self.period)
        rem = t - k * self.period
        # Guard against floating point pushing rem to period + eps.
        rem = np.clip(rem, 0.0, self.period)
        return k * self.mass + self.cumulative(rem)

    def invert_extended(self, u):
        """First time the extended cumulative hazard reaches ``u`` (> 0)."""
        u = np.asarray(u, dtype=float)
        if np.any(u <= 0):
            raise ProfileError("hazard target must be positive")
        if self.mass <= 0:
            return np.full_like(u, np.inf)
        k = np.floor(u / self.mass)
        rem = u - k * self.mass
        # Floating-point guards: an exact multiple of the mass belongs to
        # the previous period, and cancellation in u - k*mass can push
        # rem marginally outside (0, mass].
        under = rem <= 0.0
        k = np.where(under, k - 1, k)
        rem = np.where(under, rem + self.mass, rem)
        over = rem > self.mass
        k = np.where(over, k + 1, k)
        rem = np.where(over, rem - self.mass, rem)
        rem = np.clip(rem, np.finfo(float).smallest_subnormal, self.mass)
        return k * self.period + self.invert(rem)


def _validate_breakpoints(breakpoints: np.ndarray) -> None:
    if breakpoints.ndim != 1 or breakpoints.size < 2:
        raise ProfileError("need at least two breakpoints (one segment)")
    if breakpoints[0] != 0.0:
        raise ProfileError("breakpoints must start at 0")
    if not np.all(np.diff(breakpoints) > 0):
        raise ProfileError("breakpoints must be strictly increasing")


class PiecewiseHazard(CyclicIntensity):
    """Piecewise-constant cyclic intensity.

    Parameters
    ----------
    breakpoints:
        Array of shape ``(m+1,)``; ``breakpoints[0] == 0`` and
        ``breakpoints[-1]`` is the period. Strictly increasing.
    rates:
        Array of shape ``(m,)``; ``rates[j] >= 0`` is the intensity on
        ``[breakpoints[j], breakpoints[j+1])``.
    """

    def __init__(self, breakpoints: Sequence[float], rates: Sequence[float]):
        bp = np.asarray(breakpoints, dtype=float)
        r = np.asarray(rates, dtype=float)
        _validate_breakpoints(bp)
        if r.shape != (bp.size - 1,):
            raise ProfileError(
                f"rates shape {r.shape} does not match "
                f"{bp.size - 1} segments"
            )
        if np.any(r < 0):
            raise ProfileError("intensities must be non-negative")
        if not np.all(np.isfinite(bp)) or not np.all(np.isfinite(r)):
            raise ProfileError("breakpoints and rates must be finite")
        self._bp = bp
        self._rates = r
        self._cum = np.concatenate(([0.0], np.cumsum(r * np.diff(bp))))

    # -- construction helpers ------------------------------------------

    @classmethod
    def from_segments(
        cls, segments: Sequence[tuple[float, float]]
    ) -> "PiecewiseHazard":
        """Build from ``(duration, rate)`` pairs."""
        if not segments:
            raise ProfileError("need at least one segment")
        durations = np.asarray([d for d, _ in segments], dtype=float)
        if np.any(durations <= 0):
            raise ProfileError("segment durations must be positive")
        bp = np.concatenate(([0.0], np.cumsum(durations)))
        rates = [r for _, r in segments]
        return cls(bp, rates)

    # -- basic accessors ------------------------------------------------

    @property
    def breakpoints(self) -> np.ndarray:
        return self._bp

    @property
    def rates(self) -> np.ndarray:
        return self._rates

    @property
    def period(self) -> float:
        return float(self._bp[-1])

    @property
    def mass(self) -> float:
        return float(self._cum[-1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PiecewiseHazard(period={self.period:g}, mass={self.mass:g}, "
            f"segments={self._rates.size})"
        )

    # -- core operations --------------------------------------------------

    def cumulative(self, tau):
        tau = np.asarray(tau, dtype=float)
        if np.any((tau < 0) | (tau > self.period * (1 + _REL_TOL))):
            raise ProfileError("tau outside [0, period]")
        tau = np.clip(tau, 0.0, self.period)
        idx = np.clip(
            np.searchsorted(self._bp, tau, side="right") - 1,
            0,
            self._rates.size - 1,
        )
        return self._cum[idx] + self._rates[idx] * (tau - self._bp[idx])

    def invert(self, u):
        u = np.asarray(u, dtype=float)
        if np.any((u <= 0) | (u > self.mass * (1 + _REL_TOL))):
            raise ProfileError("u outside (0, mass]")
        u = np.minimum(u, self.mass)
        # First segment whose cumulative end reaches u.
        idx = np.clip(
            np.searchsorted(self._cum, u, side="left") - 1,
            0,
            self._rates.size - 1,
        )
        # If u lands exactly on a cumulative boundary following zero-rate
        # segments, searchsorted(left)-1 already points at the last segment
        # that accrued hazard before the boundary; its rate is positive.
        rate = self._rates[idx]
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(rate > 0, (u - self._cum[idx]) / rate, 0.0)
        # Division rounding can exceed the period by one ulp at u = mass.
        return np.minimum(self._bp[idx] + frac, self.period)

    def survival_integral(self, x: float) -> float:
        return self._survival_integral_impl(x, weighted=False)

    def time_weighted_survival_integral(self, x: float) -> float:
        return self._survival_integral_impl(x, weighted=True)

    def _survival_integral_impl(self, x: float, weighted: bool) -> float:
        """Array closed forms over every contributing segment at once.

        Vectorised version of the per-segment loop over
        :func:`_segment_integral` / :func:`_segment_weighted_integral`
        (kept as the scalar reference): same branch structure (series
        expansion below ``r*dt < 1e-8``), same libm transcendentals
        (see :data:`_libm_exp`), same left-to-right accumulation order
        (``np.cumsum`` folds sequentially, matching the scalar
        ``total +=``) — so the result is bit-identical to the old loop
        while the per-segment interpreter overhead is gone. This is the
        first-principles/hybrid hot path for many-segment profiles
        (SPEC masking traces run to thousands of segments).
        """
        if x < 0 or x > self.period * (1 + _REL_TOL):
            raise ProfileError("x outside [0, period]")
        x = min(float(x), self.period)
        # Segments with t0 < x contribute; searchsorted(left) counts them.
        m = min(
            int(np.searchsorted(self._bp, x, side="left")),
            self._rates.size,
        )
        if m == 0:
            return 0.0
        t0 = self._bp[:m]
        t1 = np.minimum(self._bp[1 : m + 1], x)
        c0 = self._cum[:m]
        r = self._rates[:m]
        dt = t1 - t0
        xs = r * dt
        ex = _libm_exp(-c0).astype(float)
        small = xs < 1e-8
        one_minus = -(_libm_expm1(-xs).astype(float))
        with np.errstate(divide="ignore", invalid="ignore"):
            if weighted:
                # Series branch (xs < 1e-8): t0*dt + dt²/2 - r(t0 dt²/2 + dt³/3).
                linear = t0 * dt + 0.5 * dt * dt
                correction = r * (0.5 * t0 * dt * dt + dt * dt * dt / 3.0)
                series = ex * (linear - correction)
                # Closed form: e^{-c0}[t0(1-e^{-x})/r + (1-(1+x)e^{-x})/r²].
                inner = t0 * one_minus / r + (
                    one_minus - xs * _libm_exp(-xs).astype(float)
                ) / (r * r)
                closed = ex * inner
            else:
                series = ex * dt * (1.0 - 0.5 * xs)
                closed = ex * one_minus / r
        terms = np.where(small, series, closed)
        terms = np.where(dt > 0, terms, 0.0)
        # cumsum (a sequential left fold) preserves the scalar loop's
        # accumulation order; a pairwise sum would shift the rounding.
        return float(np.cumsum(terms)[-1])

    def scaled(self, factor: float) -> "PiecewiseHazard":
        if factor < 0:
            raise ProfileError("scale factor must be non-negative")
        return PiecewiseHazard(self._bp, self._rates * factor)

    def tiled(self, n: int) -> "PiecewiseHazard":
        """The same intensity written out over ``n`` consecutive periods."""
        if n < 1:
            raise ProfileError("tile count must be >= 1")
        bp = [self._bp]
        for i in range(1, n):
            bp.append(self._bp[1:] + i * self.period)
        return PiecewiseHazard(np.concatenate(bp), np.tile(self._rates, n))

    def rate_at(self, tau):
        """Intensity value at local time ``tau`` in ``[0, period)``."""
        tau = np.asarray(tau, dtype=float)
        if np.any((tau < 0) | (tau >= self.period * (1 + _REL_TOL))):
            raise ProfileError("tau outside [0, period)")
        idx = np.clip(
            np.searchsorted(self._bp, tau, side="right") - 1,
            0,
            self._rates.size - 1,
        )
        return self._rates[idx]


def _segment_integral(t0: float, t1: float, c0: float, r: float) -> float:
    """``∫_{t0}^{t1} exp(-(c0 + r (t - t0))) dt`` in closed form."""
    dt = t1 - t0
    if dt <= 0:
        return 0.0
    x = r * dt
    if x < 1e-8:
        # Series in x: dividing (1 - e^{-x}) by a subnormal r loses
        # precision catastrophically; the expansion is exact to 1e-17.
        return math.exp(-c0) * dt * (1.0 - 0.5 * x)
    # exp(-c0) * (1 - exp(-x)) / r, stable for modest x via expm1.
    return math.exp(-c0) * (-math.expm1(-x)) / r


def _segment_weighted_integral(t0: float, t1: float, c0: float, r: float) -> float:
    """``∫_{t0}^{t1} t * exp(-(c0 + r (t - t0))) dt`` in closed form."""
    dt = t1 - t0
    if dt <= 0:
        return 0.0
    x = r * dt
    if x < 1e-8:
        # First-order series (same subnormal-division concern as above):
        # ∫ (t0+s) e^{-rs} ds = t0 dt + dt²/2 - r (t0 dt²/2 + dt³/3) + O(r²)
        linear = t0 * dt + 0.5 * dt * dt
        correction = r * (0.5 * t0 * dt * dt + dt * dt * dt / 3.0)
        return math.exp(-c0) * (linear - correction)
    # Substitute s = t - t0:
    #   ∫_0^dt (t0 + s) e^{-c0 - r s} ds
    # = e^{-c0} [ t0 (1 - e^{-r dt})/r + (1 - (1 + r dt) e^{-r dt})/r^2 ]
    one_minus = -math.expm1(-x)
    inner = t0 * one_minus / r + (one_minus - x * math.exp(-x)) / (r * r)
    return math.exp(-c0) * inner


def constant_hazard(rate: float, period: float = 1.0) -> PiecewiseHazard:
    """A constant intensity — i.e. an ordinary (homogeneous) Poisson process.

    The period is arbitrary for a constant intensity; it only sets the
    internal cycle bookkeeping.
    """
    if period <= 0:
        raise ConfigurationError(f"period must be positive, got {period}")
    return PiecewiseHazard([0.0, period], [rate])


class NestedHazard(CyclicIntensity):
    """Two-time-scale cyclic intensity.

    The outer cycle consists of segments; within each segment an *inner*
    cyclic intensity repeats for the segment's duration (possibly ending
    mid-repetition). This models the paper's ``combined`` workload: a
    24-hour outer loop whose two halves each run one SPEC benchmark,
    whose masking trace (the inner cycle, ~milliseconds) repeats millions
    of times per half.

    Parameters
    ----------
    segments:
        Sequence of ``(duration, inner)`` pairs. ``inner`` is either a
        :class:`PiecewiseHazard` (repeated cyclically for ``duration``
        seconds) or a plain float (a constant intensity for the segment).
    """

    def __init__(
        self, segments: Sequence[tuple[float, "PiecewiseHazard | float"]]
    ):
        if not segments:
            raise ProfileError("need at least one segment")
        self._durations: list[float] = []
        self._inners: list[PiecewiseHazard] = []
        for duration, inner in segments:
            duration = float(duration)
            if duration <= 0:
                raise ProfileError("segment durations must be positive")
            if isinstance(inner, (int, float)):
                inner = constant_hazard(float(inner), period=duration)
            if not isinstance(inner, PiecewiseHazard):
                raise ProfileError(
                    "inner intensity must be a PiecewiseHazard or a number"
                )
            self._durations.append(duration)
            self._inners.append(inner)
        self._starts = np.concatenate(
            ([0.0], np.cumsum(np.asarray(self._durations)))
        )
        self._seg_mass = np.asarray(
            [
                self._segment_mass(inner, duration)
                for inner, duration in zip(self._inners, self._durations)
            ]
        )
        self._cum_mass = np.concatenate(([0.0], np.cumsum(self._seg_mass)))

    @staticmethod
    def _segment_mass(inner: PiecewiseHazard, duration: float) -> float:
        k_full, tail = _split_repetitions(duration, inner.period)
        return k_full * inner.mass + float(inner.cumulative(tail))

    @property
    def period(self) -> float:
        return float(self._starts[-1])

    @property
    def mass(self) -> float:
        return float(self._cum_mass[-1])

    @property
    def segment_count(self) -> int:
        return len(self._inners)

    @property
    def segments(self) -> list[tuple[float, PiecewiseHazard]]:
        """``(duration, inner_hazard)`` pairs of the outer cycle."""
        return list(zip(self._durations, self._inners))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NestedHazard(period={self.period:g}, mass={self.mass:g}, "
            f"segments={self.segment_count})"
        )

    def cumulative(self, tau):
        tau = np.asarray(tau, dtype=float)
        scalar = tau.ndim == 0
        tau = np.atleast_1d(tau)
        if np.any((tau < 0) | (tau > self.period * (1 + _REL_TOL))):
            raise ProfileError("tau outside [0, period]")
        tau = np.clip(tau, 0.0, self.period)
        seg = np.clip(
            np.searchsorted(self._starts, tau, side="right") - 1,
            0,
            self.segment_count - 1,
        )
        out = np.empty_like(tau)
        for j in np.unique(seg):
            sel = seg == j
            local = tau[sel] - self._starts[j]
            inner = self._inners[j]
            k = np.floor(local / inner.period)
            rem = np.clip(local - k * inner.period, 0.0, inner.period)
            out[sel] = (
                self._cum_mass[j] + k * inner.mass + inner.cumulative(rem)
            )
        return out[0] if scalar else out

    def invert(self, u):
        u = np.asarray(u, dtype=float)
        scalar = u.ndim == 0
        u = np.atleast_1d(u)
        if np.any((u <= 0) | (u > self.mass * (1 + _REL_TOL))):
            raise ProfileError("u outside (0, mass]")
        u = np.minimum(u, self.mass)
        seg = np.clip(
            np.searchsorted(self._cum_mass, u, side="left") - 1,
            0,
            self.segment_count - 1,
        )
        out = np.empty_like(u)
        for j in np.unique(seg):
            sel = seg == j
            inner = self._inners[j]
            rem = u[sel] - self._cum_mass[j]
            if inner.mass <= 0:
                # No hazard accrues in this segment; u must land exactly on
                # its start boundary, which belongs to an earlier segment.
                # Guarded by searchsorted side="left", so this is safety.
                out[sel] = self._starts[j]
                continue
            k = np.floor(rem / inner.mass)
            inner_rem = rem - k * inner.mass
            under = inner_rem <= 0.0
            k = np.where(under, k - 1, k)
            inner_rem = np.where(under, inner_rem + inner.mass, inner_rem)
            over = inner_rem > inner.mass
            k = np.where(over, k + 1, k)
            inner_rem = np.where(over, inner_rem - inner.mass, inner_rem)
            inner_rem = np.clip(
                inner_rem, np.finfo(float).smallest_subnormal, inner.mass
            )
            out[sel] = (
                self._starts[j]
                + k * inner.period
                + inner.invert(inner_rem)
            )
        out = np.minimum(out, self.period)
        return out[0] if scalar else out

    def survival_integral(self, x: float) -> float:
        if x < 0 or x > self.period * (1 + _REL_TOL):
            raise ProfileError("x outside [0, period]")
        x = min(float(x), self.period)
        total = 0.0
        for j, inner in enumerate(self._inners):
            start = self._starts[j]
            if start >= x:
                break
            entering = self._cum_mass[j]
            local_end = min(x - start, self._durations[j])
            total += math.exp(-entering) * _repeated_survival_integral(
                inner, local_end
            )
        return total

    def time_weighted_survival_integral(self, x: float) -> float:
        # ∫ tau e^{-Lambda} = ∫ (start + s) e^{-Lambda} over each segment;
        # the s-weighted part needs the inner weighted integral per
        # repetition, handled in _repeated_weighted_integral.
        if x < 0 or x > self.period * (1 + _REL_TOL):
            raise ProfileError("x outside [0, period]")
        x = min(float(x), self.period)
        total = 0.0
        for j, inner in enumerate(self._inners):
            start = self._starts[j]
            if start >= x:
                break
            entering = self._cum_mass[j]
            local_end = min(x - start, self._durations[j])
            plain = _repeated_survival_integral(inner, local_end)
            weighted = _repeated_weighted_integral(inner, local_end)
            total += math.exp(-entering) * (start * plain + weighted)
        return total

    def scaled(self, factor: float) -> "NestedHazard":
        if factor < 0:
            raise ProfileError("scale factor must be non-negative")
        return NestedHazard(
            [
                (d, inner.scaled(factor))
                for d, inner in zip(self._durations, self._inners)
            ]
        )


def _split_repetitions(duration: float, period: float) -> tuple[int, float]:
    """Split ``duration`` into full inner repetitions plus a tail.

    Returns ``(k_full, tail)`` with ``duration = k_full * period + tail``
    and ``0 <= tail < period`` (up to floating point; an exact multiple
    yields a zero tail).
    """
    ratio = duration / period
    k_full = int(math.floor(ratio + _REL_TOL))
    tail = duration - k_full * period
    if tail < 0:
        tail = 0.0
    if tail >= period:
        k_full += 1
        tail = 0.0
    return k_full, tail


def _geometric_sum(q: float, k: int) -> float:
    """``sum_{i=0}^{k-1} q^i`` with a stable branch for ``q`` near 1."""
    if k <= 0:
        return 0.0
    if q == 1.0:
        return float(k)
    log_q = math.log(q) if q > 0 else -math.inf
    if q > 0 and abs(k * log_q) < 1e-12:
        # q^k - 1 ~ k log q; avoid catastrophic cancellation.
        return float(k)
    return (1.0 - q**k) / (1.0 - q)


def _repeated_survival_integral(inner: PiecewiseHazard, x: float) -> float:
    """``∫_0^x exp(-Lambda_inner_cyclic(s)) ds`` for the cyclic extension."""
    if x <= 0:
        return 0.0
    k_full, tail = _split_repetitions(x, inner.period)
    q = math.exp(-inner.mass)
    full = inner.survival_integral(inner.period) * _geometric_sum(q, k_full)
    partial = (q**k_full) * inner.survival_integral(tail) if tail > 0 else 0.0
    return full + partial


def _repeated_weighted_integral(inner: PiecewiseHazard, x: float) -> float:
    """``∫_0^x s * exp(-Lambda_inner_cyclic(s)) ds`` for the cyclic extension.

    Decomposes repetition ``i`` as ``s = i*P + s'``:
    ``∫ = sum_i q^i [ i*P*I(P) + J(P) ]`` plus a partial tail, where
    ``I`` and ``J`` are the inner plain and weighted integrals.
    """
    if x <= 0:
        return 0.0
    k_full, tail = _split_repetitions(x, inner.period)
    q = math.exp(-inner.mass)
    i_full = inner.survival_integral(inner.period)
    j_full = inner.time_weighted_survival_integral(inner.period)
    total = 0.0
    # sum_{i=0}^{k-1} q^i = geometric; sum_{i=0}^{k-1} i q^i needs its own
    # closed form; for moderate k (cluster experiments keep k small) we
    # can afford the exact loop only when k is small, otherwise use the
    # analytic expression.
    g0 = _geometric_sum(q, k_full)
    if q == 1.0:
        g1 = 0.5 * k_full * (k_full - 1)
    else:
        # sum_{i=0}^{k-1} i q^i = q (1 - k q^{k-1} + (k-1) q^k) / (1-q)^2
        qk = q**k_full
        g1 = q * (1.0 - k_full * (qk / q) + (k_full - 1) * qk) / (1.0 - q) ** 2
    total += inner.period * i_full * g1 + j_full * g0
    if tail > 0:
        qk = q**k_full
        total += qk * (
            k_full * inner.period * inner.survival_integral(tail)
            + inner.time_weighted_survival_integral(tail)
        )
    return total


def merge_piecewise(
    hazards: Sequence[PiecewiseHazard],
) -> PiecewiseHazard:
    """Pointwise sum of piecewise hazards sharing one common period.

    This is the series-system composition: independent failure processes
    superpose, so intensities add. All inputs must share the same period
    (tile commensurable profiles first with :meth:`PiecewiseHazard.tiled`).
    """
    if not hazards:
        raise ProfileError("need at least one hazard to merge")
    period = hazards[0].period
    for h in hazards[1:]:
        if not math.isclose(h.period, period, rel_tol=_REL_TOL):
            raise ProfileError(
                f"period mismatch: {h.period} vs {period}; tile first"
            )
    bp = np.unique(np.concatenate([h.breakpoints for h in hazards]))
    bp[-1] = period  # normalise any last-point float jitter
    mids = 0.5 * (bp[:-1] + bp[1:])
    rates = np.zeros_like(mids)
    for h in hazards:
        rates += h.rate_at(np.clip(mids, 0, h.period * (1 - 1e-15)))
    return PiecewiseHazard(bp, rates)
