"""Time-to-first-failure process for a cyclically masked Poisson error source.

:class:`FailureProcess` is the library's "ground truth" object: given a
cyclic failure intensity (a :class:`~repro.reliability.hazard.CyclicIntensity`,
i.e. raw rate x vulnerability), it provides

* the **exact** MTTF from first principles,
    ``E[X] = (∫_0^L e^{-Λ(τ)} dτ) / (1 - e^{-Λ(L)})``,
* the exact second moment / variance / coefficient of variation,
* the exact survival function, and
* i.i.d. samples of the time to failure via inverse-hazard transform
  (``X = Λ^{-1}(E)``, ``E ~ Exp(1)``) — distributionally identical to the
  paper's raw-arrival resampling Monte Carlo, but O(1) per trial.

The MTTF identity follows from the renewal structure: the survival
function of an inhomogeneous Poisson first event is ``e^{-Λ(t)}`` and the
cyclic hazard gives ``Λ(t + L) = Λ(t) + Λ(L)``, so the integral over
``[0, ∞)`` telescopes into a geometric series over periods.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import EstimationError
from .hazard import CyclicIntensity


class FailureProcess:
    """First-failure process driven by a cyclic intensity."""

    def __init__(self, intensity: CyclicIntensity):
        self._intensity = intensity

    @property
    def intensity(self) -> CyclicIntensity:
        return self._intensity

    @property
    def period(self) -> float:
        return self._intensity.period

    @property
    def mass_per_period(self) -> float:
        """Cumulative hazard accrued per period (``Λ(L)``)."""
        return self._intensity.mass

    # ------------------------------------------------------------------
    # Exact quantities.
    # ------------------------------------------------------------------

    def mttf(self) -> float:
        """Exact mean time to failure; ``inf`` if the mass per period is 0."""
        mass = self._intensity.mass
        if mass <= 0.0:
            return math.inf
        numer = self._intensity.survival_integral(self.period)
        denom = -math.expm1(-mass)
        return numer / denom

    def second_moment(self) -> float:
        """Exact ``E[X^2]``.

        ``E[X^2] = 2 ∫_0^∞ t e^{-Λ(t)} dt``; splitting into periods with
        ``t = kL + τ`` gives
        ``2 [ L·I·Σ k q^k + J·Σ q^k ] = 2 [ L·I·q/(1-q)^2 + J/(1-q) ]``
        with ``q = e^{-Λ(L)}``, ``I = ∫_0^L e^{-Λ}``, ``J = ∫_0^L τ e^{-Λ}``.
        """
        mass = self._intensity.mass
        if mass <= 0.0:
            return math.inf
        q = math.exp(-mass)
        period = self.period
        i_term = self._intensity.survival_integral(period)
        j_term = self._intensity.time_weighted_survival_integral(period)
        one_minus_q = -math.expm1(-mass)
        return 2.0 * (
            period * i_term * q / (one_minus_q * one_minus_q)
            + j_term / one_minus_q
        )

    def variance(self) -> float:
        """Exact variance of the time to failure."""
        m = self.mttf()
        if math.isinf(m):
            return math.inf
        second = self.second_moment()
        square = m * m
        if not math.isfinite(second) or not math.isfinite(square):
            # Astronomically masked processes overflow the moment
            # arithmetic; the variance is then effectively unbounded.
            return math.inf
        return second - square

    def coefficient_of_variation(self) -> float:
        """Exact CoV (std/mean); equals 1 iff the TTF were exponential.

        This is the analytic version of the paper's SOFR-assumption check:
        architectural masking with long phases drives the CoV away from 1,
        which is exactly when the SOFR step's exponentiality assumption
        fails.
        """
        m = self.mttf()
        if math.isinf(m):
            raise EstimationError("CoV undefined for a never-failing process")
        v = self.variance()
        if v < 0:
            # Numerical cancellation for nearly deterministic processes.
            v = 0.0
        return math.sqrt(v) / m

    def survival(self, t):
        """Exact ``P(X > t)`` for any ``t >= 0`` (vectorised)."""
        lam = self._intensity.cumulative_extended(t)
        return np.exp(-lam)

    def quantile(self, p):
        """Exact quantile: smallest ``t`` with ``P(X <= t) >= p``."""
        p = np.asarray(p, dtype=float)
        if np.any((p <= 0) | (p >= 1)):
            raise EstimationError("quantile requires p in (0, 1)")
        if self._intensity.mass <= 0:
            return np.full_like(p, np.inf)
        return self._intensity.invert_extended(-np.log1p(-p))

    # ------------------------------------------------------------------
    # Sampling.
    # ------------------------------------------------------------------

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` i.i.d. times to failure by inverse-hazard transform."""
        if n < 1:
            raise EstimationError(f"sample size must be >= 1, got {n}")
        if self._intensity.mass <= 0:
            return np.full(n, np.inf)
        e = rng.exponential(size=n)
        return self._intensity.invert_extended(e)
