"""Distributions used by the paper's mathematical analysis.

These are deliberately small, explicit classes rather than wrappers around
``scipy.stats``: the tests exercise the exact formulas the paper derives
(Erlang sums of exponentials, the geometric count of masked errors, the
half-normal-square counter-example density of Section 3.2.2), and keeping
the algebra visible makes the correspondence with the paper auditable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Exponential:
    """Exponential distribution with rate ``lam`` (density ``lam*e^-lam*t``).

    The paper assumes raw soft-error inter-arrival times follow this
    distribution (Section 3, assumption 1).
    """

    lam: float

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.lam}")

    @property
    def mean(self) -> float:
        return 1.0 / self.lam

    @property
    def variance(self) -> float:
        return 1.0 / (self.lam * self.lam)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.where(t >= 0, self.lam * np.exp(-self.lam * t), 0.0)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.where(t >= 0, -np.expm1(-self.lam * t), 0.0)

    def survival(self, t):
        t = np.asarray(t, dtype=float)
        return np.where(t >= 0, np.exp(-self.lam * t), 1.0)

    def quantile(self, p):
        p = np.asarray(p, dtype=float)
        if np.any((p < 0) | (p >= 1)):
            raise ConfigurationError("quantile requires p in [0, 1)")
        return -np.log1p(-p) / self.lam

    def sample(self, n: int, rng: np.random.Generator):
        return rng.exponential(scale=1.0 / self.lam, size=n)

    def memoryless_residual(self, elapsed: float) -> "Exponential":
        """The conditional distribution of remaining time given survival.

        For the exponential this is the same distribution — the memoryless
        property the paper's Section 3.1.2 footnote relies on.
        """
        if elapsed < 0:
            raise ConfigurationError("elapsed time must be non-negative")
        return Exponential(self.lam)


@dataclass(frozen=True)
class Erlang:
    """Erlang distribution: sum of ``k`` i.i.d. Exponential(``lam``) variables.

    Used in Section 3.2.1 where the time to failure is decomposed as the
    sum of a geometric number of exponential inter-arrival times.
    """

    k: int
    lam: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"shape must be >= 1, got {self.k}")
        if self.lam <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.lam}")

    @property
    def mean(self) -> float:
        return self.k / self.lam

    @property
    def variance(self) -> float:
        return self.k / (self.lam * self.lam)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.zeros_like(t)
        pos = t > 0
        tp = t[pos] if t.ndim else (t if t > 0 else None)
        if t.ndim == 0:
            if t <= 0:
                return np.float64(0.0)
            logp = (
                math.log(self.lam)
                + (self.k - 1) * (math.log(self.lam) + math.log(float(t)))
                - self.lam * float(t)
                - math.lgamma(self.k)
            )
            return np.float64(math.exp(logp))
        logp = (
            np.log(self.lam)
            + (self.k - 1) * (np.log(self.lam) + np.log(tp))
            - self.lam * tp
            - math.lgamma(self.k)
        )
        out[pos] = np.exp(logp)
        return out

    def sample(self, n: int, rng: np.random.Generator):
        return rng.gamma(shape=self.k, scale=1.0 / self.lam, size=n)


@dataclass(frozen=True)
class Geometric:
    """Geometric distribution on {1, 2, ...} with success probability ``p``.

    In Section 3.1.1, ``K`` — the index of the first unmasked raw error —
    is geometric with success probability ``1 - M = AVF`` when the
    uniform-vulnerability limit holds, giving ``E[K] = 1/AVF``.
    """

    p: float

    def __post_init__(self) -> None:
        if not 0 < self.p <= 1:
            raise ConfigurationError(f"p must be in (0, 1], got {self.p}")

    @property
    def mean(self) -> float:
        return 1.0 / self.p

    @property
    def variance(self) -> float:
        return (1.0 - self.p) / (self.p * self.p)

    def pmf(self, k):
        k = np.asarray(k)
        out = np.where(k >= 1, (1.0 - self.p) ** (k - 1) * self.p, 0.0)
        return out

    def sample(self, n: int, rng: np.random.Generator):
        return rng.geometric(self.p, size=n)


@dataclass(frozen=True)
class HalfNormalSquare:
    """The Section 3.2.2 counter-example density ``f(x) = (2/sqrt(pi)) e^{-x^2}``.

    A "close to exponential" but non-exponential time-to-failure density
    the paper uses to quantify the SOFR step's error analytically. Its
    mean (component MTTF) is ``1/sqrt(pi)``; its survival function is
    ``erfc(x)``.
    """

    @property
    def mean(self) -> float:
        return 1.0 / math.sqrt(math.pi)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, (2.0 / math.sqrt(math.pi)) * np.exp(-x * x), 0.0)

    def cdf(self, x):
        from scipy.special import erf

        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, erf(x), 0.0)

    def survival(self, x):
        from scipy.special import erfc

        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, erfc(x), 1.0)

    def sample(self, n: int, rng: np.random.Generator):
        # |Z|/sqrt(2) for Z standard normal has density 2/sqrt(pi) e^{-x^2}.
        return np.abs(rng.standard_normal(n)) / math.sqrt(2.0)
