"""Reliability mathematics: distributions, hazards, and series systems.

This subpackage provides the probabilistic machinery that both the
AVF+SOFR method and the first-principles methods are built on:

* :mod:`repro.reliability.distributions` — the textbook distributions the
  paper reasons with (exponential, Erlang, geometric, and the
  half-normal-square density of Section 3.2.2).
* :mod:`repro.reliability.hazard` — cyclic inhomogeneous-Poisson hazard
  objects: piecewise-constant intensities, nested two-time-scale
  intensities, exact cumulative-hazard evaluation, inversion, and
  survival integrals.
* :mod:`repro.reliability.process` — :class:`FailureProcess`, the time to
  first failure of a cyclically masked Poisson error process (exact MTTF,
  moments, sampling).
* :mod:`repro.reliability.series` — series (first-failure) systems.
* :mod:`repro.reliability.diagnostics` — exponentiality diagnostics used
  to show *why* SOFR breaks (the masked process is not exponential).
"""

from .distributions import (
    Erlang,
    Exponential,
    Geometric,
    HalfNormalSquare,
)
from .hazard import (
    CyclicIntensity,
    NestedHazard,
    PiecewiseHazard,
    constant_hazard,
)
from .process import FailureProcess
from .series import SeriesSystem, sofr_mttf
from .diagnostics import (
    coefficient_of_variation,
    exponentiality_report,
    ks_statistic_exponential,
)
from .metrics import MTTFEstimate

__all__ = [
    "Erlang",
    "Exponential",
    "Geometric",
    "HalfNormalSquare",
    "CyclicIntensity",
    "NestedHazard",
    "PiecewiseHazard",
    "constant_hazard",
    "FailureProcess",
    "SeriesSystem",
    "sofr_mttf",
    "coefficient_of_variation",
    "exponentiality_report",
    "ks_statistic_exponential",
    "MTTFEstimate",
]
