"""Estimate containers and error metrics shared across methods."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import EstimationError
from ..units import SECONDS_PER_YEAR, mttf_seconds_to_fit


@dataclass(frozen=True)
class MTTFEstimate:
    """An MTTF value with (optional) Monte-Carlo uncertainty.

    Attributes
    ----------
    mttf_seconds:
        The point estimate (seconds). May be ``inf`` for a never-failing
        configuration.
    std_error_seconds:
        Standard error of the estimate; 0.0 for exact/analytical methods.
    trials:
        Number of Monte-Carlo trials behind the estimate; 0 for exact
        methods.
    method:
        Short label of the producing method ("avf", "sofr", "monte_carlo",
        "first_principles", "softarch", ...).
    """

    mttf_seconds: float
    std_error_seconds: float = 0.0
    trials: int = 0
    method: str = "exact"

    def __post_init__(self) -> None:
        if self.mttf_seconds <= 0:
            raise EstimationError(
                f"MTTF must be positive, got {self.mttf_seconds}"
            )
        if self.std_error_seconds < 0:
            raise EstimationError("standard error must be non-negative")

    @property
    def mttf_years(self) -> float:
        return self.mttf_seconds / SECONDS_PER_YEAR

    @property
    def fit(self) -> float:
        """FIT under the constant-rate convention (reporting only)."""
        if math.isinf(self.mttf_seconds):
            return 0.0
        return mttf_seconds_to_fit(self.mttf_seconds)

    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval (seconds)."""
        half = 1.96 * self.std_error_seconds
        return (self.mttf_seconds - half, self.mttf_seconds + half)

    @property
    def rel_stderr(self) -> float:
        """Achieved relative standard error (see :func:`achieved_rel_stderr`)."""
        return achieved_rel_stderr(
            self.mttf_seconds, self.std_error_seconds
        )

    def to_dict(self) -> dict:
        """Plain-dict form for JSON serialization (lossless)."""
        return {
            "mttf_seconds": self.mttf_seconds,
            "std_error_seconds": self.std_error_seconds,
            "trials": self.trials,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MTTFEstimate":
        """Inverse of :meth:`to_dict`."""
        return cls(
            mttf_seconds=float(data["mttf_seconds"]),
            std_error_seconds=float(data.get("std_error_seconds", 0.0)),
            trials=int(data.get("trials", 0)),
            method=str(data.get("method", "exact")),
        )

    def __str__(self) -> str:
        if math.isinf(self.mttf_seconds):
            return f"MTTF=inf ({self.method})"
        if self.std_error_seconds > 0:
            return (
                f"MTTF={self.mttf_years:.4g}y "
                f"+/-{1.96 * self.std_error_seconds / SECONDS_PER_YEAR:.2g}y "
                f"({self.method}, n={self.trials})"
            )
        return f"MTTF={self.mttf_years:.4g}y ({self.method})"


def achieved_rel_stderr(
    mttf_seconds: float, std_error_seconds: float
) -> float:
    """``stderr / mttf`` — the precision an estimate actually reached.

    The single definition behind every audit surface
    (:attr:`MTTFEstimate.rel_stderr`,
    ``ResultSet.reference_rel_stderr``,
    ``SweepResult.monte_carlo_rel_stderr``): exact estimates and
    infinite/degenerate MTTFs report 0.0 — "no sampling uncertainty" —
    rather than an undefined ratio.
    """
    if not math.isfinite(mttf_seconds) or mttf_seconds <= 0:
        return 0.0
    return std_error_seconds / mttf_seconds


def relative_error(estimate: float, reference: float) -> float:
    """``|estimate - reference| / reference`` — the paper's error metric."""
    if reference <= 0 or math.isinf(reference):
        raise EstimationError(
            f"reference MTTF must be positive and finite, got {reference}"
        )
    return abs(estimate - reference) / reference


def signed_relative_error(estimate: float, reference: float) -> float:
    """``(estimate - reference) / reference`` (sign shows over/under-estimation).

    Section 5.2 notes AVF can either over- or under-estimate the MTTF;
    keeping the sign lets the experiment tables show which.
    """
    if reference <= 0 or math.isinf(reference):
        raise EstimationError(
            f"reference MTTF must be positive and finite, got {reference}"
        )
    return (estimate - reference) / reference
