"""Section 3.2.1: the geometric-Erlang mixture identity.

When ``λL → 0`` the time to failure decomposes as ``X = Σ_{i=1}^K t_i``
with ``K ~ Geometric(AVF)`` and ``t_i ~ Exponential(λ)``. The paper sums
the Erlang mixture

    ``f_X(x) = Σ_i (1-AVF)^{i-1}·AVF·λ(λx)^{i-1} e^{-λx}/(i-1)!
             = AVF·λ·e^{-AVF·λ·x}``

— an exponential with rate ``λ·AVF``, which is what validates the SOFR
step in the limit. This module evaluates both sides so the identity can
be tested numerically (and the truncation error quantified).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError


def geometric_erlang_mixture_pdf(
    x, lam: float, avf: float, terms: int = 200
):
    """Partial sum of the Erlang mixture density (vectorised over x)."""
    if lam <= 0:
        raise ConfigurationError(f"rate must be positive, got {lam}")
    if not 0 < avf <= 1:
        raise ConfigurationError(f"AVF must be in (0, 1], got {avf}")
    if terms < 1:
        raise ConfigurationError(f"need at least one term, got {terms}")
    x = np.asarray(x, dtype=float)
    if np.any(x < 0):
        raise ConfigurationError("x must be non-negative")
    # Σ_i (1-avf)^{i-1} avf λ (λx)^{i-1}/(i-1)! e^{-λx}, i = 1..terms
    total = np.zeros_like(x)
    log_lam_x = np.where(x > 0, np.log(lam * np.maximum(x, 1e-300)), -np.inf)
    for i in range(1, terms + 1):
        if i == 1:
            log_mask_factor = 0.0  # (1-avf)^0 == 1 even when avf == 1
        elif avf == 1:
            break  # every later term carries a (1-avf) factor of zero
        else:
            log_mask_factor = (i - 1) * math.log1p(-avf)
        # (i-1)·log(λx) must be exactly 0 for i == 1 even at x == 0,
        # where log(λx) is -inf and 0·(-inf) would be NaN.
        log_power = 0.0 if i == 1 else (i - 1) * log_lam_x
        log_term = (
            log_mask_factor
            + math.log(avf)
            + math.log(lam)
            + log_power
            - lam * x
            - math.lgamma(i)
        )
        total += np.exp(log_term)
    return total


def exponential_limit_pdf(x, lam: float, avf: float):
    """The closed-form limit: ``AVF·λ·e^{-AVF·λ·x}``."""
    if lam <= 0:
        raise ConfigurationError(f"rate must be positive, got {lam}")
    if not 0 < avf <= 1:
        raise ConfigurationError(f"AVF must be in (0, 1], got {avf}")
    x = np.asarray(x, dtype=float)
    return avf * lam * np.exp(-avf * lam * x)
