"""Section 3.1.2: closed-form MTTF for the busy/idle loop (Figure 3).

The synthetic counter-example program: an infinite loop of iteration
length ``L`` whose component is active (vulnerable) for the first ``A``
cycles and idle (masked) for the rest. Appendix A derives the MTTF from
first principles:

    ``E(X) = (1-e^{-λL})/(1-e^{-λA}) · ( L e^{-λL}/(1-e^{-λL})^2
             - L e^{-λA} e^{-λL}/(1-e^{-λL})^2 - A e^{-λA}/(1-e^{-λL})
             + (1/λ)(1-e^{-λA})/(1-e^{-λL})
             + L (e^{-λA}-e^{-λL})/(1-e^{-λL})^2 )``

which simplifies algebraically to

    ``E(X) = 1/λ + (L - A) e^{-λA} / (1 - e^{-λA})``.

Both forms are implemented: the verbatim form for fidelity to the paper
(and as a regression target), the simplified form for numerical
robustness; the tests verify they coincide and that both match the
general renewal integral and Monte Carlo.

The AVF step instead predicts ``E_AVF(X) = (L/A)·(1/λ)``; Figure 3 plots
the relative difference for a 100MB cache across L (days) and raw-rate
scalings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..ser.rates import cache_bits
from ..units import (
    BASELINE_RATE_PER_BIT_YEAR,
    SECONDS_PER_DAY,
    per_year_to_per_second,
)


def _validate(lam: float, busy: float, period: float) -> None:
    if lam <= 0:
        raise ConfigurationError(f"rate must be positive, got {lam}")
    if not 0 < busy < period:
        raise ConfigurationError(
            f"need 0 < busy < period, got busy={busy}, period={period}"
        )


def busy_idle_mttf_closed_form(
    lam: float, busy: float, period: float
) -> float:
    """Simplified exact MTTF: ``1/λ + (L-A) e^{-λA} / (1 - e^{-λA})``."""
    _validate(lam, busy, period)
    idle = period - busy
    exp_a = math.exp(-lam * busy)
    one_minus_a = -math.expm1(-lam * busy)
    return 1.0 / lam + idle * exp_a / one_minus_a


def busy_idle_mttf_paper_form(
    lam: float, busy: float, period: float
) -> float:
    """The Appendix-A expression, verbatim (kept as a fidelity check)."""
    _validate(lam, busy, period)
    a = busy
    length = period
    e_l = math.exp(-lam * length)
    e_a = math.exp(-lam * a)
    d = -math.expm1(-lam * length)  # 1 - e^{-λL}
    one_minus_e_a = -math.expm1(-lam * a)
    prefactor = d / one_minus_e_a
    inner = (
        length * e_l / (d * d)
        - length * e_a * e_l / (d * d)
        - a * e_a / d
        + (1.0 / lam) * one_minus_e_a / d
        + length * (e_a - e_l) / (d * d)
    )
    return prefactor * inner


def avf_step_mttf_busy_idle(lam: float, busy: float, period: float) -> float:
    """The AVF-step prediction: ``(L/A) / λ`` (AVF = A/L)."""
    _validate(lam, busy, period)
    return (period / busy) / lam


def relative_error_busy_idle(lam: float, busy: float, period: float) -> float:
    """Figure-3 quantity: ``|E_AVF(X) - E(X)| / E(X)``."""
    exact = busy_idle_mttf_closed_form(lam, busy, period)
    approx = avf_step_mttf_busy_idle(lam, busy, period)
    return abs(approx - exact) / exact


@dataclass(frozen=True)
class Figure3Point:
    """One point of a Figure-3 curve."""

    loop_days: float
    rate_scale: float
    rate_per_second: float
    exact_mttf: float
    avf_mttf: float
    relative_error: float


def figure3_curves(
    cache_megabytes: float = 100.0,
    loop_days_values: tuple[float, ...] = tuple(range(1, 17)),
    rate_scales: tuple[float, ...] = (1.0, 3.0, 5.0),
    busy_fraction: float = 0.5,
) -> list[Figure3Point]:
    """Regenerate Figure 3.

    A ``cache_megabytes`` cache (8.39e8 bits at 100MB) runs a loop of
    ``L`` days, busy for ``busy_fraction`` of each iteration. ``λ`` is
    the whole-cache raw rate at the baseline per-bit rate times each
    scale in ``rate_scales`` (the paper: 1x ≈ 10 errors/year, plus 3x
    and 5x for technology/altitude).
    """
    bits = cache_bits(cache_megabytes)
    base_rate = per_year_to_per_second(bits * BASELINE_RATE_PER_BIT_YEAR)
    points = []
    for scale in rate_scales:
        lam = base_rate * scale
        for loop_days in loop_days_values:
            period = loop_days * SECONDS_PER_DAY
            busy = busy_fraction * period
            exact = busy_idle_mttf_closed_form(lam, busy, period)
            approx = avf_step_mttf_busy_idle(lam, busy, period)
            points.append(
                Figure3Point(
                    loop_days=loop_days,
                    rate_scale=scale,
                    rate_per_second=lam,
                    exact_mttf=exact,
                    avf_mttf=approx,
                    relative_error=abs(approx - exact) / exact,
                )
            )
    return points
