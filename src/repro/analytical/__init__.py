"""Section-3 analytical models.

* :mod:`~repro.analytical.theorem1` — Theorem 1: the distribution of
  ``T mod L`` for exponential ``T``, and its uniform limit as ``λL → 0``;
* :mod:`~repro.analytical.busy_idle` — the Section 3.1.2 closed-form
  MTTF for the busy/idle loop and the Figure-3 error curves;
* :mod:`~repro.analytical.sofr_halfnormal` — the Section 3.2.2 SOFR
  counter-example with the half-normal-square density (Figure 4);
* :mod:`~repro.analytical.geometric_sum` — the Section 3.2.1 derivation
  checks (geometric mixture of Erlangs is exponential in the limit).
"""

from .theorem1 import mod_density, mod_distribution_distance_from_uniform
from .busy_idle import (
    avf_step_mttf_busy_idle,
    busy_idle_mttf_closed_form,
    figure3_curves,
    relative_error_busy_idle,
)
from .sofr_halfnormal import (
    figure4_curve,
    halfnormal_component_mttf,
    halfnormal_system_mttf_exact,
    halfnormal_system_mttf_sofr,
)
from .geometric_sum import geometric_erlang_mixture_pdf

__all__ = [
    "mod_density",
    "mod_distribution_distance_from_uniform",
    "avf_step_mttf_busy_idle",
    "busy_idle_mttf_closed_form",
    "figure3_curves",
    "relative_error_busy_idle",
    "figure4_curve",
    "halfnormal_component_mttf",
    "halfnormal_system_mttf_exact",
    "halfnormal_system_mttf_sofr",
    "geometric_erlang_mixture_pdf",
]
