"""Section 3.2.2: the SOFR counter-example (Figure 4).

A component whose (architecturally masked) time to failure has density
``f(x) = (2/√π) e^{-x²}`` — close to exponential but not exponential.
Its MTTF is ``1/√π``. For a series system of ``N`` such components the
exact MTTF is ``E[min] = ∫_0^∞ erfc(y)^N dy`` (numerically integrated,
exactly as the paper does with "a software package"), while the SOFR
step — fed the *true* component MTTFs — predicts ``1/(N·√π)``.

Figure 4 plots the relative error, growing from ~15% at N=2 to ~32% at
N=32.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import integrate
from scipy.special import erfc

from ..errors import ConfigurationError


def halfnormal_component_mttf() -> float:
    """Component MTTF: ``E[X] = (2/√π)∫ x e^{-x²} dx = 1/√π``."""
    return 1.0 / math.sqrt(math.pi)


def halfnormal_system_mttf_exact(n_components: int) -> float:
    """Exact MTTF of the N-component series system: ``∫ erfc(y)^N dy``."""
    if n_components < 1:
        raise ConfigurationError(
            f"need at least one component, got {n_components}"
        )

    def integrand(y: float) -> float:
        return float(erfc(y)) ** n_components

    value, _abserr = integrate.quad(integrand, 0.0, np.inf, limit=200)
    return value


def halfnormal_system_mttf_sofr(n_components: int) -> float:
    """SOFR prediction with true component MTTFs: ``1/(N·√π)``."""
    if n_components < 1:
        raise ConfigurationError(
            f"need at least one component, got {n_components}"
        )
    return 1.0 / (n_components * math.sqrt(math.pi))


def halfnormal_relative_error(n_components: int) -> float:
    """Figure-4 quantity: ``|MTTF_sofr - MTTF_exact| / MTTF_exact``."""
    exact = halfnormal_system_mttf_exact(n_components)
    sofr = halfnormal_system_mttf_sofr(n_components)
    return abs(sofr - exact) / exact


@dataclass(frozen=True)
class Figure4Point:
    """One point of the Figure-4 curve."""

    n_components: int
    exact_mttf: float
    sofr_mttf: float
    relative_error: float


def figure4_curve(
    component_counts: tuple[int, ...] = (2, 4, 8, 16, 32),
) -> list[Figure4Point]:
    """Regenerate Figure 4 (error of SOFR for N = 2..32)."""
    points = []
    for n in component_counts:
        exact = halfnormal_system_mttf_exact(n)
        sofr = halfnormal_system_mttf_sofr(n)
        points.append(
            Figure4Point(
                n_components=n,
                exact_mttf=exact,
                sofr_mttf=sofr,
                relative_error=abs(sofr - exact) / exact,
            )
        )
    return points
