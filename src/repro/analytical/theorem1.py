"""Theorem 1 (Appendix A): the distribution of ``T mod L``.

For ``T ~ Exponential(λ)`` and a loop of length ``L``, the cycle offset
``X = T mod L`` has density

    ``f_X(x) = λ e^{-λx} / (1 - e^{-λL})``,  ``x ∈ [0, L]``,

which converges to the uniform density ``1/L`` as ``λL → 0``. This is
the mathematical basis of the AVF step: in the limit, every cycle of the
loop is equally likely to host the next raw error, so the time-average
vulnerability (the AVF) is the exact per-error failure probability.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError


def mod_density(x, lam: float, loop_length: float):
    """Exact density of ``T mod L`` at ``x`` (vectorised)."""
    if lam <= 0:
        raise ConfigurationError(f"rate must be positive, got {lam}")
    if loop_length <= 0:
        raise ConfigurationError(
            f"loop length must be positive, got {loop_length}"
        )
    x = np.asarray(x, dtype=float)
    if np.any((x < 0) | (x > loop_length)):
        raise ConfigurationError("x must lie in [0, L]")
    denominator = -math.expm1(-lam * loop_length)
    return lam * np.exp(-lam * x) / denominator


def mod_cdf(x, lam: float, loop_length: float):
    """Exact CDF of ``T mod L`` (vectorised)."""
    if lam <= 0:
        raise ConfigurationError(f"rate must be positive, got {lam}")
    if loop_length <= 0:
        raise ConfigurationError(
            f"loop length must be positive, got {loop_length}"
        )
    x = np.asarray(x, dtype=float)
    if np.any((x < 0) | (x > loop_length)):
        raise ConfigurationError("x must lie in [0, L]")
    return -np.expm1(-lam * x) / (-math.expm1(-lam * loop_length))


def mod_distribution_distance_from_uniform(
    lam: float, loop_length: float
) -> float:
    """Total-variation distance between ``T mod L`` and Uniform[0, L].

    ``TV = (1/2) ∫ |f_X(x) - 1/L| dx``. The density crosses ``1/L`` at a
    single point ``x* = ln(λL / (1 - e^{-λL})) / λ``, so the integral has
    a closed form. Tends to 0 as ``λL → 0`` (Theorem 1) and quantifies
    how non-uniform the strike position is for larger ``λL`` — the root
    cause of the AVF-step error.
    """
    if lam <= 0 or loop_length <= 0:
        raise ConfigurationError("rate and loop length must be positive")
    a = lam * loop_length
    denom = -math.expm1(-a)  # 1 - e^{-aL}
    # x* where f(x*) = 1/L:  λL e^{-λx} = 1 - e^{-λL}
    x_star = math.log(a / denom) / lam
    x_star = min(max(x_star, 0.0), loop_length)
    # ∫_0^{x*} (f - 1/L) dx = F(x*) - x*/L
    f_cdf = -math.expm1(-lam * x_star) / denom
    tv_half = f_cdf - x_star / loop_length
    return max(tv_half, 0.0)


def uniform_limit_error_bound(lam: float, loop_length: float) -> float:
    """A simple upper bound on the non-uniformity: ``λL/2``.

    ``f_X`` spans ``[λe^{-λL}/(1-e^{-λL}), λ/(1-e^{-λL})]``; its relative
    deviation from ``1/L`` is at most ``O(λL)``, so ``λL/2`` bounds the
    total-variation distance for small ``λL``.
    """
    if lam <= 0 or loop_length <= 0:
        raise ConfigurationError("rate and loop length must be positive")
    return 0.5 * lam * loop_length
