"""repro — reproduction of "Architecture-Level Soft Error Analysis:
Examining the Limits of Common Assumptions" (Li, Adve, Bose, Rivers,
DSN 2007).

The library answers the paper's question — *when do the AVF and SOFR
steps of the standard soft-error MTTF methodology break down?* — with a
complete toolchain:

* a cycle-level out-of-order processor model (:mod:`repro.microarch`)
  producing masking traces for SPEC-like workloads
  (:mod:`repro.workloads`);
* vulnerability-profile algebra (:mod:`repro.masking`) and raw-error-rate
  models (:mod:`repro.ser`);
* every MTTF method the paper studies (:mod:`repro.core`): the AVF step,
  the SOFR step, Monte-Carlo simulation, exact first-principles closed
  forms, and SoftArch — all behind one pluggable estimator registry
  (:mod:`repro.methods`);
* the Section-3 analytical models (:mod:`repro.analytical`) and the
  experiment harness regenerating every table and figure
  (:mod:`repro.harness`).

Quickstart — compare any registered methods on a system with the
``analyze`` facade::

    import repro

    profile = repro.busy_idle_profile(busy_time=repro.days(0.5),
                                      period=repro.days(1))
    component = repro.Component("cache", rate_per_second=1e-7,
                                profile=profile)
    system = repro.SystemModel([component])

    result = (
        repro.analyze(system, label="cache")
        .using("avf_sofr", "hybrid")     # any repro.methods.available()
        .against("exact")                # or "monte_carlo" (the paper)
        .run()
    )
    print(result[0].error("avf_sofr"))   # signed relative error
    print(result.to_json())              # serializable artifact
    print(repro.validity_report(system).summary())

Many systems at once — with per-component memoization and optional
thread fan-out — go through the batch engine::

    clusters = [
        (f"C={c}", repro.SystemModel(
            [repro.Component("node", 1e-7, profile, multiplicity=c)]))
        for c in (8, 5000, 50000)
    ]
    results = repro.evaluate_design_space(
        clusters, methods=["sofr_only", "hybrid"], workers=4)

New estimation methods plug in with
:func:`repro.methods.register_method` and are immediately usable from
``analyze``, ``evaluate_design_space``, ``compare_methods`` and the
``repro-experiments`` CLI. The pre-registry free functions
(``avf_sofr_mttf``, ``monte_carlo_mttf``, ...) remain available.
"""

from .core import (
    Component,
    MethodComparison,
    MonteCarloConfig,
    PAPER_TRIAL_COUNT,
    Regime,
    StoppingRule,
    SystemModel,
    ValidityReport,
    avf_mttf,
    avf_sofr_mttf,
    compare_methods,
    exact_component_mttf,
    first_principles_mttf,
    monte_carlo_component_mttf,
    monte_carlo_mttf,
    softarch_component_mttf,
    softarch_mttf,
    sofr_mttf_from_components,
    sofr_mttf_from_values,
    validity_report,
)
from . import methods
from .methods import (
    Analysis,
    BudgetLedger,
    ComponentCache,
    DiskCache,
    MethodConfig,
    ResultSet,
    analyze,
    evaluate_design_space,
    ledger_path,
    merge_result_sets,
    register_method,
)
from .masking import (
    MaskingTrace,
    NestedProfile,
    PiecewiseProfile,
    busy_idle_profile,
    from_cycle_mask,
    profile_from_dict,
)
from .reliability import FailureProcess, MTTFEstimate
from .ser import ComponentErrorModel, component_rate_per_second
from .units import (
    BASE_CLOCK_HZ,
    BASELINE_RATE_PER_BIT_YEAR,
    SECONDS_PER_DAY,
    SECONDS_PER_WEEK,
    SECONDS_PER_YEAR,
    days,
    hours,
    years,
)

__version__ = "1.0.0"

__all__ = [
    "Analysis",
    "BudgetLedger",
    "ComponentCache",
    "Component",
    "DiskCache",
    "MethodComparison",
    "MethodConfig",
    "ResultSet",
    "analyze",
    "evaluate_design_space",
    "ledger_path",
    "merge_result_sets",
    "methods",
    "register_method",
    "MonteCarloConfig",
    "StoppingRule",
    "PAPER_TRIAL_COUNT",
    "Regime",
    "SystemModel",
    "ValidityReport",
    "avf_mttf",
    "avf_sofr_mttf",
    "compare_methods",
    "exact_component_mttf",
    "first_principles_mttf",
    "monte_carlo_component_mttf",
    "monte_carlo_mttf",
    "softarch_component_mttf",
    "softarch_mttf",
    "sofr_mttf_from_components",
    "sofr_mttf_from_values",
    "validity_report",
    "MaskingTrace",
    "NestedProfile",
    "PiecewiseProfile",
    "busy_idle_profile",
    "from_cycle_mask",
    "profile_from_dict",
    "FailureProcess",
    "MTTFEstimate",
    "ComponentErrorModel",
    "component_rate_per_second",
    "BASE_CLOCK_HZ",
    "BASELINE_RATE_PER_BIT_YEAR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_WEEK",
    "SECONDS_PER_YEAR",
    "days",
    "hours",
    "years",
]
