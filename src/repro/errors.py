"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters."""


class ProfileError(ReproError):
    """A vulnerability profile is malformed or used inconsistently."""


class TraceError(ReproError):
    """An instruction or masking trace is malformed."""


class SimulationError(ReproError):
    """The microarchitecture simulator reached an inconsistent state."""


class EstimationError(ReproError):
    """A reliability estimate could not be computed (e.g. no failures)."""


class WireError(ReproError):
    """A wire frame was torn, malformed, or spoke the wrong schema."""


class DesignSpaceError(ReproError):
    """A design-space sweep was given an invalid specification."""
