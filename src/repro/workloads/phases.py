"""Phase analysis of masking traces.

The paper's central workload parameter is "the length of the full
execution or the *longest repeated phase* of the workload" — the L in
λ·L. For synthesized workloads L is declared; for measured masking
traces it must be estimated. This module provides simple, dependable
phase analytics:

* :func:`windowed_utilization` — mean vulnerability per fixed window
  (the standard phase-visualisation transform);
* :func:`detect_phases` — greedy mean-shift segmentation of the
  windowed signal into phases;
* :func:`longest_phase` / :func:`phase_summary` — the quantities the
  validity analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TraceError


def windowed_utilization(
    mask: np.ndarray, window: int
) -> np.ndarray:
    """Mean vulnerability over consecutive windows of ``window`` cycles.

    The trailing partial window (if any) is dropped — phase analysis
    wants equal-sized observations.
    """
    mask = np.asarray(mask, dtype=float)
    if mask.ndim != 1 or mask.size == 0:
        raise TraceError("mask must be a non-empty 1-D array")
    if window < 1:
        raise TraceError(f"window must be >= 1, got {window}")
    n_windows = mask.size // window
    if n_windows == 0:
        raise TraceError(
            f"window {window} longer than the trace ({mask.size} cycles)"
        )
    return mask[: n_windows * window].reshape(n_windows, window).mean(axis=1)


@dataclass(frozen=True)
class Phase:
    """One detected phase: [start, end) in window units, mean level."""

    start: int
    end: int
    level: float

    @property
    def length(self) -> int:
        return self.end - self.start


def detect_phases(
    signal: np.ndarray, threshold: float = 0.1, min_length: int = 2
) -> list[Phase]:
    """Greedy mean-shift segmentation of a utilisation signal.

    A new phase starts whenever the next sample deviates from the
    running phase mean by more than ``threshold`` (absolute, in
    utilisation units) and the current phase has reached ``min_length``
    samples. Simple, deterministic, and adequate for the step-like
    phase structure architectural utilisation exhibits.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1 or signal.size == 0:
        raise TraceError("signal must be a non-empty 1-D array")
    if threshold <= 0:
        raise TraceError(f"threshold must be positive, got {threshold}")
    if min_length < 1:
        raise TraceError(f"min_length must be >= 1, got {min_length}")
    phases: list[Phase] = []
    start = 0
    total = signal[0]
    count = 1
    for i in range(1, signal.size):
        mean = total / count
        if abs(signal[i] - mean) > threshold and count >= min_length:
            phases.append(Phase(start=start, end=i, level=mean))
            start = i
            total = signal[i]
            count = 1
        else:
            total += signal[i]
            count += 1
    phases.append(Phase(start=start, end=signal.size, level=total / count))
    return phases


def longest_phase(phases: list[Phase]) -> Phase:
    """The longest detected phase (ties broken toward the earliest)."""
    if not phases:
        raise TraceError("no phases given")
    return max(phases, key=lambda p: (p.length, -p.start))


@dataclass(frozen=True)
class PhaseSummary:
    """Phase statistics of one component's masking trace."""

    n_phases: int
    longest_phase_cycles: int
    mean_level: float
    level_spread: float  # max phase level - min phase level

    @property
    def has_phase_structure(self) -> bool:
        """More than one phase with materially different levels."""
        return self.n_phases > 1 and self.level_spread > 0.05


def phase_summary(
    mask: np.ndarray, window: int, threshold: float = 0.1
) -> PhaseSummary:
    """Detect phases in a per-cycle mask and summarise them.

    The ``longest_phase_cycles`` output is the trace-measured analogue
    of the paper's L parameter: with raw rate λ, the product
    ``λ × longest_phase × cycle_time`` governs AVF-step validity for
    workloads dominated by that phase.
    """
    signal = windowed_utilization(mask, window)
    phases = detect_phases(signal, threshold=threshold)
    levels = [p.level for p in phases]
    return PhaseSummary(
        n_phases=len(phases),
        longest_phase_cycles=longest_phase(phases).length * window,
        mean_level=float(signal.mean()),
        level_spread=float(max(levels) - min(levels)),
    )
