"""The paper's synthesized long-running workloads (Section 4.2).

These model "real world workloads [that] show large differences in
behavior over long time scales" which SPEC cannot capture:

* ``day``    — a 24-hour loop, busy during the day, idle at night;
* ``week``   — a one-week loop, busy the five business days, idle the
  weekend;
* ``combined`` — two SPEC benchmarks concatenated into a 24-hour loop,
  each half running one benchmark (its masking trace repeating inside
  the half).

For ``day``/``week`` a component is a full processor that "masks raw
errors only during the idle portion of the workload", i.e. the
vulnerability is 1 while busy and 0 while idle.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..masking.profile import (
    NestedProfile,
    PiecewiseProfile,
    busy_idle_profile,
)
from ..units import SECONDS_PER_DAY, SECONDS_PER_WEEK


def day_workload(busy_fraction: float = 0.5) -> PiecewiseProfile:
    """The ``day`` workload: 24-hour loop, busy for ``busy_fraction``."""
    if not 0 < busy_fraction <= 1:
        raise ConfigurationError(
            f"busy fraction must be in (0, 1], got {busy_fraction}"
        )
    return busy_idle_profile(
        busy_fraction * SECONDS_PER_DAY, SECONDS_PER_DAY
    )


def week_workload(busy_days: float = 5.0) -> PiecewiseProfile:
    """The ``week`` workload: 7-day loop, busy the first ``busy_days``."""
    if not 0 < busy_days <= 7:
        raise ConfigurationError(
            f"busy days must be in (0, 7], got {busy_days}"
        )
    return busy_idle_profile(busy_days * SECONDS_PER_DAY, SECONDS_PER_WEEK)


def combined_workload(
    first: PiecewiseProfile,
    second: PiecewiseProfile,
    period: float = SECONDS_PER_DAY,
) -> NestedProfile:
    """The ``combined`` workload: two benchmarks in one loop.

    The first half of each iteration cycles ``first``'s vulnerability
    profile (one benchmark's masking trace), the second half cycles
    ``second``'s — the paper's construction with two SPEC benchmarks and
    a 24-hour iteration.
    """
    if period <= 0:
        raise ConfigurationError(f"period must be positive, got {period}")
    half = period / 2.0
    return NestedProfile([(half, first), (half, second)])
