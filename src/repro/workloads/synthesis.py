"""Statistical instruction-trace synthesis.

Turns a :class:`~repro.workloads.spec.BenchmarkProfile` into a dynamic
instruction stream whose statistics match the profile:

* a static CFG skeleton of ``static_blocks`` basic blocks, each with a
  fixed op skeleton and a **branch personality** — most static branches
  are strongly biased one way (mispredicted rarely by a bimodal
  predictor), a profile-controlled minority are data-dependent coin
  flips — visited by a random walk, which yields realistic I-cache and
  branch-predictor behaviour;
* per-instruction operands drawn with geometric dependence distances
  over a recent-producer window, plus a set of long-lived "global"
  registers (stack/base pointers, loop invariants) that keep part of the
  register file live for long stretches;
* memory addresses split between sequential streams (one miss per cache
  line) and a three-tier locality model (hot 16KB / warm <=1MB / cold
  full working set) for the irregular component;
* optional two-phase modulation (compute-leaning vs memory-leaning),
  giving the within-benchmark time structure the masking traces need.

The generator is fully deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..microarch.isa import (
    FP_REG_BASE,
    InstructionRecord,
    OpClass,
)
from .spec import BenchmarkProfile

#: Long-lived integer registers (stack/frame/base pointers, globals):
#: written in a preamble, then read throughout, rarely rewritten.
_INT_GLOBALS = tuple(range(1, 9))
_FP_GLOBALS = tuple(range(FP_REG_BASE, FP_REG_BASE + 4))
#: Rotating destination pools for ordinary values.
_INT_DEST_POOL = tuple(range(9, 32))
_FP_DEST_POOL = tuple(range(FP_REG_BASE + 4, FP_REG_BASE + 32))

#: Probability a source operand reads a global instead of a recent value.
_GLOBAL_SRC_PROB = 0.20
#: Probability a biased branch deviates from its preferred direction.
_BRANCH_NOISE = 0.03
#: Control-flow locality: size of the hot loop set and the probability a
#: taken branch escapes it to a fresh code region.
_LOOP_SET_SIZE = 12
_LOOP_ESCAPE_PROB = 0.06
#: Three-tier locality of non-streaming memory accesses.
_HOT_BYTES = 16 * 1024
_WARM_BYTES = 1024 * 1024
_HOT_PROB = 0.75
_WARM_PROB = 0.18

#: Source-register counts per op class.
_N_SRCS = {
    OpClass.INT_ALU: 2,
    OpClass.INT_MUL: 2,
    OpClass.INT_DIV: 2,
    OpClass.FP_ADD: 2,
    OpClass.FP_MUL: 2,
    OpClass.FP_DIV: 2,
    OpClass.LOAD: 1,
    OpClass.STORE: 2,
}


class _BlockSkeleton:
    """One static basic block: op classes, pc, and branch personality."""

    __slots__ = ("ops", "base_pc", "taken_direction", "is_random")

    def __init__(self, ops, base_pc, taken_direction, is_random):
        self.ops = ops
        self.base_pc = base_pc
        self.taken_direction = taken_direction
        self.is_random = is_random


def _phase_mix(profile: BenchmarkProfile, phase: int) -> dict:
    """Mix for the given phase index (alternating modulation)."""
    if profile.phase_length <= 0 or profile.phase_intensity <= 0:
        return profile.mix
    # Even phases lean on memory, odd phases on compute.
    shift = profile.phase_intensity
    mix = dict(profile.mix)
    factor_mem = 1.0 + shift if phase % 2 == 0 else max(1.0 - shift, 0.05)
    for op in (OpClass.LOAD, OpClass.STORE):
        if op in mix:
            mix[op] = mix[op] * factor_mem
    return mix


def _draw_ops(rng, mix: dict, count: int) -> list[OpClass]:
    classes = list(mix.keys())
    weights = np.asarray([mix[c] for c in classes], dtype=float)
    weights = weights / weights.sum()
    indices = rng.choice(len(classes), size=count, p=weights)
    return [classes[i] for i in indices]


class _TraceBuilder:
    """Mutable state of one synthesis run."""

    def __init__(self, profile: BenchmarkProfile, rng: np.random.Generator):
        self.profile = profile
        self.rng = rng
        self.trace: list[InstructionRecord] = []
        self.recent_int: list[int] = list(_INT_GLOBALS)
        self.recent_fp: list[int] = list(_FP_GLOBALS)
        self.stream_addr = 0x4000_0000
        self.int_dest_cursor = 0
        self.fp_dest_cursor = 0
        self.dep_p = min(1.0 / profile.mean_dep_distance, 1.0)
        working = max(profile.working_set_bytes, _HOT_BYTES)
        self.hot_span = min(working, _HOT_BYTES)
        self.warm_span = min(working, _WARM_BYTES)
        self.cold_span = working

    # -- operand helpers ------------------------------------------------

    def pick_src(self, is_fp: bool) -> int:
        rng = self.rng
        if rng.random() < _GLOBAL_SRC_PROB:
            pool = _FP_GLOBALS if is_fp else _INT_GLOBALS
            return int(pool[int(rng.integers(len(pool)))])
        pool = self.recent_fp if is_fp else self.recent_int
        distance = min(int(rng.geometric(self.dep_p)), len(pool))
        return pool[-distance]

    def next_dest(self, is_fp: bool) -> int:
        if is_fp:
            dest = _FP_DEST_POOL[self.fp_dest_cursor % len(_FP_DEST_POOL)]
            self.fp_dest_cursor += 1
        else:
            dest = _INT_DEST_POOL[self.int_dest_cursor % len(_INT_DEST_POOL)]
            self.int_dest_cursor += 1
        return dest

    def note_dest(self, dest: int) -> None:
        if dest >= FP_REG_BASE:
            self.recent_fp.append(dest)
            if len(self.recent_fp) > 64:
                del self.recent_fp[:32]
        else:
            self.recent_int.append(dest)
            if len(self.recent_int) > 64:
                del self.recent_int[:32]

    def memory_address(self) -> int:
        rng = self.rng
        if rng.random() < self.profile.streaming_fraction:
            self.stream_addr = (self.stream_addr + 8) & 0x7FFF_FFFF
            return self.stream_addr
        roll = rng.random()
        if roll < _HOT_PROB:
            span = self.hot_span
        elif roll < _HOT_PROB + _WARM_PROB:
            span = self.warm_span
        else:
            span = self.cold_span
        return 0x4000_0000 + (int(rng.integers(0, span)) & ~7)

    # -- emission --------------------------------------------------------

    def emit_preamble(self) -> None:
        """Define the global registers so their long lives are real."""
        pc = 0x0FFF_0000
        for reg in (*_INT_GLOBALS, *_FP_GLOBALS):
            self.trace.append(
                InstructionRecord(
                    op=OpClass.INT_ALU if reg < FP_REG_BASE else OpClass.FP_ADD,
                    dest=reg,
                    srcs=(),
                    pc=pc,
                )
            )
            pc += 4

    def emit_op(self, op: OpClass, pc: int) -> None:
        is_fp_op = op.is_fp
        srcs = tuple(self.pick_src(is_fp_op) for _ in range(_N_SRCS[op]))
        dest = None
        mem_addr = None
        if op is OpClass.LOAD:
            fp_load = self.rng.random() < (
                0.5 if self.profile.suite == "fp" else 0.05
            )
            dest = self.next_dest(fp_load)
        elif op is not OpClass.STORE:
            dest = self.next_dest(is_fp_op)
        if op.is_memory:
            mem_addr = self.memory_address()
        self.trace.append(
            InstructionRecord(
                op=op, dest=dest, srcs=srcs, pc=pc, mem_addr=mem_addr
            )
        )
        if dest is not None:
            self.note_dest(dest)

    def emit_branch(self, skeleton: _BlockSkeleton, pc: int) -> bool:
        rng = self.rng
        if skeleton.is_random:
            taken = bool(rng.random() < 0.5)
        else:
            flip = rng.random() < _BRANCH_NOISE
            taken = skeleton.taken_direction != flip
        self.trace.append(
            InstructionRecord(
                op=OpClass.BRANCH,
                srcs=(self.pick_src(False),),
                pc=pc,
                taken=taken,
            )
        )
        return taken


def synthesize_trace(
    profile: BenchmarkProfile,
    n_instructions: int,
    seed: int = 0,
) -> list[InstructionRecord]:
    """Generate a dynamic trace with the profile's statistics.

    Parameters
    ----------
    profile:
        Benchmark description (see :class:`BenchmarkProfile`).
    n_instructions:
        Length of the dynamic stream (the paper uses 1e8; tests and
        benchmarks use shorter windows — see DESIGN.md on why this is
        conservative for the reproduced claims).
    seed:
        Generator seed; identical inputs yield identical traces.
    """
    if n_instructions < 1:
        raise ConfigurationError(
            f"need at least one instruction, got {n_instructions}"
        )
    rng = np.random.default_rng(seed)

    mean_block = max(1.0 / profile.branch_fraction - 1.0, 1.0)
    n_blocks = profile.static_blocks

    skeletons: list[_BlockSkeleton] = []
    pc = 0x1000_0000
    base_mix = profile.mix
    for _ in range(n_blocks):
        size = int(rng.geometric(1.0 / mean_block))
        size = max(1, min(size, 40))
        ops = _draw_ops(rng, base_mix, size)
        is_random = rng.random() < profile.random_branch_fraction
        taken_direction = bool(rng.random() < profile.branch_taken_bias)
        skeletons.append(
            _BlockSkeleton(ops, pc, taken_direction, is_random)
        )
        pc += 4 * (size + 1)  # +1 for the terminating branch

    builder = _TraceBuilder(profile, rng)
    builder.emit_preamble()

    # Control flow visits a slowly rotating hot set of blocks (loops),
    # occasionally escaping to a fresh region — real programs spend most
    # of their time in small loop nests, which is what gives branch
    # predictors and I-caches their hit rates.
    loop_set = list(rng.integers(0, n_blocks, size=_LOOP_SET_SIZE))
    block_index = loop_set[0]
    phase = 0
    while len(builder.trace) < n_instructions:
        if profile.phase_length > 0:
            phase = len(builder.trace) // profile.phase_length
        mix = _phase_mix(profile, phase)
        skeleton = skeletons[block_index]
        pc = skeleton.base_pc
        ops = skeleton.ops
        if mix is not base_mix:
            # Resample this visit's ops under the phase mix, keeping the
            # block length (hence pcs and branch structure) fixed.
            ops = _draw_ops(rng, mix, len(ops))
        for op in ops:
            if len(builder.trace) >= n_instructions:
                break
            builder.emit_op(op, pc)
            pc += 4
        if len(builder.trace) >= n_instructions:
            break
        taken = builder.emit_branch(skeleton, pc)
        if taken:
            if rng.random() < _LOOP_ESCAPE_PROB:
                fresh = int(rng.integers(n_blocks))
                loop_set[int(rng.integers(_LOOP_SET_SIZE))] = fresh
                block_index = fresh
            else:
                block_index = loop_set[int(rng.integers(_LOOP_SET_SIZE))]
        else:
            block_index = (block_index + 1) % n_blocks
    return builder.trace[:n_instructions]
