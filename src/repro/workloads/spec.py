"""Statistical profiles of the SPEC CPU2000 benchmarks.

Each profile captures the architecture-visible statistics of one
benchmark, drawn from the published characterisation literature
(instruction mixes and branch/cache behaviour as reported in SPEC
CPU2000 characterisation studies). Values are representative
approximations — the reproduction needs realistic *diversity* of
utilisation levels and phase structure across benchmarks, not bit-exact
SPEC semantics (see DESIGN.md, substitution table).

The paper uses 9 integer and 12 floating-point benchmarks; so do we.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..microarch.isa import OpClass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical description of one benchmark.

    Attributes
    ----------
    name / suite:
        Benchmark identity; ``suite`` is ``"int"`` or ``"fp"``.
    mix:
        Relative frequencies of non-branch op classes (normalised by the
        synthesizer).
    branch_fraction:
        Fraction of dynamic instructions that are branches (sets the
        mean basic-block length).
    branch_taken_bias:
        Probability a biased branch is taken.
    random_branch_fraction:
        Fraction of *static* branches that are data-dependent coin flips
        — the knob controlling the mispredict rate (a bimodal predictor
        mispredicts those ~50% of the time).
    mean_dep_distance:
        Mean distance (in instructions) between a value's producer and
        its consumers; shorter = less ILP.
    working_set_bytes:
        Memory footprint touched by random accesses; drives cache miss
        rates.
    streaming_fraction:
        Fraction of memory accesses that walk sequentially (prefetch
        friendly, L1-resident for small strides).
    static_blocks:
        Static code footprint in basic blocks; drives I-cache behaviour.
    phase_length:
        Instructions per behavioural phase (0 = phase-free). Benchmarks
        alternate between a compute-leaning and a memory-leaning phase,
        giving the masking traces their within-benchmark time structure.
    phase_intensity:
        How strongly the mix shifts between phases (0..1).
    """

    name: str
    suite: str
    mix: dict = field(default_factory=dict)
    branch_fraction: float = 0.15
    branch_taken_bias: float = 0.65
    random_branch_fraction: float = 0.12
    mean_dep_distance: float = 6.0
    working_set_bytes: int = 8 * 1024 * 1024
    streaming_fraction: float = 0.5
    static_blocks: int = 2000
    phase_length: int = 0
    phase_intensity: float = 0.0

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ConfigurationError(
                f"{self.name}: suite must be 'int' or 'fp'"
            )
        if not self.mix:
            raise ConfigurationError(f"{self.name}: empty instruction mix")
        if any(v < 0 for v in self.mix.values()) or sum(self.mix.values()) <= 0:
            raise ConfigurationError(f"{self.name}: invalid mix weights")
        if OpClass.BRANCH in self.mix:
            raise ConfigurationError(
                f"{self.name}: branches are controlled by branch_fraction"
            )
        if not 0 < self.branch_fraction < 0.5:
            raise ConfigurationError(
                f"{self.name}: branch fraction out of range"
            )
        if not 0 <= self.random_branch_fraction <= 1:
            raise ConfigurationError(
                f"{self.name}: random branch fraction out of range"
            )
        if not 0 <= self.branch_taken_bias <= 1:
            raise ConfigurationError(f"{self.name}: taken bias out of range")
        if self.mean_dep_distance < 1:
            raise ConfigurationError(f"{self.name}: dep distance must be >= 1")
        if self.working_set_bytes < 4096:
            raise ConfigurationError(f"{self.name}: working set too small")
        if not 0 <= self.streaming_fraction <= 1:
            raise ConfigurationError(
                f"{self.name}: streaming fraction out of range"
            )
        if self.static_blocks < 1:
            raise ConfigurationError(f"{self.name}: need >= 1 static block")
        if self.phase_length < 0 or not 0 <= self.phase_intensity <= 1:
            raise ConfigurationError(f"{self.name}: bad phase parameters")


def _int_mix(load, store, alu, mul=0.01, div=0.002):
    return {
        OpClass.LOAD: load,
        OpClass.STORE: store,
        OpClass.INT_ALU: alu,
        OpClass.INT_MUL: mul,
        OpClass.INT_DIV: div,
    }


def _fp_mix(load, store, alu, fadd, fmul, fdiv=0.01, imul=0.005):
    return {
        OpClass.LOAD: load,
        OpClass.STORE: store,
        OpClass.INT_ALU: alu,
        OpClass.INT_MUL: imul,
        OpClass.FP_ADD: fadd,
        OpClass.FP_MUL: fmul,
        OpClass.FP_DIV: fdiv,
    }


_MB = 1024 * 1024

#: The nine SPEC CPU2000 integer benchmarks the reproduction uses.
_SPEC_INT: tuple[BenchmarkProfile, ...] = (
    BenchmarkProfile(
        "gzip", "int", _int_mix(0.24, 0.09, 0.48),
        branch_fraction=0.17, random_branch_fraction=0.12,
        mean_dep_distance=4.5, working_set_bytes=2 * _MB,
        streaming_fraction=0.75, static_blocks=900,
        phase_length=40_000, phase_intensity=0.5,
    ),
    BenchmarkProfile(
        "vpr", "int", _int_mix(0.28, 0.11, 0.44),
        branch_fraction=0.14, random_branch_fraction=0.20,
        mean_dep_distance=5.0, working_set_bytes=4 * _MB,
        streaming_fraction=0.35, static_blocks=1800,
    ),
    BenchmarkProfile(
        "gcc", "int", _int_mix(0.26, 0.13, 0.38),
        branch_fraction=0.20, random_branch_fraction=0.14,
        mean_dep_distance=4.0, working_set_bytes=6 * _MB,
        streaming_fraction=0.40, static_blocks=12_000,
        phase_length=60_000, phase_intensity=0.4,
    ),
    BenchmarkProfile(
        "mcf", "int", _int_mix(0.31, 0.09, 0.40),
        branch_fraction=0.19, random_branch_fraction=0.18,
        mean_dep_distance=3.0, working_set_bytes=96 * _MB,
        streaming_fraction=0.10, static_blocks=500,
        phase_length=30_000, phase_intensity=0.6,
    ),
    BenchmarkProfile(
        "crafty", "int", _int_mix(0.27, 0.08, 0.50, mul=0.02),
        branch_fraction=0.12, random_branch_fraction=0.16,
        mean_dep_distance=5.5, working_set_bytes=2 * _MB,
        streaming_fraction=0.50, static_blocks=3500,
    ),
    BenchmarkProfile(
        "parser", "int", _int_mix(0.25, 0.10, 0.45),
        branch_fraction=0.18, random_branch_fraction=0.14,
        mean_dep_distance=4.0, working_set_bytes=24 * _MB,
        streaming_fraction=0.30, static_blocks=2600,
    ),
    BenchmarkProfile(
        "perlbmk", "int", _int_mix(0.27, 0.14, 0.36),
        branch_fraction=0.21, random_branch_fraction=0.10,
        mean_dep_distance=4.2, working_set_bytes=12 * _MB,
        streaming_fraction=0.45, static_blocks=9000,
    ),
    BenchmarkProfile(
        "vortex", "int", _int_mix(0.29, 0.15, 0.35),
        branch_fraction=0.19, random_branch_fraction=0.08,
        mean_dep_distance=4.8, working_set_bytes=48 * _MB,
        streaming_fraction=0.40, static_blocks=11_000,
    ),
    BenchmarkProfile(
        "bzip2", "int", _int_mix(0.26, 0.10, 0.46),
        branch_fraction=0.16, random_branch_fraction=0.14,
        mean_dep_distance=4.5, working_set_bytes=32 * _MB,
        streaming_fraction=0.60, static_blocks=700,
        phase_length=50_000, phase_intensity=0.5,
    ),
)

#: The twelve SPEC CPU2000 floating-point benchmarks.
_SPEC_FP: tuple[BenchmarkProfile, ...] = (
    BenchmarkProfile(
        "wupwise", "fp", _fp_mix(0.28, 0.12, 0.14, 0.20, 0.22),
        branch_fraction=0.04, random_branch_fraction=0.02,
        mean_dep_distance=9.0, working_set_bytes=64 * _MB,
        streaming_fraction=0.70, static_blocks=600,
    ),
    BenchmarkProfile(
        "swim", "fp", _fp_mix(0.30, 0.09, 0.10, 0.26, 0.22),
        branch_fraction=0.02, random_branch_fraction=0.01,
        mean_dep_distance=12.0, working_set_bytes=192 * _MB,
        streaming_fraction=0.92, static_blocks=250,
        phase_length=80_000, phase_intensity=0.3,
    ),
    BenchmarkProfile(
        "mgrid", "fp", _fp_mix(0.34, 0.05, 0.10, 0.24, 0.24),
        branch_fraction=0.015, random_branch_fraction=0.01,
        mean_dep_distance=11.0, working_set_bytes=56 * _MB,
        streaming_fraction=0.88, static_blocks=300,
    ),
    BenchmarkProfile(
        "applu", "fp", _fp_mix(0.29, 0.10, 0.11, 0.23, 0.23, fdiv=0.02),
        branch_fraction=0.03, random_branch_fraction=0.01,
        mean_dep_distance=10.0, working_set_bytes=180 * _MB,
        streaming_fraction=0.85, static_blocks=800,
        phase_length=70_000, phase_intensity=0.4,
    ),
    BenchmarkProfile(
        "mesa", "fp", _fp_mix(0.25, 0.13, 0.26, 0.12, 0.14),
        branch_fraction=0.09, random_branch_fraction=0.06,
        mean_dep_distance=6.0, working_set_bytes=10 * _MB,
        streaming_fraction=0.55, static_blocks=4000,
    ),
    BenchmarkProfile(
        "galgel", "fp", _fp_mix(0.28, 0.07, 0.12, 0.24, 0.24),
        branch_fraction=0.05, random_branch_fraction=0.03,
        mean_dep_distance=10.0, working_set_bytes=24 * _MB,
        streaming_fraction=0.75, static_blocks=900,
    ),
    BenchmarkProfile(
        "art", "fp", _fp_mix(0.31, 0.06, 0.16, 0.20, 0.22),
        branch_fraction=0.05, random_branch_fraction=0.04,
        mean_dep_distance=7.0, working_set_bytes=4 * _MB,
        streaming_fraction=0.30, static_blocks=350,
        phase_length=45_000, phase_intensity=0.7,
    ),
    BenchmarkProfile(
        "equake", "fp", _fp_mix(0.33, 0.08, 0.14, 0.20, 0.20),
        branch_fraction=0.05, random_branch_fraction=0.03,
        mean_dep_distance=8.0, working_set_bytes=48 * _MB,
        streaming_fraction=0.50, static_blocks=700,
        phase_length=55_000, phase_intensity=0.6,
    ),
    BenchmarkProfile(
        "facerec", "fp", _fp_mix(0.27, 0.08, 0.16, 0.22, 0.22),
        branch_fraction=0.05, random_branch_fraction=0.03,
        mean_dep_distance=9.0, working_set_bytes=16 * _MB,
        streaming_fraction=0.65, static_blocks=1100,
    ),
    BenchmarkProfile(
        "ammp", "fp", _fp_mix(0.28, 0.10, 0.17, 0.19, 0.20, fdiv=0.03),
        branch_fraction=0.06, random_branch_fraction=0.05,
        mean_dep_distance=7.5, working_set_bytes=26 * _MB,
        streaming_fraction=0.45, static_blocks=1600,
    ),
    BenchmarkProfile(
        "lucas", "fp", _fp_mix(0.26, 0.10, 0.12, 0.25, 0.25),
        branch_fraction=0.02, random_branch_fraction=0.01,
        mean_dep_distance=12.0, working_set_bytes=140 * _MB,
        streaming_fraction=0.90, static_blocks=280,
    ),
    BenchmarkProfile(
        "apsi", "fp", _fp_mix(0.27, 0.12, 0.15, 0.21, 0.21),
        branch_fraction=0.04, random_branch_fraction=0.03,
        mean_dep_distance=9.5, working_set_bytes=192 * _MB,
        streaming_fraction=0.70, static_blocks=1400,
        phase_length=60_000, phase_intensity=0.4,
    ),
)

_ALL: dict[str, BenchmarkProfile] = {
    profile.name: profile for profile in (*_SPEC_INT, *_SPEC_FP)
}

SPEC_INT_NAMES: tuple[str, ...] = tuple(p.name for p in _SPEC_INT)
SPEC_FP_NAMES: tuple[str, ...] = tuple(p.name for p in _SPEC_FP)


def spec_benchmarks(suite: str | None = None) -> dict[str, BenchmarkProfile]:
    """All benchmark profiles, optionally restricted to one suite."""
    if suite is None:
        return dict(_ALL)
    if suite not in ("int", "fp"):
        raise ConfigurationError(f"unknown suite {suite!r}")
    return {
        name: prof for name, prof in _ALL.items() if prof.suite == suite
    }


def spec_benchmark(name: str) -> BenchmarkProfile:
    """Look up one benchmark profile by name."""
    if name not in _ALL:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; have {sorted(_ALL)}"
        )
    return _ALL[name]
