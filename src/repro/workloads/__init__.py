"""Workloads: SPEC CPU2000 statistical models and long-running loops.

The paper simulates 100M-instruction traces of 21 SPEC CPU2000
benchmarks (9 integer + 12 floating point) plus three synthesized
long-running workloads. SPEC binaries and reference inputs are
proprietary, so this package substitutes **statistical workload
synthesis**: each benchmark is described by its published architectural
characteristics (instruction mix, dependence distances, branch
behaviour, memory footprint, phase structure) and a seeded generator
emits a dynamic instruction stream with those statistics. What the
reproduced experiments need from SPEC is exactly these statistics — they
shape the masking trace's utilisation levels and phase lengths.

The synthesized long-running workloads of Section 4.2 are built in
:mod:`~repro.workloads.longrun`:

* ``day`` — a 24-hour loop, busy during the day, idle at night;
* ``week`` — a 7-day loop, busy five business days, idle the weekend;
* ``combined`` — two SPEC benchmarks concatenated in a 24-hour loop.
"""

from .spec import (
    SPEC_FP_NAMES,
    SPEC_INT_NAMES,
    BenchmarkProfile,
    spec_benchmark,
    spec_benchmarks,
)
from .synthesis import synthesize_trace
from .longrun import (
    combined_workload,
    day_workload,
    week_workload,
)
from .phases import (
    Phase,
    PhaseSummary,
    detect_phases,
    longest_phase,
    phase_summary,
    windowed_utilization,
)

__all__ = [
    "SPEC_FP_NAMES",
    "SPEC_INT_NAMES",
    "BenchmarkProfile",
    "spec_benchmark",
    "spec_benchmarks",
    "synthesize_trace",
    "combined_workload",
    "day_workload",
    "week_workload",
    "Phase",
    "PhaseSummary",
    "detect_phases",
    "longest_phase",
    "phase_summary",
    "windowed_utilization",
]
