"""The SOFR step (Section 2.3).

``FailureRate_sys = sum_i 1/MTTF_i`` and ``MTTF_sys = 1/FailureRate_sys``
— the industry-standard sum-of-failure-rates combination. The step
assumes each component's time to failure is exponential with constant
rate; Section 3.2 shows architectural masking can break this.

Two entry points are provided, matching how the paper isolates errors:

* :func:`avf_sofr_mttf` — the full AVF+SOFR pipeline (AVF-step component
  MTTFs fed into SOFR);
* :func:`sofr_mttf_from_components` — the SOFR step alone, fed with
  externally supplied component MTTFs ("In our SOFR experiments, we use
  component MTTFs obtained from the Monte Carlo method; therefore, the
  error reported is only that caused by the SOFR step", Section 4.2).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..reliability.metrics import MTTFEstimate
from ..reliability.series import sofr_mttf
from .avf import avf_mttf
from .system import Component, SystemModel


def avf_sofr_mttf(system: SystemModel) -> MTTFEstimate:
    """The complete AVF+SOFR method applied to a system (Figure 1)."""
    mttfs: list[float] = []
    for comp in system.components:
        component_mttf = avf_mttf(comp.rate_per_second, comp.profile)
        mttfs.extend([component_mttf] * comp.multiplicity)
    return MTTFEstimate(mttf_seconds=sofr_mttf(mttfs), method="avf+sofr")


def sofr_mttf_from_components(
    system: SystemModel,
    component_mttf: Callable[[Component], float],
) -> MTTFEstimate:
    """The SOFR step alone, with caller-supplied component MTTFs.

    ``component_mttf`` maps a single component *instance* to its MTTF in
    seconds; multiplicities are expanded here.
    """
    mttfs: list[float] = []
    for comp in system.components:
        value = component_mttf(comp)
        mttfs.extend([value] * comp.multiplicity)
    return MTTFEstimate(mttf_seconds=sofr_mttf(mttfs), method="sofr")


def sofr_mttf_from_values(
    component_mttfs: Sequence[float],
    multiplicities: Sequence[int] | None = None,
) -> MTTFEstimate:
    """The SOFR step on raw MTTF values (convenience for analytics)."""
    if multiplicities is None:
        values = list(component_mttfs)
    else:
        values = []
        for mttf, mult in zip(component_mttfs, multiplicities, strict=True):
            values.extend([mttf] * mult)
    return MTTFEstimate(mttf_seconds=sofr_mttf(values), method="sofr")
