"""Validity advisor: when is AVF+SOFR safe? (the paper's conclusions).

The paper's Section 3 analysis and Section 5 experiments identify three
parameters that govern whether the AVF and SOFR assumptions hold:

1. the per-component raw error rate (the paper's ``N x S x baseline``),
2. the number of components ``C`` the SOFR step sums over,
3. the workload's loop/phase length ``L``.

The controlling dimensionless quantity is the hazard mass per iteration,
``λ·V(L)`` (upper-bounded by ``λ·L``): both steps are exact in the limit
``λ·L → 0`` (Sections 3.1.1 and 3.2.1) and drift as it grows. This
module turns a :class:`~repro.core.system.SystemModel` into a structured
report mirroring the paper's guidance, with exact error bounds computed
from the closed forms when requested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from .avf import avf_mttf
from .firstprinciples import exact_component_mttf
from .system import Component, SystemModel


class Regime(Enum):
    """Where a configuration falls in the paper's design space."""

    SAFE = "safe"
    CAUTION = "caution"
    UNRELIABLE = "unreliable"


#: λ·V(L) below which the limit theorems apply essentially exactly;
#: the SPEC/uniprocessor points of Section 5.1 sit many orders below it.
SAFE_MASS_THRESHOLD = 1e-3

#: λ·V(L) above which Section 5 observed double-digit-percent errors.
UNRELIABLE_MASS_THRESHOLD = 1e-1

#: System-level hazard mass (C included) thresholds for the SOFR step.
SAFE_SYSTEM_MASS_THRESHOLD = 1e-2
UNRELIABLE_SYSTEM_MASS_THRESHOLD = 0.5


@dataclass(frozen=True)
class ComponentValidity:
    """Per-component AVF-step assessment."""

    name: str
    lambda_mass: float  # λ·V(L): hazard mass per iteration
    avf: float
    regime: Regime
    avf_step_error: float | None  # exact signed error when computed


@dataclass(frozen=True)
class ValidityReport:
    """Structured verdict on applying AVF+SOFR to a system."""

    components: list[ComponentValidity]
    system_mass: float  # Σ C_i·λ_i·V_i(L) per iteration
    component_count: int
    avf_regime: Regime
    sofr_regime: Regime
    notes: list[str]

    @property
    def overall_regime(self) -> Regime:
        order = [Regime.SAFE, Regime.CAUTION, Regime.UNRELIABLE]
        return max(
            (self.avf_regime, self.sofr_regime), key=order.index
        )

    def summary(self) -> str:
        lines = [
            f"AVF step:  {self.avf_regime.value}",
            f"SOFR step: {self.sofr_regime.value} "
            f"(C={self.component_count}, "
            f"system hazard mass/iteration={self.system_mass:.3g})",
        ]
        for comp in self.components:
            err = (
                f", exact AVF-step error={comp.avf_step_error:+.2%}"
                if comp.avf_step_error is not None
                else ""
            )
            lines.append(
                f"  {comp.name}: λ·V(L)={comp.lambda_mass:.3g}, "
                f"AVF={comp.avf:.3f} -> {comp.regime.value}{err}"
            )
        lines.extend(f"note: {n}" for n in self.notes)
        return "\n".join(lines)


def _classify_mass(mass: float, safe: float, unreliable: float) -> Regime:
    if mass < safe:
        return Regime.SAFE
    if mass < unreliable:
        return Regime.CAUTION
    return Regime.UNRELIABLE


def component_validity(
    component: Component, compute_exact_error: bool = True
) -> ComponentValidity:
    """Assess the AVF step for one component."""
    intensity = component.intensity
    mass = intensity.mass
    regime = _classify_mass(
        mass, SAFE_MASS_THRESHOLD, UNRELIABLE_MASS_THRESHOLD
    )
    error = None
    if compute_exact_error:
        exact = exact_component_mttf(
            component.rate_per_second, component.profile
        )
        approx = avf_mttf(component.rate_per_second, component.profile)
        if math.isfinite(exact) and math.isfinite(approx) and exact > 0:
            error = (approx - exact) / exact
    return ComponentValidity(
        name=component.name,
        lambda_mass=mass,
        avf=component.avf,
        regime=regime,
        avf_step_error=error,
    )


def validity_report(
    system: SystemModel, compute_exact_errors: bool = True
) -> ValidityReport:
    """Assess both AVF and SOFR steps for a system (paper's conclusions).

    The AVF verdict is the worst per-component verdict. The SOFR verdict
    classifies the *system* hazard mass per iteration — the quantity that
    grows with both C and per-component rates, exactly the combinations
    Figures 5/6 show failing.
    """
    comps = [
        component_validity(c, compute_exact_errors) for c in system.components
    ]
    system_mass = sum(
        c.multiplicity * c.intensity.mass for c in system.components
    )
    order = [Regime.SAFE, Regime.CAUTION, Regime.UNRELIABLE]
    avf_regime = max((c.regime for c in comps), key=order.index)
    sofr_regime = _classify_mass(
        system_mass,
        SAFE_SYSTEM_MASS_THRESHOLD,
        UNRELIABLE_SYSTEM_MASS_THRESHOLD,
    )
    notes = []
    if avf_regime is not Regime.SAFE:
        notes.append(
            "per-component hazard per iteration is not small; the AVF "
            "uniformity assumption (Section 3.1.1) is at risk — compare "
            "against first_principles_mttf before trusting AVF numbers"
        )
    if sofr_regime is not Regime.SAFE:
        notes.append(
            "system hazard per iteration is large (big C, big N*S, or "
            "long phases); the SOFR exponentiality assumption (Section "
            "3.2) is at risk — the masked TTF distribution departs from "
            "exponential (check FailureProcess.coefficient_of_variation)"
        )
    if not notes:
        notes.append(
            "configuration is in the regime where the paper validates "
            "AVF+SOFR (errors < 0.5%)"
        )
    return ValidityReport(
        components=comps,
        system_mass=system_mass,
        component_count=system.component_count,
        avf_regime=avf_regime,
        sofr_regime=sofr_regime,
        notes=notes,
    )
