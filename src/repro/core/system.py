"""System model: the common input to every MTTF method.

A *component* is the granularity at which architectural masking is
analysed (Section 4.2): a functional unit, a register file, a cache, or a
whole processor in a cluster. A *system* is a series collection of
components; ``multiplicity`` models ``C`` identical components (a
homogeneous cluster) without enumerating them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from ..masking.profile import VulnerabilityProfile
from ..reliability.hazard import (
    CyclicIntensity,
    NestedHazard,
    PiecewiseHazard,
    merge_piecewise,
)


@dataclass(frozen=True)
class Component:
    """One masked error source.

    Attributes
    ----------
    name:
        Label for reports.
    rate_per_second:
        Raw soft error rate of the component (errors/second) — the
        paper's lambda, before any architectural masking.
    profile:
        Cyclic vulnerability profile from the workload's masking trace.
    multiplicity:
        Number of identical, independent copies of this component in the
        system (the paper's C for homogeneous clusters).
    """

    name: str
    rate_per_second: float
    profile: VulnerabilityProfile
    multiplicity: int = 1

    def __post_init__(self) -> None:
        if self.rate_per_second < 0:
            raise ConfigurationError(
                f"{self.name}: raw rate must be non-negative, "
                f"got {self.rate_per_second}"
            )
        if self.multiplicity < 1:
            raise ConfigurationError(
                f"{self.name}: multiplicity must be >= 1, "
                f"got {self.multiplicity}"
            )

    @property
    def intensity(self) -> CyclicIntensity:
        """Failure intensity of a single copy (rate x vulnerability)."""
        return self.profile.to_hazard(self.rate_per_second)

    @property
    def content_fingerprint(self) -> str:
        """Stable digest of the *estimation identity* of one instance.

        Covers exactly what a single copy's MTTF depends on — the
        profile content and the raw rate. ``name`` (a label) and
        ``multiplicity`` (a system-level property) are deliberately
        excluded, so C identical components at every cluster size share
        one cache entry. Unlike ``id()``-based keys, this survives
        process boundaries and repeated CLI invocations.
        """
        digest = hashlib.sha256(b"component/v1:")
        digest.update(self.profile.fingerprint.encode("ascii"))
        digest.update(b"|")
        digest.update(float(self.rate_per_second).hex().encode("ascii"))
        return digest.hexdigest()

    def to_dict(self) -> dict:
        """Lossless plain-dict wire form (inverse of :meth:`from_dict`).

        The profile serializes through
        :meth:`~repro.masking.profile.VulnerabilityProfile.to_dict`, so
        the round trip preserves :attr:`content_fingerprint` exactly —
        a model shipped over the analysis service's HTTP API hits the
        same content-addressed cache entries as the in-process object.
        """
        return {
            "name": self.name,
            "rate_per_second": float(self.rate_per_second),
            "profile": self.profile.to_dict(),
            "multiplicity": self.multiplicity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Component":
        """Rebuild a component from its :meth:`to_dict` form."""
        from ..masking.profile import profile_from_dict

        try:
            return cls(
                name=str(data["name"]),
                rate_per_second=float(data["rate_per_second"]),
                profile=profile_from_dict(data["profile"]),
                multiplicity=int(data.get("multiplicity", 1)),
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"component wire form is missing {missing}"
            ) from None

    @property
    def lambda_l(self) -> float:
        """The paper's validity parameter ``lambda * L`` for this component.

        More precisely the hazard mass per period ``lambda * V(L)``, which
        is the quantity whose smallness makes the AVF and SOFR assumptions
        hold (Sections 3.1.1 and 3.2.1); the coarser classical form
        ``lambda * L`` upper-bounds it.
        """
        return self.rate_per_second * self.profile.period

    @property
    def avf(self) -> float:
        return self.profile.avf


#: Schema tag embedded in every serialized SystemModel.
SYSTEM_SCHEMA = "repro.system/v1"


class SystemModel:
    """A series system of components, the input to every method."""

    def __init__(self, components: Sequence[Component]):
        if not components:
            raise ConfigurationError("a system needs at least one component")
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate component names in {names}")
        self._components = tuple(components)

    @property
    def components(self) -> tuple[Component, ...]:
        """The components, as an immutable (and allocation-free) tuple.

        Hot loops (per-trial Monte-Carlo code, design-space sweeps) read
        this property repeatedly; returning the cached tuple avoids a
        fresh list copy per access while keeping the model immutable.
        """
        return self._components

    @property
    def component_count(self) -> int:
        """Total component instances including multiplicities (paper's C)."""
        return sum(c.multiplicity for c in self._components)

    @property
    def content_fingerprint(self) -> str:
        """Stable digest of the whole system's estimation identity.

        Unlike :attr:`Component.content_fingerprint` this includes names,
        multiplicities, and component order, so it identifies the exact
        series system a *system-level* estimate was computed for. Used by
        the batch engine's estimate cache (:mod:`repro.methods.cache`).
        """
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            digest = hashlib.sha256(b"system/v1:")
            for comp in self._components:
                digest.update(comp.name.encode("utf-8"))
                digest.update(b"|")
                digest.update(
                    float(comp.rate_per_second).hex().encode("ascii")
                )
                digest.update(b"|")
                digest.update(str(comp.multiplicity).encode("ascii"))
                digest.update(b"|")
                digest.update(comp.profile.fingerprint.encode("ascii"))
                digest.update(b";")
            fp = digest.hexdigest()
            self._fingerprint = fp
        return fp

    def to_dict(self) -> dict:
        """Lossless plain-dict wire form (inverse of :meth:`from_dict`).

        This is the model half of the analysis service's job schema:
        ``from_dict(to_dict(m)).content_fingerprint ==
        m.content_fingerprint``, so request dedup and the estimate
        caches treat an HTTP-submitted model and its in-process
        original as the same content.
        """
        return {
            "schema": SYSTEM_SCHEMA,
            "components": [c.to_dict() for c in self._components],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SystemModel":
        """Rebuild a system from its :meth:`to_dict` form."""
        if data.get("schema") != SYSTEM_SCHEMA:
            raise ConfigurationError(
                f"not a {SYSTEM_SCHEMA} document "
                f"(schema={data.get('schema')!r})"
            )
        components = data.get("components")
        if not isinstance(components, list):
            raise ConfigurationError(
                "system wire form needs a 'components' list"
            )
        return cls([Component.from_dict(c) for c in components])

    def combined_intensity(self) -> CyclicIntensity:
        """Superposed failure intensity of the whole series system.

        Independent Poisson failure processes add their intensities, so
        the system's first-failure process is governed by
        ``sum_i multiplicity_i * lambda_i * v_i(t)``.

        The merge (breakpoint union + per-segment rate sums) is pure in
        the component contents, so the result is memoized under the
        system's :attr:`content_fingerprint`: chunked Monte-Carlo runs
        used to rebuild it per chunk task. Keying the cached value on
        the fingerprint (rather than a bare lazy attribute) ties
        invalidation to the same identity every other cache in the
        stack uses.
        """
        cached = getattr(self, "_combined", None)
        fingerprint = self.content_fingerprint
        if cached is not None and cached[0] == fingerprint:
            return cached[1]
        intensity = self._build_combined_intensity()
        self._combined = (fingerprint, intensity)
        return intensity

    def _build_combined_intensity(self) -> CyclicIntensity:
        scaled: list[CyclicIntensity] = []
        for comp in self._components:
            intensity = comp.intensity
            if comp.multiplicity != 1:
                intensity = intensity.scaled(float(comp.multiplicity))
            scaled.append(intensity)
        if len(scaled) == 1:
            return scaled[0]
        if all(isinstance(s, PiecewiseHazard) for s in scaled):
            return merge_piecewise(scaled)  # type: ignore[arg-type]
        if all(isinstance(s, NestedHazard) for s in scaled):
            return _merge_nested(scaled)  # type: ignore[arg-type]
        raise ConfigurationError(
            "cannot combine piecewise and nested intensities in one "
            "system; use a common representation"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{c.name}(x{c.multiplicity})" for c in self._components
        )
        return f"SystemModel([{parts}])"


def _merge_nested(hazards: Sequence[NestedHazard]) -> NestedHazard:
    """Sum nested hazards with identical outer segmentation.

    Supports the cluster-of-identical-processors experiments where every
    component shares the ``combined`` workload structure. Each outer
    segment's inner piecewise hazards are merged; they must share inner
    periods (they do when they come from the same workload definition).
    """
    first = hazards[0]
    segs = first._inners  # noqa: SLF001 - module-internal composition
    durations = first._durations  # noqa: SLF001
    merged_segments = []
    for j, duration in enumerate(durations):
        inners = []
        for h in hazards:
            if len(h._durations) != len(durations) or not _close(
                h._durations[j], duration
            ):
                raise ConfigurationError(
                    "nested hazards must share outer segmentation to merge"
                )
            inners.append(h._inners[j])
        merged_segments.append((duration, merge_piecewise(inners)))
    return NestedHazard(merged_segments)


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= 1e-9 * max(abs(a), abs(b), 1.0)
