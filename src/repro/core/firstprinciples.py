"""Exact first-principles MTTF (no AVF or SOFR assumptions).

The paper's ground truth is Monte-Carlo simulation of the raw error
process against the masking trace (Section 4.3). Because raw errors are
Poisson and masking is a deterministic (or per-strike independent)
thinning, the first-failure process is an inhomogeneous Poisson process
and the expectation the Monte Carlo estimates has a closed form:

    ``E[X] = (∫_0^L e^{-Λ(τ)} dτ) / (1 - e^{-Λ(L)})``

with ``Λ = Σ_i C_i λ_i V_i`` over the system's components. This module
evaluates that formula exactly. The test suite verifies the Monte Carlo
engine converges to these values, and the benchmarks use them as the
discrepancy reference (tighter than MC at equal cost).
"""

from __future__ import annotations

from ..masking.profile import VulnerabilityProfile
from ..reliability.metrics import MTTFEstimate
from ..reliability.process import FailureProcess
from .system import Component, SystemModel


def exact_component_mttf(
    rate_per_second: float, profile: VulnerabilityProfile
) -> float:
    """Exact MTTF (seconds) of a single masked component."""
    process = FailureProcess(profile.to_hazard(rate_per_second))
    return process.mttf()


def exact_component_process(component: Component) -> FailureProcess:
    """The exact failure process of one component instance."""
    return FailureProcess(component.intensity)


def exact_system_process(system: SystemModel) -> FailureProcess:
    """The exact first-failure process of the whole series system."""
    return FailureProcess(system.combined_intensity())


def first_principles_mttf(system: SystemModel) -> MTTFEstimate:
    """Exact system MTTF from first principles."""
    return MTTFEstimate(
        mttf_seconds=exact_system_process(system).mttf(),
        method="first_principles",
    )
