"""Compiled sampling kernels: fingerprint-cached intensity plans.

The Monte-Carlo reference spends its life in two places: drawing
inverse-hazard samples, and — before PR 7 — *rebuilding the objects it
draws from*. Every chunk task used to call
:meth:`~repro.core.system.SystemModel.combined_intensity`, re-running
``merge_piecewise``/``_merge_nested`` per chunk, and ``NestedHazard``'s
``cumulative``/``invert`` walked ``np.unique(seg)`` in Python per call.
This module compiles any :class:`~repro.reliability.hazard.CyclicIntensity`
into a **plan**: dense NumPy tables (breakpoints, rates, cumulative-hazard
and cumulative-mass arrays) built once per design point and memoized on
the existing content fingerprints.

Three layers:

* **Compiled intensities** — :class:`CompiledPiecewise` and
  :class:`CompiledNested` replicate the exact floating-point arithmetic
  of their :mod:`~repro.reliability.hazard` counterparts (same searches,
  same guard ``np.where`` chains, same clips) while dropping the
  per-call Python overhead (object traversal, ``np.unique``,
  re-validation of static tables). Same inputs, same bits.
* **Sampling plans** — :class:`SamplingPlan` bundles a compiled
  intensity with the component wire forms (for the arrival sampler,
  which needs the full model) under the owning model's content
  fingerprint, and serializes losslessly via :meth:`SamplingPlan.to_dict`
  (``repro.plan/v1``).
* **Kernel backends** — :func:`get_backend` resolves
  ``MonteCarloConfig.kernel`` to an execution backend. ``"numpy"``
  (default) is bit-identical to the legacy sampler; ``"numba"`` JIT
  compiles the piecewise inverse transform when numba is installed and
  fails loudly (never silently degrades) when it is not; ``"legacy"``
  is handled by the callers (``repro.core.montecarlo`` and the batch
  engine route around plans entirely) and exists so benchmarks can
  measure the old path.

The **worker-side hydration cache** (:func:`run_plan_chunks`) lets the
batch engine ship a plan to a process pool *once*: tasks carry only the
fingerprint after the first send, workers keep hydrated plans in a
process-global table, and an unknown fingerprint returns a ``"miss"``
the parent answers by resubmitting with the plan attached. Batched
tasks return ``(chunk_index, SampleMoments)`` pairs so the parent's
:class:`~repro.core.montecarlo.MomentAccumulator` still folds every
chunk in strict index order — the determinism invariants of the
scheduler stack (workers=1 vs N, thread vs process, shards, ledger
replay) are untouched; see docs/SCHEDULER.md.

The kernel choice is deliberately **not** part of
:func:`repro.methods.cache.mc_token` or the job wire forms: backends
produce bit-identical estimates, so all of them share one cache entry
and one request fingerprint.
"""

from __future__ import annotations

import importlib.util
import threading
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import ConfigurationError, EstimationError, ProfileError
from ..reliability.hazard import (
    _REL_TOL,
    CyclicIntensity,
    NestedHazard,
    PiecewiseHazard,
)
from .system import Component, SystemModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .montecarlo import MonteCarloConfig, SampleMoments

#: Schema tag embedded in every serialized sampling plan.
PLAN_SCHEMA = "repro.plan/v1"

#: Recognised values of ``MonteCarloConfig.kernel``.
KERNELS = ("numpy", "numba", "legacy")

_SMALLEST_SUBNORMAL = np.finfo(float).smallest_subnormal


# ---------------------------------------------------------------------------
# Compiled intensities.
# ---------------------------------------------------------------------------


class CompiledPiecewise:
    """Dense-table replica of :class:`PiecewiseHazard`.

    Holds exactly the arrays the hazard object derives at construction —
    breakpoints, per-segment rates, and the cumulative-hazard table —
    and evaluates ``cumulative``/``invert`` with the *identical*
    floating-point operation sequence, so every sample drawn through a
    plan matches the legacy sampler bit for bit.
    """

    __slots__ = ("bp", "rates", "cum", "period", "mass")

    kind = "piecewise"

    def __init__(
        self, bp: np.ndarray, rates: np.ndarray, cum: np.ndarray
    ) -> None:
        self.bp = np.ascontiguousarray(bp, dtype=float)
        self.rates = np.ascontiguousarray(rates, dtype=float)
        self.cum = np.ascontiguousarray(cum, dtype=float)
        if self.bp.size != self.rates.size + 1 or (
            self.cum.size != self.bp.size
        ):
            raise ConfigurationError(
                "compiled piecewise tables are inconsistent: "
                f"{self.bp.size} breakpoints, {self.rates.size} rates, "
                f"{self.cum.size} cumulative entries"
            )
        self.period = float(self.bp[-1])
        self.mass = float(self.cum[-1])

    @classmethod
    def from_hazard(cls, hazard: PiecewiseHazard) -> "CompiledPiecewise":
        return cls(
            hazard.breakpoints,
            hazard.rates,
            hazard._cum,  # noqa: SLF001 - module-internal compilation
        )

    def cumulative(self, tau: np.ndarray) -> np.ndarray:
        tau = np.asarray(tau, dtype=float)
        if np.any((tau < 0) | (tau > self.period * (1 + _REL_TOL))):
            raise ProfileError("tau outside [0, period]")
        tau = np.clip(tau, 0.0, self.period)
        idx = np.clip(
            np.searchsorted(self.bp, tau, side="right") - 1,
            0,
            self.rates.size - 1,
        )
        return self.cum[idx] + self.rates[idx] * (tau - self.bp[idx])

    def invert(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        if np.any((u <= 0) | (u > self.mass * (1 + _REL_TOL))):
            raise ProfileError("u outside (0, mass]")
        u = np.minimum(u, self.mass)
        idx = np.clip(
            np.searchsorted(self.cum, u, side="left") - 1,
            0,
            self.rates.size - 1,
        )
        rate = self.rates[idx]
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(rate > 0, (u - self.cum[idx]) / rate, 0.0)
        return np.minimum(self.bp[idx] + frac, self.period)

    def to_dict(self) -> dict:
        return {
            "type": "piecewise",
            "breakpoints": self.bp.tolist(),
            "rates": self.rates.tolist(),
            "cum": self.cum.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompiledPiecewise":
        try:
            return cls(
                np.asarray(data["breakpoints"], dtype=float),
                np.asarray(data["rates"], dtype=float),
                np.asarray(data["cum"], dtype=float),
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"piecewise plan wire form is missing {missing}"
            ) from None


class CompiledNested:
    """Dense-table replica of :class:`NestedHazard`.

    Outer tables (segment starts, durations, cumulative mass) plus one
    :class:`CompiledPiecewise` per outer segment. ``cumulative`` and
    ``invert`` reproduce the hazard object's grouped evaluation, with
    one deliberate pass-reduction: segment membership is counted with
    ``np.bincount`` instead of sorting the whole index array through
    ``np.unique`` per call. Iteration stays in ascending segment order
    and the per-element arithmetic is unchanged, so the outputs are
    bit-identical.
    """

    __slots__ = ("starts", "durations", "cum_mass", "inners", "period", "mass")

    kind = "nested"

    def __init__(
        self,
        starts: np.ndarray,
        durations: np.ndarray,
        cum_mass: np.ndarray,
        inners: Sequence[CompiledPiecewise],
    ) -> None:
        self.starts = np.ascontiguousarray(starts, dtype=float)
        self.durations = np.ascontiguousarray(durations, dtype=float)
        self.cum_mass = np.ascontiguousarray(cum_mass, dtype=float)
        self.inners = tuple(inners)
        if (
            self.starts.size != len(self.inners) + 1
            or self.durations.size != len(self.inners)
            or self.cum_mass.size != len(self.inners) + 1
        ):
            raise ConfigurationError(
                "compiled nested tables are inconsistent: "
                f"{len(self.inners)} segments, {self.starts.size} starts, "
                f"{self.cum_mass.size} cumulative-mass entries"
            )
        self.period = float(self.starts[-1])
        self.mass = float(self.cum_mass[-1])

    @classmethod
    def from_hazard(cls, hazard: NestedHazard) -> "CompiledNested":
        return cls(
            hazard._starts,  # noqa: SLF001 - module-internal compilation
            np.asarray(hazard._durations, dtype=float),  # noqa: SLF001
            hazard._cum_mass,  # noqa: SLF001
            [
                CompiledPiecewise.from_hazard(inner)
                for inner in hazard._inners  # noqa: SLF001
            ],
        )

    @property
    def segment_count(self) -> int:
        return len(self.inners)

    def cumulative(self, tau: np.ndarray) -> np.ndarray:
        tau = np.asarray(tau, dtype=float)
        scalar = tau.ndim == 0
        tau = np.atleast_1d(tau)
        if np.any((tau < 0) | (tau > self.period * (1 + _REL_TOL))):
            raise ProfileError("tau outside [0, period]")
        tau = np.clip(tau, 0.0, self.period)
        seg = np.clip(
            np.searchsorted(self.starts, tau, side="right") - 1,
            0,
            self.segment_count - 1,
        )
        counts = np.bincount(seg, minlength=self.segment_count)
        out = np.empty_like(tau)
        for j in range(self.segment_count):
            if counts[j] == 0:
                continue
            sel = seg == j
            local = tau[sel] - self.starts[j]
            inner = self.inners[j]
            k = np.floor(local / inner.period)
            rem = np.clip(local - k * inner.period, 0.0, inner.period)
            out[sel] = (
                self.cum_mass[j] + k * inner.mass + inner.cumulative(rem)
            )
        return out[0] if scalar else out

    def invert(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        scalar = u.ndim == 0
        u = np.atleast_1d(u)
        if np.any((u <= 0) | (u > self.mass * (1 + _REL_TOL))):
            raise ProfileError("u outside (0, mass]")
        u = np.minimum(u, self.mass)
        seg = np.clip(
            np.searchsorted(self.cum_mass, u, side="left") - 1,
            0,
            self.segment_count - 1,
        )
        counts = np.bincount(seg, minlength=self.segment_count)
        out = np.empty_like(u)
        for j in range(self.segment_count):
            if counts[j] == 0:
                continue
            sel = seg == j
            inner = self.inners[j]
            rem = u[sel] - self.cum_mass[j]
            if inner.mass <= 0:
                out[sel] = self.starts[j]
                continue
            k = np.floor(rem / inner.mass)
            inner_rem = rem - k * inner.mass
            under = inner_rem <= 0.0
            k = np.where(under, k - 1, k)
            inner_rem = np.where(under, inner_rem + inner.mass, inner_rem)
            over = inner_rem > inner.mass
            k = np.where(over, k + 1, k)
            inner_rem = np.where(over, inner_rem - inner.mass, inner_rem)
            inner_rem = np.clip(inner_rem, _SMALLEST_SUBNORMAL, inner.mass)
            out[sel] = (
                self.starts[j] + k * inner.period + inner.invert(inner_rem)
            )
        out = np.minimum(out, self.period)
        return out[0] if scalar else out

    def to_dict(self) -> dict:
        return {
            "type": "nested",
            "starts": self.starts.tolist(),
            "durations": self.durations.tolist(),
            "cum_mass": self.cum_mass.tolist(),
            "inners": [inner.to_dict() for inner in self.inners],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompiledNested":
        try:
            return cls(
                np.asarray(data["starts"], dtype=float),
                np.asarray(data["durations"], dtype=float),
                np.asarray(data["cum_mass"], dtype=float),
                [
                    CompiledPiecewise.from_dict(inner)
                    for inner in data["inners"]
                ],
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"nested plan wire form is missing {missing}"
            ) from None


#: A compiled intensity of either shape.
CompiledIntensity = CompiledPiecewise | CompiledNested


def compile_intensity(intensity: CyclicIntensity) -> CompiledIntensity:
    """Flatten a cyclic intensity into its dense-table plan form."""
    if isinstance(intensity, PiecewiseHazard):
        return CompiledPiecewise.from_hazard(intensity)
    if isinstance(intensity, NestedHazard):
        return CompiledNested.from_hazard(intensity)
    raise ConfigurationError(
        f"cannot compile intensity of type {type(intensity).__name__}"
    )


def _intensity_from_dict(data: dict) -> CompiledIntensity:
    kind = data.get("type")
    if kind == "piecewise":
        return CompiledPiecewise.from_dict(data)
    if kind == "nested":
        return CompiledNested.from_dict(data)
    raise ConfigurationError(
        f"unknown compiled-intensity type {kind!r}"
    )


# ---------------------------------------------------------------------------
# Extended (cyclic) evaluation — replicas of CyclicIntensity's helpers.
# ---------------------------------------------------------------------------


def _cumulative_extended(
    intensity: CompiledIntensity, t: np.ndarray
) -> np.ndarray:
    t = np.asarray(t, dtype=float)
    if np.any(t < 0):
        raise ProfileError("time must be non-negative")
    k = np.floor(t / intensity.period)
    rem = t - k * intensity.period
    rem = np.clip(rem, 0.0, intensity.period)
    return k * intensity.mass + intensity.cumulative(rem)


def _invert_extended(
    intensity: CompiledIntensity, u: np.ndarray
) -> np.ndarray:
    u = np.asarray(u, dtype=float)
    if np.any(u <= 0):
        raise ProfileError("hazard target must be positive")
    if intensity.mass <= 0:
        return np.full_like(u, np.inf)
    k = np.floor(u / intensity.mass)
    rem = u - k * intensity.mass
    under = rem <= 0.0
    k = np.where(under, k - 1, k)
    rem = np.where(under, rem + intensity.mass, rem)
    over = rem > intensity.mass
    k = np.where(over, k + 1, k)
    rem = np.where(over, rem - intensity.mass, rem)
    rem = np.clip(rem, _SMALLEST_SUBNORMAL, intensity.mass)
    return k * intensity.period + intensity.invert(rem)


# ---------------------------------------------------------------------------
# Kernel backends.
# ---------------------------------------------------------------------------


class NumpyKernel:
    """Default backend: the compiled tables through NumPy ufuncs.

    Bit-identical to the legacy object-based sampler for every
    (method, start_phase, chunking, stopping-rule) configuration — the
    property-test suite in ``tests/test_kernel.py`` enforces this.
    """

    name = "numpy"

    @property
    def available(self) -> bool:
        return True

    def inverse_ttf(
        self,
        intensity: CompiledIntensity,
        config: "MonteCarloConfig",
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Inverse-hazard sampling against a compiled plan.

        Replicates ``montecarlo._inverse_samples`` — same draw order,
        same start-phase convention, same extended-inversion guards.
        """
        if intensity.mass <= 0:
            return np.full(config.trials, np.inf)
        e = rng.exponential(size=config.trials)
        if config.start_phase == "zero":
            return _invert_extended(intensity, e)
        offsets = rng.uniform(0.0, intensity.period, size=config.trials)
        accrued = _cumulative_extended(intensity, offsets)
        return _invert_extended(intensity, e + accrued) - offsets


class NumbaKernel(NumpyKernel):
    """Optional JIT backend behind feature detection.

    When numba is installed, the piecewise inverse transform runs as a
    compiled per-element loop (same IEEE double operations as the NumPy
    ufunc path, so results match). Nested plans keep the NumPy
    evaluation — their hot loop is already grouped array work. When
    numba is missing, :func:`get_backend` refuses the request loudly:
    a kernel choice never silently degrades.
    """

    name = "numba"

    def __init__(self) -> None:
        self._jit = None

    @property
    def available(self) -> bool:
        return importlib.util.find_spec("numba") is not None

    def _compiled(self):
        if self._jit is None:
            try:
                import numba

                @numba.njit(cache=False)
                def invert_extended(
                    u, bp, rates, cum, period, mass, smallest
                ):  # pragma: no cover - requires numba
                    out = np.empty_like(u)
                    nseg = rates.size
                    for i in range(u.size):
                        k = np.floor(u[i] / mass)
                        rem = u[i] - k * mass
                        if rem <= 0.0:
                            k -= 1.0
                            rem += mass
                        if rem > mass:
                            k += 1.0
                            rem -= mass
                        if rem < smallest:
                            rem = smallest
                        if rem > mass:
                            rem = mass
                        # bisect_left on the cumulative table.
                        lo, hi = 0, cum.size
                        while lo < hi:
                            mid = (lo + hi) // 2
                            if cum[mid] < rem:
                                lo = mid + 1
                            else:
                                hi = mid
                        idx = lo - 1
                        if idx < 0:
                            idx = 0
                        if idx > nseg - 1:
                            idx = nseg - 1
                        rate = rates[idx]
                        frac = (rem - cum[idx]) / rate if rate > 0 else 0.0
                        local = bp[idx] + frac
                        if local > period:
                            local = period
                        out[i] = k * period + local
                    return out

                self._jit = invert_extended
            except Exception as error:  # pragma: no cover - defensive
                raise EstimationError(
                    f"numba backend failed to initialise: {error}"
                ) from error
        return self._jit

    def inverse_ttf(
        self,
        intensity: CompiledIntensity,
        config: "MonteCarloConfig",
        rng: np.random.Generator,
    ) -> np.ndarray:
        if not self.available:
            raise EstimationError(
                "kernel 'numba' requested but numba is not installed; "
                "use kernel='numpy' or install numba"
            )
        if not isinstance(intensity, CompiledPiecewise) or (
            config.start_phase != "zero"
        ):
            # Nested plans and random-phase draws use the grouped NumPy
            # evaluation; only the dominant zero-phase piecewise
            # transform is JIT-compiled.
            return super().inverse_ttf(intensity, config, rng)
        if intensity.mass <= 0:
            return np.full(config.trials, np.inf)
        e = rng.exponential(size=config.trials)
        if np.any(e <= 0):
            raise ProfileError("hazard target must be positive")
        kern = self._compiled()
        return kern(
            e,
            intensity.bp,
            intensity.rates,
            intensity.cum,
            intensity.period,
            intensity.mass,
            _SMALLEST_SUBNORMAL,
        )  # pragma: no cover - requires numba


_BACKENDS = {"numpy": NumpyKernel(), "numba": NumbaKernel()}


def available_kernels() -> tuple[str, ...]:
    """The kernel names this interpreter can actually execute."""
    names = [
        name for name, backend in _BACKENDS.items() if backend.available
    ]
    names.append("legacy")
    return tuple(names)


def get_backend(name: str) -> NumpyKernel:
    """Resolve a kernel name to its execution backend.

    ``"legacy"`` is not an executable backend — callers route around
    plans for it — so requesting it here is a programming error.
    """
    backend = _BACKENDS.get(name)
    if backend is None:
        raise EstimationError(
            f"unknown kernel {name!r}; choose from {KERNELS}"
        )
    if not backend.available:
        raise EstimationError(
            f"kernel {name!r} requested but its runtime is not "
            f"installed; available: {available_kernels()}"
        )
    return backend


# ---------------------------------------------------------------------------
# Sampling plans.
# ---------------------------------------------------------------------------


class SamplingPlan:
    """Everything a worker needs to draw one target's TTF samples.

    ``kind`` is ``"system"`` (inverse draws use the superposed
    intensity; arrival draws rebuild the full :class:`SystemModel`) or
    ``"component"`` (one instance: inverse draws use the component's own
    intensity). ``components`` are the lossless component wire dicts —
    they make the plan self-contained: the arrival sampler, which needs
    ``profile.value_at``, reconstructs the model once per process and
    caches it on the plan.
    """

    __slots__ = ("kind", "fingerprint", "intensity", "components", "_model")

    def __init__(
        self,
        kind: str,
        fingerprint: str,
        intensity: CompiledIntensity,
        components: Sequence[dict],
    ) -> None:
        if kind not in ("system", "component"):
            raise ConfigurationError(f"unknown plan kind {kind!r}")
        self.kind = kind
        self.fingerprint = fingerprint
        self.intensity = intensity
        self.components = tuple(components)
        self._model: SystemModel | Component | None = None

    def __getstate__(self) -> dict:
        # The rebuilt model is a per-process cache, never shipped.
        return {
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "intensity": self.intensity,
            "components": self.components,
        }

    def __setstate__(self, state: dict) -> None:
        self.kind = state["kind"]
        self.fingerprint = state["fingerprint"]
        self.intensity = state["intensity"]
        self.components = state["components"]
        self._model = None

    @property
    def cache_key(self) -> str:
        """Hydration-cache key: fingerprints are namespaced by kind."""
        return f"{self.kind}:{self.fingerprint}"

    def model(self) -> SystemModel | Component:
        """The original model, rebuilt (once) from the wire forms."""
        if self._model is None:
            components = [
                Component.from_dict(data) for data in self.components
            ]
            self._model = (
                SystemModel(components)
                if self.kind == "system"
                else components[0]
            )
        return self._model

    def sample_ttf(self, config: "MonteCarloConfig") -> np.ndarray:
        """Draw ``config.trials`` i.i.d. TTF samples against this plan.

        Bit-identical to ``sample_system_ttf``/``sample_component_ttf``
        on the original model: the RNG is constructed from the same
        seed, the inverse path replicates the legacy arithmetic, and
        the arrival path *is* the legacy sampler run on the rebuilt
        (fingerprint-identical) model.
        """
        from . import montecarlo as mc

        rng = np.random.default_rng(config.seed)
        if config.method == "inverse":
            backend = get_backend(
                config.kernel if config.kernel != "legacy" else "numpy"
            )
            return backend.inverse_ttf(self.intensity, config, rng)
        model = self.model()
        if self.kind == "system":
            return mc._arrival_system_ttf(  # noqa: SLF001
                model, config.trials, rng, config
            )
        return mc._arrival_component_ttf(  # noqa: SLF001
            model, config.trials, rng, config
        )

    def chunk_moments(self, config: "MonteCarloConfig") -> "SampleMoments":
        """One chunk's sufficient statistics (see ``moments_from_samples``)."""
        from .montecarlo import moments_from_samples

        return moments_from_samples(self.sample_ttf(config))

    def to_dict(self) -> dict:
        """Lossless plain-dict wire form (inverse of :meth:`from_dict`)."""
        return {
            "schema": PLAN_SCHEMA,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "intensity": self.intensity.to_dict(),
            "components": [dict(c) for c in self.components],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SamplingPlan":
        """Rebuild a plan from its :meth:`to_dict` form."""
        if data.get("schema") != PLAN_SCHEMA:
            raise ConfigurationError(
                f"not a {PLAN_SCHEMA} document "
                f"(schema={data.get('schema')!r})"
            )
        try:
            return cls(
                kind=str(data["kind"]),
                fingerprint=str(data["fingerprint"]),
                intensity=_intensity_from_dict(data["intensity"]),
                components=[dict(c) for c in data["components"]],
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"plan wire form is missing {missing}"
            ) from None


# ---------------------------------------------------------------------------
# Fingerprint-keyed plan cache (parent-side build, worker-side hydration).
# ---------------------------------------------------------------------------

#: One process-global table serves both roles: the parent memoizes plans
#: it compiles, and pool workers store plans shipped to them. With the
#: ``fork`` start method children inherit the parent's hot entries for
#: free; with ``spawn`` the miss protocol of :func:`run_plan_chunks`
#: hydrates them on first use.
_PLANS: dict[str, SamplingPlan] = {}
_PLANS_LOCK = threading.Lock()
_PLANS_CAP = 256


def _remember(plan: SamplingPlan) -> SamplingPlan:
    with _PLANS_LOCK:
        existing = _PLANS.get(plan.cache_key)
        if existing is not None:
            return existing
        while len(_PLANS) >= _PLANS_CAP:
            _PLANS.pop(next(iter(_PLANS)))
        _PLANS[plan.cache_key] = plan
    return plan


def plan_for_system(system: SystemModel) -> SamplingPlan:
    """The (memoized) sampling plan of a series system."""
    key = f"system:{system.content_fingerprint}"
    with _PLANS_LOCK:
        plan = _PLANS.get(key)
    if plan is not None:
        return plan
    return _remember(
        SamplingPlan(
            kind="system",
            fingerprint=system.content_fingerprint,
            intensity=compile_intensity(system.combined_intensity()),
            components=[c.to_dict() for c in system.components],
        )
    )


def plan_for_component(component: Component) -> SamplingPlan:
    """The (memoized) sampling plan of a single component instance."""
    key = f"component:{component.content_fingerprint}"
    with _PLANS_LOCK:
        plan = _PLANS.get(key)
    if plan is not None:
        return plan
    return _remember(
        SamplingPlan(
            kind="component",
            fingerprint=component.content_fingerprint,
            intensity=compile_intensity(component.intensity),
            components=[component.to_dict()],
        )
    )


def clear_plan_cache() -> None:
    """Drop every cached plan (test isolation helper)."""
    with _PLANS_LOCK:
        _PLANS.clear()


#: First element of a :func:`run_plan_chunks` result whose worker did
#: not hold the plan: the parent must resubmit with the plan attached.
PLAN_MISS = "miss"

#: First element of a successful :func:`run_plan_chunks` result.
PLAN_OK = "ok"


def run_plan_chunks(
    cache_key: str,
    plan: SamplingPlan | None,
    jobs: Sequence[tuple[int, "MonteCarloConfig"]],
):
    """Run a batch of chunk tasks against one plan (pool-safe top level).

    ``jobs`` are ``(chunk_index, chunk_config)`` pairs. Returns
    ``(PLAN_OK, [(chunk_index, SampleMoments), ...])`` — the parent
    folds each pair into its :class:`MomentAccumulator`, which orders
    the folds by chunk index regardless of batching — or
    ``(PLAN_MISS, cache_key)`` when ``plan`` is ``None`` and this
    worker has not been hydrated yet (fresh process, evicted entry):
    the parent resubmits the same jobs with the plan attached. Shipping
    the plan instead of the model, and only on first use, is what
    makes paper-scale chunk fan-out cheap: steady-state tasks carry a
    64-byte key and a few chunk configs.
    """
    if plan is not None:
        plan = _remember(plan)
    else:
        with _PLANS_LOCK:
            plan = _PLANS.get(cache_key)
        if plan is None:
            return (PLAN_MISS, cache_key)
    return (
        PLAN_OK,
        [(index, plan.chunk_moments(config)) for index, config in jobs],
    )
