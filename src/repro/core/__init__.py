"""The paper's primary contribution: MTTF methods and their validity.

This package contains every MTTF estimation method the paper studies and
the apparatus to compare them:

* :mod:`~repro.core.system` — the shared system model (components =
  raw rate x vulnerability profile x multiplicity);
* :mod:`~repro.core.avf` — the AVF step;
* :mod:`~repro.core.sofr` — the SOFR step (alone, and the full
  AVF+SOFR pipeline);
* :mod:`~repro.core.montecarlo` — the paper's Monte-Carlo reference
  (arrival-resampling sampler plus a distribution-identical fast
  inverse-hazard sampler);
* :mod:`~repro.core.firstprinciples` — the exact closed-form MTTF;
* :mod:`~repro.core.softarch` — the SoftArch probabilistic method;
* :mod:`~repro.core.comparison` — discrepancy measurement;
* :mod:`~repro.core.validity` — the λ·L validity advisor encoding the
  paper's conclusions;
* :mod:`~repro.core.designspace` — the Table-2 sweep engine.
"""

from .avf import avf_mttf, avf_step, derated_failure_rate
from .comparison import MethodComparison, compare_methods
from .designspace import (
    DesignPoint,
    SweepOutcome,
    SweepResult,
    component_sweep,
    system_sweep,
    table2_points,
)
from .firstprinciples import (
    exact_component_mttf,
    exact_component_process,
    exact_system_process,
    first_principles_mttf,
)
from .montecarlo import (
    ARRIVAL_INSTANCE_LIMIT,
    MomentAccumulator,
    MonteCarloConfig,
    PAPER_TRIAL_COUNT,
    SampleMoments,
    StoppingRule,
    accumulate_chunks,
    adaptive_chunk_configs,
    allocate_grants,
    chunk_configs,
    component_chunk_moments,
    estimate_from_moments,
    extension_chunk_config,
    extension_chunk_configs,
    grant_chunk_trials,
    merge_moments,
    moments_from_samples,
    monte_carlo_component_mttf,
    monte_carlo_mttf,
    sample_component_ttf,
    sample_system_ttf,
    system_chunk_moments,
)
from .softarch import (
    OutputEvent,
    SoftArchTimeline,
    softarch_component_mttf,
    softarch_mttf,
    timeline_from_intensity,
)
from .softarch_values import SoftArchRates, softarch_from_value_graph
from .bounds import (
    avf_error_bound,
    avf_error_first_order,
    corrected_avf_mttf,
    phase_skew_coefficient,
)
from .hybrid import HybridEstimate, hybrid_component_mttf, hybrid_system_mttf
from .sofr import avf_sofr_mttf, sofr_mttf_from_components, sofr_mttf_from_values
from .system import Component, SystemModel
from .validity import (
    ComponentValidity,
    Regime,
    ValidityReport,
    component_validity,
    validity_report,
)

__all__ = [
    "avf_mttf",
    "avf_step",
    "derated_failure_rate",
    "MethodComparison",
    "compare_methods",
    "DesignPoint",
    "SweepOutcome",
    "SweepResult",
    "component_sweep",
    "system_sweep",
    "table2_points",
    "exact_component_mttf",
    "exact_component_process",
    "exact_system_process",
    "first_principles_mttf",
    "ARRIVAL_INSTANCE_LIMIT",
    "MomentAccumulator",
    "MonteCarloConfig",
    "PAPER_TRIAL_COUNT",
    "SampleMoments",
    "StoppingRule",
    "accumulate_chunks",
    "adaptive_chunk_configs",
    "allocate_grants",
    "chunk_configs",
    "extension_chunk_config",
    "extension_chunk_configs",
    "grant_chunk_trials",
    "component_chunk_moments",
    "estimate_from_moments",
    "merge_moments",
    "moments_from_samples",
    "system_chunk_moments",
    "monte_carlo_component_mttf",
    "monte_carlo_mttf",
    "sample_component_ttf",
    "sample_system_ttf",
    "OutputEvent",
    "SoftArchTimeline",
    "softarch_component_mttf",
    "softarch_mttf",
    "timeline_from_intensity",
    "SoftArchRates",
    "softarch_from_value_graph",
    "avf_error_bound",
    "avf_error_first_order",
    "corrected_avf_mttf",
    "phase_skew_coefficient",
    "HybridEstimate",
    "hybrid_component_mttf",
    "hybrid_system_mttf",
    "avf_sofr_mttf",
    "sofr_mttf_from_components",
    "sofr_mttf_from_values",
    "Component",
    "SystemModel",
    "ComponentValidity",
    "Regime",
    "ValidityReport",
    "component_validity",
    "validity_report",
]
