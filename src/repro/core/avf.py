"""The AVF step (Section 2.2).

``MTTF_c = 1 / (lambda_c * AVF_c)`` — the component MTTF obtained by
derating the raw error rate with the architecture vulnerability factor.
The step implicitly assumes failures are uniformly likely across the
program; Section 3.1 shows this holds iff ``lambda * L -> 0``.
"""

from __future__ import annotations

import math

from ..errors import EstimationError
from ..masking.profile import VulnerabilityProfile
from ..reliability.metrics import MTTFEstimate
from .system import Component


def avf_mttf(rate_per_second: float, profile: VulnerabilityProfile) -> float:
    """AVF-step MTTF (seconds) for one component.

    Returns ``inf`` when the component is never vulnerable (AVF = 0) or
    has a zero raw rate.
    """
    if rate_per_second < 0:
        raise EstimationError(
            f"raw rate must be non-negative, got {rate_per_second}"
        )
    derated_rate = rate_per_second * profile.avf
    if derated_rate == 0.0:
        # Never vulnerable, zero raw rate, or an underflowing product:
        # the derated failure rate is indistinguishable from zero.
        return math.inf
    return 1.0 / derated_rate


def avf_step(component: Component) -> MTTFEstimate:
    """Run the AVF step on a component, returning a labelled estimate."""
    return MTTFEstimate(
        mttf_seconds=avf_mttf(component.rate_per_second, component.profile),
        method="avf",
    )


def derated_failure_rate(component: Component) -> float:
    """The AVF-derated failure rate ``lambda * AVF`` (failures/second).

    This is the quantity the SOFR step sums over components. Returns 0.0
    for never-vulnerable components.
    """
    mttf = avf_mttf(component.rate_per_second, component.profile)
    if math.isinf(mttf):
        return 0.0
    return 1.0 / mttf
