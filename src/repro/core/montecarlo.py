"""Monte-Carlo MTTF estimation (Section 4.3).

The paper's reference method, implemented with two distribution-identical
samplers:

* ``"arrival"`` — the paper's procedure, verbatim: for each component,
  draw an exponential raw-error inter-arrival time, test the masking
  trace at the arrival instant, resample while masked; the component
  fails at the first unmasked arrival and the earliest component failure
  is the system's time to failure.
* ``"inverse"`` — inverse cumulative-hazard transform on the thinned
  (failure) process: ``X = Λ⁻¹(E)``, ``E ~ Exp(1)``. One uniform draw per
  trial regardless of the masking ratio or the number of components
  (hazards of independent components superpose), which is what makes the
  paper's 10^6-trial x 5*10^5-component cluster points tractable in
  Python. The test suite verifies the two samplers agree.

The paper runs 1,000,000 trials per configuration
(:data:`PAPER_TRIAL_COUNT`); estimates report standard errors so callers
can trade trials for precision knowingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError, EstimationError
from ..reliability.metrics import MTTFEstimate
from .system import Component, SystemModel

#: Trials used throughout the paper's evaluation (Section 4.3).
PAPER_TRIAL_COUNT = 1_000_000

#: Instance limit above which the arrival sampler refuses to expand
#: multiplicities (use the inverse sampler for large clusters).
ARRIVAL_INSTANCE_LIMIT = 4096


@dataclass(frozen=True)
class StoppingRule:
    """Precision-driven stopping criterion for adaptive estimation.

    The engine schedules trial chunks until the *merged* estimate is
    precise enough, instead of always running a fixed trial count:

    * ``target_rel_stderr`` — stop once
      ``stderr / mean <= target_rel_stderr``;
    * ``target_ci_halfwidth`` — stop once the normal-approximation
      confidence half-width ``z * stderr`` (seconds) is at or below
      this bound;
    * ``min_trials`` — never stop before this many trials have merged
      (guards against lucky early chunks on heavy-tailed TTFs);
    * ``max_trials`` — trial budget; ``None`` keeps the configured
      ``MonteCarloConfig.trials`` as the budget. A larger value lets an
      adaptive run *extend past* the configured trials when the target
      has not been reached.

    At least one target must be set. The rule is evaluated on the
    in-order chunk prefix (see :class:`MomentAccumulator`), so the stop
    decision — and therefore the estimate — is a pure function of the
    configuration, never of worker count, executor, or chunk completion
    order. Stopping happens at *chunk* boundaries: with
    ``MonteCarloConfig(chunks=1)`` the single chunk covers the whole
    budget and no early stop is possible — pair a rule with a real
    chunk count (the CLI defaults ``--target-stderr`` runs to 16).
    """

    target_rel_stderr: float | None = None
    target_ci_halfwidth: float | None = None
    min_trials: int = 0
    max_trials: int | None = None
    z: float = 1.96

    def __post_init__(self) -> None:
        if self.target_rel_stderr is None and (
            self.target_ci_halfwidth is None
        ):
            raise EstimationError(
                "a StoppingRule needs target_rel_stderr and/or "
                "target_ci_halfwidth"
            )
        for name in ("target_rel_stderr", "target_ci_halfwidth"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise EstimationError(
                    f"{name} must be positive, got {value}"
                )
        if self.min_trials < 0:
            raise EstimationError(
                f"min_trials must be >= 0, got {self.min_trials}"
            )
        if self.max_trials is not None and self.max_trials < 1:
            raise EstimationError(
                f"max_trials must be >= 1, got {self.max_trials}"
            )
        if self.z <= 0:
            raise EstimationError(f"z must be positive, got {self.z}")

    def satisfied(self, moments: "SampleMoments") -> bool:
        """Whether the merged moments already meet every set target.

        An all-censored prefix (``mean = inf``: no failures drawn yet)
        is *never* "precise enough" — stopping there would silently
        cache MTTF=inf where the fixed-count run either returns a
        legitimate infinity after the full budget or fails loudly on
        mixed finite/infinite chunks. Keep scheduling instead.
        """
        if moments.count < max(2, self.min_trials):
            return False
        if math.isinf(moments.mean):
            return False
        stderr = moments.stderr
        if self.target_rel_stderr is not None:
            if stderr > self.target_rel_stderr * abs(moments.mean):
                return False
        if self.target_ci_halfwidth is not None:
            if self.z * stderr > self.target_ci_halfwidth:
                return False
        return True

    def deficit(self, moments: "SampleMoments") -> float | None:
        """How far ``moments`` are from this rule's targets.

        The worst set constraint's current-value-to-target ratio: 1.0
        means exactly at target, 2.0 means the standard error must
        halve. This is the "least-converged" ordering the batch
        engine's budget re-allocation uses — it ranks by the *configured*
        rule, so an absolute CI-half-width run routes freed budget to
        the point furthest from its half-width target rather than the
        one with the worst relative error. ``None`` when no set target
        is measurable (an all-censored prefix, or a relative-only rule
        at mean 0) — more trials cannot demonstrably help such a point.
        """
        if moments.count < 2 or math.isinf(moments.mean):
            return None
        stderr = moments.stderr
        ratios = []
        if self.target_rel_stderr is not None and moments.mean != 0.0:
            ratios.append(
                stderr / abs(moments.mean) / self.target_rel_stderr
            )
        if self.target_ci_halfwidth is not None:
            ratios.append(self.z * stderr / self.target_ci_halfwidth)
        if not ratios:
            return None
        return max(ratios)

    def token(self) -> str:
        """Canonical cache-key fragment (see ``repro.methods.cache``)."""
        return (
            f"rel={self.target_rel_stderr},ci={self.target_ci_halfwidth},"
            f"min={self.min_trials},max={self.max_trials},z={self.z}"
        )


@dataclass(frozen=True)
class MonteCarloConfig:
    """Configuration of a Monte-Carlo estimation run.

    Attributes
    ----------
    trials:
        Number of independent trials. The paper uses 1e6.
    seed:
        Seed for the underlying PCG64 generator; every run is
        reproducible.
    method:
        ``"inverse"`` (default) or ``"arrival"`` (the paper's literal
        resampling procedure; restricted to modest component counts).
    start_phase:
        Where within the workload loop the observation starts.
        ``"zero"`` (default) starts every trial at the beginning of the
        masking trace — the literal reading of the paper's procedure.
        ``"random"`` draws a uniform offset into the loop per trial (all
        components synchronized at the same offset), modelling a system
        whose failure clock starts at an arbitrary point of the
        day/week cycle. The choice only matters when the hazard mass per
        iteration is large (MTTF comparable to the loop length); see the
        fig6b experiment notes.
    max_arrival_rounds:
        Safety cap on resampling rounds per trial for the arrival
        sampler; ``None`` derives a generous cap from the masking ratio.
    chunks:
        Number of independent sub-runs the trials are split into
        (default 1: one monolithic run, numbers identical to earlier
        releases). With ``chunks > 1`` each chunk draws from its own
        :class:`numpy.random.SeedSequence` spawn of ``seed`` and the
        chunk moments are merged in chunk order, so the estimate is a
        pure function of the configuration — the batch engine can
        execute chunks serially, across threads, or across processes
        and always reproduce the same mean and standard error.
    stopping:
        Optional :class:`StoppingRule`. When set, runs become
        *adaptive*: chunks (of size ``trials / chunks``) are scheduled
        one at a time until the rule's precision target is met or the
        trial budget (``stopping.max_trials``, default ``trials``) is
        exhausted. ``None`` (default) reproduces the fixed-count
        behaviour bit-identically.
    kernel:
        Execution backend for the samplers (see
        :mod:`repro.core.kernel`). ``"numpy"`` (default) runs against a
        compiled, fingerprint-cached intensity plan — bit-identical to
        the legacy object-based sampler, but the plan is built once per
        design point instead of once per chunk. ``"numba"`` JIT
        compiles the hot transform when numba is installed (refused
        loudly otherwise). ``"legacy"`` forces the original
        object-traversing path — results are identical; it exists so
        benchmarks can measure the plan layer itself. Because every
        kernel produces the same bits, this field is deliberately
        **excluded** from cache keys (``mc_token``) and job wire forms.
    """

    trials: int = 200_000
    seed: int = 0
    method: str = "inverse"
    start_phase: str = "zero"
    max_arrival_rounds: int | None = None
    chunks: int = 1
    stopping: StoppingRule | None = None
    # repro: allow[C102] bit-identity proof: every kernel is property-
    # tested byte-identical to the legacy sampler (tests/test_kernel.py),
    # so runs under any kernel may share cache entries — see mc_token
    kernel: str = "numpy"

    @property
    def adaptive(self) -> bool:
        """Whether this run stops on precision rather than trial count."""
        return self.stopping is not None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise EstimationError(f"trials must be >= 1, got {self.trials}")
        if self.method not in ("inverse", "arrival"):
            raise EstimationError(
                f"unknown method {self.method!r}; use 'inverse' or 'arrival'"
            )
        if self.start_phase not in ("zero", "random"):
            raise EstimationError(
                f"unknown start phase {self.start_phase!r}; "
                "use 'zero' or 'random'"
            )
        if self.chunks < 1:
            raise EstimationError(f"chunks must be >= 1, got {self.chunks}")
        if self.kernel not in ("numpy", "numba", "legacy"):
            raise EstimationError(
                f"unknown kernel {self.kernel!r}; "
                "use 'numpy', 'numba', or 'legacy'"
            )


def _estimate_from_samples(
    samples: np.ndarray, method_label: str
) -> MTTFEstimate:
    if np.all(np.isinf(samples)):
        return MTTFEstimate(
            mttf_seconds=math.inf,
            trials=int(samples.size),
            method=method_label,
        )
    if np.any(np.isinf(samples)):
        # A cyclic profile with positive mass fails with probability 1;
        # infinities can only come from zero-mass components.
        raise EstimationError(
            "mixed finite/infinite failure times; check component masses"
        )
    mean = float(samples.mean())
    stderr = float(samples.std(ddof=1) / math.sqrt(samples.size)) if (
        samples.size > 1
    ) else 0.0
    return MTTFEstimate(
        mttf_seconds=mean,
        std_error_seconds=stderr,
        trials=int(samples.size),
        method=method_label,
    )


# ---------------------------------------------------------------------------
# Trial-chunked reduction.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SampleMoments:
    """Sufficient statistics of one chunk of TTF samples.

    ``m2`` is the sum of squared deviations from the chunk mean (the
    Welford/Chan ``M2``), which merges exactly across chunks — the
    merged (count, mean, m2) equal the whole-array statistics up to
    floating-point rounding, so a chunked run reports the same standard
    error a monolithic run over the concatenated samples would.
    An all-infinite chunk (zero-mass component) has ``mean = inf``.
    """

    count: int
    mean: float
    m2: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean; 0 below two samples or at inf."""
        if self.count < 2 or math.isinf(self.mean):
            return 0.0
        return math.sqrt(self.m2 / (self.count - 1) / self.count)

    @property
    def rel_stderr(self) -> float | None:
        """``stderr / |mean|``, or ``None`` while undefined."""
        if self.count < 2 or math.isinf(self.mean) or self.mean == 0.0:
            return None
        return self.stderr / abs(self.mean)


def moments_from_samples(samples: np.ndarray) -> SampleMoments:
    """Reduce a sample array to its mergeable sufficient statistics."""
    if np.all(np.isinf(samples)):
        return SampleMoments(int(samples.size), math.inf, 0.0)
    if np.any(np.isinf(samples)):
        raise EstimationError(
            "mixed finite/infinite failure times; check component masses"
        )
    mean = float(samples.mean())
    m2 = float(np.square(samples - mean).sum())
    return SampleMoments(int(samples.size), mean, m2)


def merge_moments(parts: Sequence[SampleMoments]) -> SampleMoments:
    """Left-fold merge (Chan et al.) — deterministic in ``parts`` order."""
    if not parts:
        raise EstimationError("no sample moments to merge")
    total = parts[0]
    for part in parts[1:]:
        if math.isinf(total.mean) or math.isinf(part.mean):
            if math.isinf(total.mean) and math.isinf(part.mean):
                total = SampleMoments(
                    total.count + part.count, math.inf, 0.0
                )
                continue
            raise EstimationError(
                "mixed finite/infinite failure times across chunks; "
                "check component masses"
            )
        count = total.count + part.count
        delta = part.mean - total.mean
        mean = total.mean + delta * part.count / count
        m2 = (
            total.m2
            + part.m2
            + delta * delta * total.count * part.count / count
        )
        total = SampleMoments(count, mean, m2)
    return total


def estimate_from_moments(
    moments: SampleMoments, method_label: str
) -> MTTFEstimate:
    """Build the reported estimate from merged chunk statistics."""
    if math.isinf(moments.mean):
        return MTTFEstimate(
            mttf_seconds=math.inf,
            trials=moments.count,
            method=method_label,
        )
    return MTTFEstimate(
        mttf_seconds=moments.mean,
        std_error_seconds=moments.stderr,
        trials=moments.count,
        method=method_label,
    )


# ---------------------------------------------------------------------------
# Wire forms.
# ---------------------------------------------------------------------------

#: Fields of the Monte-Carlo wire form (mirrors MonteCarloConfig).
#: ``kernel`` is deliberately absent: which sampling kernel executes a
#: configuration is an executor-local performance choice with
#: bit-identical output, so it is not part of the configuration's
#: content — cache tokens, job fingerprints, and remote-worker requests
#: all stay identical across kernels. A remote worker therefore runs a
#: shipped config with *its own* default kernel.
_MC_FIELDS = (
    "trials", "seed", "method", "start_phase", "max_arrival_rounds",
    "chunks",
)

#: Fields of the stopping-rule wire form (mirrors StoppingRule).
_STOPPING_FIELDS = (
    "target_rel_stderr", "target_ci_halfwidth", "min_trials",
    "max_trials", "z",
)


def _reject_unknown(data, allowed, what: str) -> None:
    if not isinstance(data, dict):
        raise ConfigurationError(f"{what} wire form must be a dict")
    unknown = set(data) - set(allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown {what} fields {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def stopping_rule_to_dict(rule: StoppingRule) -> dict:
    """Plain-dict form of a stopping rule (defaults included)."""
    return {name: getattr(rule, name) for name in _STOPPING_FIELDS}


def stopping_rule_from_dict(data: dict) -> StoppingRule:
    """Inverse of :func:`stopping_rule_to_dict` (unknown keys rejected)."""
    _reject_unknown(data, _STOPPING_FIELDS, "stopping rule")
    try:
        return StoppingRule(**data)
    except TypeError as error:
        raise ConfigurationError(
            f"bad stopping-rule wire form: {error}"
        ) from None


def mc_config_to_dict(mc: MonteCarloConfig) -> dict:
    """Plain-dict form of a Monte-Carlo configuration (lossless)."""
    data = {name: getattr(mc, name) for name in _MC_FIELDS}
    if mc.stopping is not None:
        data["stopping"] = stopping_rule_to_dict(mc.stopping)
    return data


def mc_config_from_dict(data: dict) -> MonteCarloConfig:
    """Inverse of :func:`mc_config_to_dict` (unknown keys rejected)."""
    payload = dict(data)
    stopping = payload.pop("stopping", None)
    _reject_unknown(payload, _MC_FIELDS, "Monte-Carlo configuration")
    if stopping is not None:
        stopping = stopping_rule_from_dict(stopping)
    try:
        return MonteCarloConfig(stopping=stopping, **payload)
    except TypeError as error:
        raise ConfigurationError(
            f"bad Monte-Carlo wire form: {error}"
        ) from None


def chunk_configs(config: MonteCarloConfig) -> list[MonteCarloConfig]:
    """Split one MC configuration into its per-chunk configurations.

    Chunk seeds come from ``SeedSequence(seed).spawn(...)`` — statistically
    independent streams fully determined by the parent seed and the chunk
    index, never by which worker executes the chunk. Trials divide as
    evenly as possible (first chunks take the remainder). The split is a
    pure function of the configuration, which is what makes
    ``workers=1`` and ``workers=N`` runs numerically identical at fixed
    chunking.
    """
    chunks = min(config.chunks, config.trials)
    children = np.random.SeedSequence(config.seed).spawn(chunks)
    base, extra = divmod(config.trials, chunks)
    configs = []
    for index, child in enumerate(children):
        configs.append(
            replace(
                config,
                trials=base + (1 if index < extra else 0),
                seed=int(child.generate_state(1, np.uint64)[0]),
                chunks=1,
                stopping=None,
            )
        )
    return configs


def adaptive_chunk_configs(
    config: MonteCarloConfig,
) -> list[MonteCarloConfig]:
    """The full chunk plan of a run, including any adaptive extension.

    Without a stopping rule this is exactly :func:`chunk_configs`. With
    one, the plan starts with the fixed-chunking split of
    ``config.trials`` and ``stopping.max_trials`` adjusts the budget in
    either direction: a larger value extends the plan with further
    equal-size chunks, a smaller one truncates it — in both cases the
    final chunk is clamped so the plan's total trials equal the budget
    *exactly* (``max_trials`` is a hard cap, never overshot). Chunk
    seeds come from ``SeedSequence(seed).spawn(...)``, whose children
    are a pure function of the chunk *index*, so extension and
    truncation both preserve earlier chunks untouched: an adaptive run
    that stops within the first ``config.chunks`` chunks has drawn
    exactly the samples the fixed run would have.
    """
    plan = chunk_configs(config)
    stopping = config.stopping
    if stopping is None or stopping.max_trials is None or (
        stopping.max_trials == config.trials
    ):
        return plan
    if stopping.max_trials < config.trials:
        kept, covered = [], 0
        for chunk in plan:
            take = min(chunk.trials, stopping.max_trials - covered)
            kept.append(
                chunk if take == chunk.trials else replace(
                    chunk, trials=take
                )
            )
            covered += take
            if covered >= stopping.max_trials:
                break
        return kept
    chunk_trials = max(1, config.trials // len(plan))
    extension = stopping.max_trials - config.trials
    extra = -(-extension // chunk_trials)
    children = np.random.SeedSequence(config.seed).spawn(
        len(plan) + extra
    )
    remaining = extension
    for index in range(len(plan), len(plan) + extra):
        plan.append(
            replace(
                config,
                trials=min(chunk_trials, remaining),
                seed=int(children[index].generate_state(1, np.uint64)[0]),
                chunks=1,
                stopping=None,
            )
        )
        remaining -= plan[-1].trials
    return plan


def grant_chunk_trials(config: MonteCarloConfig) -> int:
    """Trial size of one budget-extension chunk.

    The same granularity :func:`adaptive_chunk_configs` uses for
    ``max_trials`` extensions — the batch engine's budget re-allocation
    issues grants in these units so every extension, however funded,
    lands on the same chunk grid.
    """
    return max(1, config.trials // min(config.chunks, config.trials))


def extension_chunk_config(
    config: MonteCarloConfig, index: int, trials: int
) -> MonteCarloConfig:
    """The chunk configuration at position ``index`` of an extended plan.

    Chunk seeds come from ``SeedSequence(seed).spawn(...)``, whose
    children are a pure function of the chunk *index* — the rule
    :func:`chunk_configs` and :func:`adaptive_chunk_configs` already
    follow. A plan grown one grant at a time therefore equals the plan
    a single up-front extension to the same budget would produce:
    prefix preservation by construction, regardless of how many rounds
    of re-allocation funded the tail.
    """
    if index < 0:
        raise EstimationError(f"chunk index must be >= 0, got {index}")
    if trials < 1:
        raise EstimationError(f"chunk trials must be >= 1, got {trials}")
    child = np.random.SeedSequence(config.seed).spawn(index + 1)[index]
    return replace(
        config,
        trials=trials,
        seed=int(child.generate_state(1, np.uint64)[0]),
        chunks=1,
        stopping=None,
    )


def extension_chunk_configs(
    config: MonteCarloConfig, start: int, sizes: Sequence[int]
) -> list[MonteCarloConfig]:
    """The extension chunks ``start .. start+len(sizes)-1`` of a plan.

    One budget grant appends these to a point's chunk plan; because
    each chunk is :func:`extension_chunk_config` at its own index, a
    plan grown by many grants — local re-allocation rounds or
    cross-shard ledger claims, in any mixture — equals the plan one
    up-front extension to the same total budget would have produced.
    """
    return [
        extension_chunk_config(config, start + offset, trials)
        for offset, trials in enumerate(sizes)
    ]


def transfer_chunk_configs(
    config: MonteCarloConfig, grant_sizes: Sequence[Sequence[int]]
) -> list[MonteCarloConfig]:
    """A point's full chunk plan after ownership transfers and grants.

    The ownership-transfer invariant behind elastic ledger fleets: a
    member that adopts a departed sibling's open point rebuilds the
    point's plan as the base adaptive plan
    (:func:`adaptive_chunk_configs`) followed by each granted round's
    :func:`extension_chunk_configs`, in round order. Every chunk's
    seed is a pure function of ``(config.seed, chunk index)``, so the
    adopter — starting from nothing but the point's base config and
    the grant schedule replayed from the ledger — draws *exactly* the
    chunks the departed member would have drawn, and the fold (strict
    index order) produces the identical moments. ``grant_sizes`` is
    one sequence of chunk sizes per grant, in grant order.
    """
    plan = adaptive_chunk_configs(config)
    for sizes in grant_sizes:
        plan.extend(extension_chunk_configs(config, len(plan), sizes))
    return plan


def allocate_grants(
    pool: int,
    demands: Sequence[tuple[float, int]],
    unit: int,
) -> dict[int, list[int]]:
    """Deterministically split freed trial budget over ranked demands.

    The single allocation policy behind both the pipelined scheduler's
    local budget re-allocation and the cross-shard ledger: ``demands``
    are ``(deficit, key)`` pairs (keys are point indices — local to one
    scheduler, or global across a sharded fleet); candidates are
    ordered worst-deficit first with ties broken by ascending key, and
    ``pool`` trials are granted round-robin in ``unit``-sized chunks
    (the final grant may be partial so the pool is spent exactly).
    Returns ``key -> chunk sizes`` for every key that received budget.
    A pure function of its arguments: every shard of a fleet computes
    the identical allocation from the identical ledger state.
    """
    if unit < 1:
        raise EstimationError(f"grant unit must be >= 1, got {unit}")
    if pool < 1 or not demands:
        return {}
    ranked = sorted(demands, key=lambda pair: (-pair[0], pair[1]))
    keys = [key for _deficit, key in ranked]
    grants: dict[int, list[int]] = {key: [] for key in keys}
    turn = 0
    while pool > 0:
        take = min(unit, pool)
        grants[keys[turn % len(keys)]].append(take)
        pool -= take
        turn += 1
    return {key: sizes for key, sizes in grants.items() if sizes}


class MomentAccumulator:
    """Streaming, order-independent reducer of chunk moments.

    Chunks may *arrive* in any order (whatever order a pool completes
    them in) but are *folded* strictly in chunk-index order: chunk ``k``
    merges only after chunks ``0..k-1`` have merged, and the stopping
    rule is evaluated after every single fold. Both properties together
    make the result a pure function of the chunk plan — the merged
    moments, the achieved precision, and the early-stop decision are
    bit-identical whether chunks complete serially, across threads, or
    across processes in any interleaving.
    """

    def __init__(
        self, total_chunks: int, stopping: StoppingRule | None = None
    ) -> None:
        if total_chunks < 1:
            raise EstimationError(
                f"total_chunks must be >= 1, got {total_chunks}"
            )
        self.total_chunks = total_chunks
        self.stopping = stopping
        self.moments: SampleMoments | None = None
        #: True once the stopping rule's targets were met.
        self.satisfied = False
        self._pending: dict[int, SampleMoments] = {}
        self._next = 0

    @property
    def merged_chunks(self) -> int:
        """How many chunks have folded into :attr:`moments` so far."""
        return self._next

    @property
    def done(self) -> bool:
        """Whether the estimate is final (budget spent or target met)."""
        return self.satisfied or self._next >= self.total_chunks

    @property
    def stopped_early(self) -> bool:
        """Whether the rule ended the run before the full chunk plan."""
        return self.satisfied and self._next < self.total_chunks

    def extend_plan(self, extra_chunks: int) -> None:
        """Grow the chunk plan of an exhausted, unsatisfied accumulator.

        Budget re-allocation funds further chunks for a point that spent
        its whole plan without meeting its stopping rule; extending the
        plan reopens the accumulator (:attr:`done` becomes False) and
        folding resumes at the next chunk index. Extending a *satisfied*
        accumulator is a scheduling bug — that estimate is already
        final — and is rejected loudly.
        """
        if extra_chunks < 1:
            raise EstimationError(
                f"extra_chunks must be >= 1, got {extra_chunks}"
            )
        if self.satisfied:
            raise EstimationError(
                "cannot extend a satisfied accumulator; its estimate "
                "is already final"
            )
        self.total_chunks += extra_chunks

    def add(self, index: int, moments: SampleMoments) -> bool:
        """Record one chunk's moments; fold any ready in-order prefix.

        Returns :attr:`done` so callers can stop scheduling/cancelling
        as soon as the estimate is final. Chunks received after the run
        is done (stragglers from a cancelled wave) are ignored.
        """
        if self.done:
            return True
        if not 0 <= index < self.total_chunks:
            raise EstimationError(
                f"chunk index {index} outside plan of {self.total_chunks}"
            )
        self._pending[index] = moments
        while not self.done and self._next in self._pending:
            part = self._pending.pop(self._next)
            self.moments = (
                part
                if self.moments is None
                else merge_moments([self.moments, part])
            )
            self._next += 1
            if self.stopping is not None and self.stopping.satisfied(
                self.moments
            ):
                self.satisfied = True
        return self.done

    def estimate(self, method_label: str) -> MTTFEstimate:
        """The final estimate from everything folded so far."""
        if self.moments is None:
            raise EstimationError("no chunk moments accumulated")
        return estimate_from_moments(self.moments, method_label)


def accumulate_chunks(
    chunk_fn: Callable[[MonteCarloConfig], SampleMoments],
    config: MonteCarloConfig,
) -> MomentAccumulator:
    """Serially run a chunk plan through a :class:`MomentAccumulator`.

    This is the reference (single-worker) form of the streaming
    reduction the batch engine performs across a pool: same plan, same
    in-order fold, same stopping decision — so serial and fanned-out
    runs agree to the bit, adaptive or not.
    """
    plan = adaptive_chunk_configs(config)
    accumulator = MomentAccumulator(len(plan), config.stopping)
    for index, chunk in enumerate(plan):
        if accumulator.add(index, chunk_fn(chunk)):
            break
    return accumulator


def system_chunk_moments(
    system: SystemModel, config: MonteCarloConfig
) -> SampleMoments:
    """One chunk's reduction for a system (top-level: process-pool safe)."""
    return moments_from_samples(sample_system_ttf(system, config))


def component_chunk_moments(
    component: Component, config: MonteCarloConfig
) -> SampleMoments:
    """One chunk's reduction for a single component instance."""
    return moments_from_samples(sample_component_ttf(component, config))


# ---------------------------------------------------------------------------
# Inverse-hazard sampler.
# ---------------------------------------------------------------------------


def _inverse_samples(
    intensity, config: MonteCarloConfig, rng: np.random.Generator
) -> np.ndarray:
    """Inverse-hazard sampling, honouring the start-phase convention.

    With a random start offset ``u``, the time to failure is
    ``X = Λ⁻¹(E + Λ(u)) - u`` for ``E ~ Exp(1)`` — the first time the
    hazard accrued *after* ``u`` reaches ``E``.
    """
    if intensity.mass <= 0:
        return np.full(config.trials, np.inf)
    e = rng.exponential(size=config.trials)
    if config.start_phase == "zero":
        return intensity.invert_extended(e)
    offsets = rng.uniform(0.0, intensity.period, size=config.trials)
    accrued = intensity.cumulative_extended(offsets)
    return intensity.invert_extended(e + accrued) - offsets


def sample_system_ttf(
    system: SystemModel, config: MonteCarloConfig
) -> np.ndarray:
    """Draw ``trials`` i.i.d. system times to failure (seconds).

    With ``config.kernel != "legacy"`` the inverse draws run against
    the system's compiled, fingerprint-cached sampling plan (see
    :mod:`repro.core.kernel`) — bit-identical numbers, but the
    intensity tables are built once per design point instead of per
    call. ``"legacy"`` reproduces the original object path.
    """
    if config.method == "inverse" and config.kernel != "legacy":
        from . import kernel as _kernel

        return _kernel.plan_for_system(system).sample_ttf(config)
    rng = np.random.default_rng(config.seed)
    if config.method == "inverse":
        return _inverse_samples(system.combined_intensity(), config, rng)
    return _arrival_system_ttf(system, config.trials, rng, config)


def sample_component_ttf(
    component: Component, config: MonteCarloConfig
) -> np.ndarray:
    """Draw times to failure for a single component instance."""
    if config.method == "inverse" and config.kernel != "legacy":
        from . import kernel as _kernel

        return _kernel.plan_for_component(component).sample_ttf(config)
    rng = np.random.default_rng(config.seed)
    if config.method == "inverse":
        return _inverse_samples(component.intensity, config, rng)
    return _arrival_component_ttf(component, config.trials, rng, config)


def monte_carlo_mttf(
    system: SystemModel, config: MonteCarloConfig | None = None
) -> MTTFEstimate:
    """Monte-Carlo system MTTF (the paper's reference value).

    With ``config.chunks > 1`` the trials run as independent seeded
    chunks whose moments merge in chunk order — the exact computation
    the batch engine distributes across a process pool, so serial and
    parallel runs agree to the bit.
    """
    config = config or MonteCarloConfig()
    label = f"monte_carlo[{config.method}]"
    if config.adaptive:
        return accumulate_chunks(
            lambda chunk: system_chunk_moments(system, chunk), config
        ).estimate(label)
    if config.chunks > 1:
        parts = [
            system_chunk_moments(system, chunk)
            for chunk in chunk_configs(config)
        ]
        return estimate_from_moments(merge_moments(parts), label)
    samples = sample_system_ttf(system, config)
    return _estimate_from_samples(samples, label)


def monte_carlo_component_mttf(
    component: Component, config: MonteCarloConfig | None = None
) -> MTTFEstimate:
    """Monte-Carlo MTTF of one component instance (chunking as above)."""
    config = config or MonteCarloConfig()
    label = f"monte_carlo[{config.method}]"
    if config.adaptive:
        return accumulate_chunks(
            lambda chunk: component_chunk_moments(component, chunk),
            config,
        ).estimate(label)
    if config.chunks > 1:
        parts = [
            component_chunk_moments(component, chunk)
            for chunk in chunk_configs(config)
        ]
        return estimate_from_moments(merge_moments(parts), label)
    samples = sample_component_ttf(component, config)
    return _estimate_from_samples(samples, label)


# ---------------------------------------------------------------------------
# Arrival (paper-literal) sampler.
# ---------------------------------------------------------------------------


def _arrival_rounds_cap(component: Component, configured: int | None) -> int:
    if configured is not None:
        return configured
    avf = component.avf
    if avf <= 0:
        raise EstimationError(
            f"{component.name}: arrival sampling cannot terminate with "
            "AVF = 0 (never vulnerable); use the inverse sampler"
        )
    # Expected rounds per trial is 1/AVF; allow a wide safety margin so
    # the probability of truncation is negligible (< exp(-50)).
    return max(1000, int(60.0 / avf))


def _arrival_component_ttf(
    component: Component,
    trials: int,
    rng: np.random.Generator,
    config: MonteCarloConfig,
    offsets: np.ndarray | None = None,
) -> np.ndarray:
    """The paper's resampling loop, vectorised across trials.

    For each trial: accumulate exponential inter-arrival times; at each
    arrival, look up the vulnerability at (t mod L) and draw a Bernoulli
    masking decision; stop at the first unmasked arrival. ``offsets``
    (per-trial loop start phases) implement the random-phase convention.
    """
    rate = component.rate_per_second
    if rate <= 0:
        return np.full(trials, np.inf)
    profile = component.profile
    period = profile.period
    cap = _arrival_rounds_cap(component, config.max_arrival_rounds)
    if offsets is None and config.start_phase == "random":
        offsets = rng.uniform(0.0, period, size=trials)
    times = offsets.copy() if offsets is not None else np.zeros(trials)
    result = np.full(trials, np.inf)
    active = np.arange(trials)
    for _round in range(cap):
        if active.size == 0:
            break
        times[active] += rng.exponential(1.0 / rate, size=active.size)
        tau = np.mod(times[active], period)
        # mod can return exactly `period` through float rounding.
        tau = np.where(tau >= period, 0.0, tau)
        vulnerability = np.asarray(profile.value_at(tau), dtype=float)
        unmasked = rng.random(active.size) < vulnerability
        failed = active[unmasked]
        result[failed] = times[failed]
        active = active[~unmasked]
    if active.size:
        raise EstimationError(
            f"{component.name}: {active.size} trials did not fail within "
            f"{cap} resampling rounds; raise max_arrival_rounds or use the "
            "inverse sampler"
        )
    if offsets is not None:
        result -= offsets
    return result


def _arrival_system_ttf(
    system: SystemModel,
    trials: int,
    rng: np.random.Generator,
    config: MonteCarloConfig,
) -> np.ndarray:
    """Min-over-components arrival sampling (multiplicities expanded)."""
    total_instances = system.component_count
    if total_instances > ARRIVAL_INSTANCE_LIMIT:
        raise EstimationError(
            f"arrival sampling would expand {total_instances} component "
            f"instances (> {ARRIVAL_INSTANCE_LIMIT}); use method='inverse'"
        )
    offsets = None
    if config.start_phase == "random":
        # All components run the same workload (Section 4.2), so they
        # share one loop offset per trial.
        period = system.components[0].profile.period
        offsets = rng.uniform(0.0, period, size=trials)
    best = np.full(trials, np.inf)
    for comp in system.components:
        for _instance in range(comp.multiplicity):
            ttf = _arrival_component_ttf(
                comp, trials, rng, config, offsets=offsets
            )
            np.minimum(best, ttf, out=best)
    return best
