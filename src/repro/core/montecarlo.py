"""Monte-Carlo MTTF estimation (Section 4.3).

The paper's reference method, implemented with two distribution-identical
samplers:

* ``"arrival"`` — the paper's procedure, verbatim: for each component,
  draw an exponential raw-error inter-arrival time, test the masking
  trace at the arrival instant, resample while masked; the component
  fails at the first unmasked arrival and the earliest component failure
  is the system's time to failure.
* ``"inverse"`` — inverse cumulative-hazard transform on the thinned
  (failure) process: ``X = Λ⁻¹(E)``, ``E ~ Exp(1)``. One uniform draw per
  trial regardless of the masking ratio or the number of components
  (hazards of independent components superpose), which is what makes the
  paper's 10^6-trial x 5*10^5-component cluster points tractable in
  Python. The test suite verifies the two samplers agree.

The paper runs 1,000,000 trials per configuration
(:data:`PAPER_TRIAL_COUNT`); estimates report standard errors so callers
can trade trials for precision knowingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import EstimationError
from ..reliability.metrics import MTTFEstimate
from .system import Component, SystemModel

#: Trials used throughout the paper's evaluation (Section 4.3).
PAPER_TRIAL_COUNT = 1_000_000

#: Instance limit above which the arrival sampler refuses to expand
#: multiplicities (use the inverse sampler for large clusters).
ARRIVAL_INSTANCE_LIMIT = 4096


@dataclass(frozen=True)
class MonteCarloConfig:
    """Configuration of a Monte-Carlo estimation run.

    Attributes
    ----------
    trials:
        Number of independent trials. The paper uses 1e6.
    seed:
        Seed for the underlying PCG64 generator; every run is
        reproducible.
    method:
        ``"inverse"`` (default) or ``"arrival"`` (the paper's literal
        resampling procedure; restricted to modest component counts).
    start_phase:
        Where within the workload loop the observation starts.
        ``"zero"`` (default) starts every trial at the beginning of the
        masking trace — the literal reading of the paper's procedure.
        ``"random"`` draws a uniform offset into the loop per trial (all
        components synchronized at the same offset), modelling a system
        whose failure clock starts at an arbitrary point of the
        day/week cycle. The choice only matters when the hazard mass per
        iteration is large (MTTF comparable to the loop length); see the
        fig6b experiment notes.
    max_arrival_rounds:
        Safety cap on resampling rounds per trial for the arrival
        sampler; ``None`` derives a generous cap from the masking ratio.
    """

    trials: int = 200_000
    seed: int = 0
    method: str = "inverse"
    start_phase: str = "zero"
    max_arrival_rounds: int | None = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise EstimationError(f"trials must be >= 1, got {self.trials}")
        if self.method not in ("inverse", "arrival"):
            raise EstimationError(
                f"unknown method {self.method!r}; use 'inverse' or 'arrival'"
            )
        if self.start_phase not in ("zero", "random"):
            raise EstimationError(
                f"unknown start phase {self.start_phase!r}; "
                "use 'zero' or 'random'"
            )


def _estimate_from_samples(
    samples: np.ndarray, method_label: str
) -> MTTFEstimate:
    if np.all(np.isinf(samples)):
        return MTTFEstimate(
            mttf_seconds=math.inf,
            trials=int(samples.size),
            method=method_label,
        )
    if np.any(np.isinf(samples)):
        # A cyclic profile with positive mass fails with probability 1;
        # infinities can only come from zero-mass components.
        raise EstimationError(
            "mixed finite/infinite failure times; check component masses"
        )
    mean = float(samples.mean())
    stderr = float(samples.std(ddof=1) / math.sqrt(samples.size)) if (
        samples.size > 1
    ) else 0.0
    return MTTFEstimate(
        mttf_seconds=mean,
        std_error_seconds=stderr,
        trials=int(samples.size),
        method=method_label,
    )


# ---------------------------------------------------------------------------
# Inverse-hazard sampler.
# ---------------------------------------------------------------------------


def _inverse_samples(
    intensity, config: MonteCarloConfig, rng: np.random.Generator
) -> np.ndarray:
    """Inverse-hazard sampling, honouring the start-phase convention.

    With a random start offset ``u``, the time to failure is
    ``X = Λ⁻¹(E + Λ(u)) - u`` for ``E ~ Exp(1)`` — the first time the
    hazard accrued *after* ``u`` reaches ``E``.
    """
    if intensity.mass <= 0:
        return np.full(config.trials, np.inf)
    e = rng.exponential(size=config.trials)
    if config.start_phase == "zero":
        return intensity.invert_extended(e)
    offsets = rng.uniform(0.0, intensity.period, size=config.trials)
    accrued = intensity.cumulative_extended(offsets)
    return intensity.invert_extended(e + accrued) - offsets


def sample_system_ttf(
    system: SystemModel, config: MonteCarloConfig
) -> np.ndarray:
    """Draw ``trials`` i.i.d. system times to failure (seconds)."""
    rng = np.random.default_rng(config.seed)
    if config.method == "inverse":
        return _inverse_samples(system.combined_intensity(), config, rng)
    return _arrival_system_ttf(system, config.trials, rng, config)


def sample_component_ttf(
    component: Component, config: MonteCarloConfig
) -> np.ndarray:
    """Draw times to failure for a single component instance."""
    rng = np.random.default_rng(config.seed)
    if config.method == "inverse":
        return _inverse_samples(component.intensity, config, rng)
    return _arrival_component_ttf(component, config.trials, rng, config)


def monte_carlo_mttf(
    system: SystemModel, config: MonteCarloConfig | None = None
) -> MTTFEstimate:
    """Monte-Carlo system MTTF (the paper's reference value)."""
    config = config or MonteCarloConfig()
    samples = sample_system_ttf(system, config)
    return _estimate_from_samples(samples, f"monte_carlo[{config.method}]")


def monte_carlo_component_mttf(
    component: Component, config: MonteCarloConfig | None = None
) -> MTTFEstimate:
    """Monte-Carlo MTTF of one component instance."""
    config = config or MonteCarloConfig()
    samples = sample_component_ttf(component, config)
    return _estimate_from_samples(samples, f"monte_carlo[{config.method}]")


# ---------------------------------------------------------------------------
# Arrival (paper-literal) sampler.
# ---------------------------------------------------------------------------


def _arrival_rounds_cap(component: Component, configured: int | None) -> int:
    if configured is not None:
        return configured
    avf = component.avf
    if avf <= 0:
        raise EstimationError(
            f"{component.name}: arrival sampling cannot terminate with "
            "AVF = 0 (never vulnerable); use the inverse sampler"
        )
    # Expected rounds per trial is 1/AVF; allow a wide safety margin so
    # the probability of truncation is negligible (< exp(-50)).
    return max(1000, int(60.0 / avf))


def _arrival_component_ttf(
    component: Component,
    trials: int,
    rng: np.random.Generator,
    config: MonteCarloConfig,
    offsets: np.ndarray | None = None,
) -> np.ndarray:
    """The paper's resampling loop, vectorised across trials.

    For each trial: accumulate exponential inter-arrival times; at each
    arrival, look up the vulnerability at (t mod L) and draw a Bernoulli
    masking decision; stop at the first unmasked arrival. ``offsets``
    (per-trial loop start phases) implement the random-phase convention.
    """
    rate = component.rate_per_second
    if rate <= 0:
        return np.full(trials, np.inf)
    profile = component.profile
    period = profile.period
    cap = _arrival_rounds_cap(component, config.max_arrival_rounds)
    if offsets is None and config.start_phase == "random":
        offsets = rng.uniform(0.0, period, size=trials)
    times = offsets.copy() if offsets is not None else np.zeros(trials)
    result = np.full(trials, np.inf)
    active = np.arange(trials)
    for _round in range(cap):
        if active.size == 0:
            break
        times[active] += rng.exponential(1.0 / rate, size=active.size)
        tau = np.mod(times[active], period)
        # mod can return exactly `period` through float rounding.
        tau = np.where(tau >= period, 0.0, tau)
        vulnerability = np.asarray(profile.value_at(tau), dtype=float)
        unmasked = rng.random(active.size) < vulnerability
        failed = active[unmasked]
        result[failed] = times[failed]
        active = active[~unmasked]
    if active.size:
        raise EstimationError(
            f"{component.name}: {active.size} trials did not fail within "
            f"{cap} resampling rounds; raise max_arrival_rounds or use the "
            "inverse sampler"
        )
    if offsets is not None:
        result -= offsets
    return result


def _arrival_system_ttf(
    system: SystemModel,
    trials: int,
    rng: np.random.Generator,
    config: MonteCarloConfig,
) -> np.ndarray:
    """Min-over-components arrival sampling (multiplicities expanded)."""
    total_instances = system.component_count
    if total_instances > ARRIVAL_INSTANCE_LIMIT:
        raise EstimationError(
            f"arrival sampling would expand {total_instances} component "
            f"instances (> {ARRIVAL_INSTANCE_LIMIT}); use method='inverse'"
        )
    offsets = None
    if config.start_phase == "random":
        # All components run the same workload (Section 4.2), so they
        # share one loop offset per trial.
        period = system.components[0].profile.period
        offsets = rng.uniform(0.0, period, size=trials)
    best = np.full(trials, np.inf)
    for comp in system.components:
        for _instance in range(comp.multiplicity):
            ttf = _arrival_component_ttf(
                comp, trials, rng, config, offsets=offsets
            )
            np.minimum(best, ttf, out=best)
    return best
