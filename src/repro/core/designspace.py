"""Design-space sweep engine (Table 2 and the Section 5 experiments).

The paper explores systems parameterised by

* ``N`` — elements per component (1e5 .. 1e9),
* ``S`` — raw-rate scaling (1 .. 5000),
* ``C`` — components per system (2 .. 500,000),
* workload — SPEC masking traces or the synthesized ``day``/``week``/
  ``combined`` loops,

and reports, for each point, the relative error of the AVF and/or SOFR
step against Monte Carlo. This module enumerates those points and runs
the methods through the batch engine
(:func:`repro.methods.batch.evaluate_design_space`), which memoizes
per-component MTTFs across grid points — the SOFR sweeps re-use one
Monte-Carlo component estimate for every value of C — and can fan out
over a thread pool (``workers=N``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import DesignSpaceError
from ..masking.profile import VulnerabilityProfile
from ..reliability.metrics import achieved_rel_stderr, signed_relative_error
from ..ser.rates import component_rate_per_second
from .montecarlo import MonteCarloConfig
from .system import Component, SystemModel


@dataclass(frozen=True)
class DesignPoint:
    """One configuration of the Table-2 space."""

    workload: str
    n_elements: float
    scaling: float
    components: int = 1

    def __post_init__(self) -> None:
        if self.n_elements <= 0:
            raise DesignSpaceError(
                f"N must be positive, got {self.n_elements}"
            )
        if self.scaling <= 0:
            raise DesignSpaceError(f"S must be positive, got {self.scaling}")
        if self.components < 1:
            raise DesignSpaceError(
                f"C must be >= 1, got {self.components}"
            )

    @property
    def n_times_s(self) -> float:
        return self.n_elements * self.scaling

    @property
    def rate_per_second(self) -> float:
        return component_rate_per_second(self.n_elements, self.scaling)

    @property
    def label(self) -> str:
        """Human-readable grid-point label for tables and ResultSets."""
        return (
            f"{self.workload}/NxS={self.n_times_s:g}/C={self.components}"
        )


@dataclass(frozen=True)
class SweepResult:
    """Method MTTFs and errors at one design point (times in seconds).

    ``monte_carlo_trials`` records how many trials actually produced the
    reference — under an adaptive stopping rule this varies per point,
    and together with ``monte_carlo_stderr`` it is the audit trail of
    what precision each grid point reached.
    """

    point: DesignPoint
    monte_carlo_mttf: float
    monte_carlo_stderr: float
    avf_mttf: float | None = None
    avf_sofr_mttf: float | None = None
    sofr_only_mttf: float | None = None
    first_principles_mttf: float | None = None
    softarch_mttf: float | None = None
    monte_carlo_trials: int = 0

    @property
    def monte_carlo_rel_stderr(self) -> float:
        """Achieved relative stderr of the reference at this point."""
        return achieved_rel_stderr(
            self.monte_carlo_mttf, self.monte_carlo_stderr
        )

    def _error(self, value: float | None) -> float | None:
        if value is None or not math.isfinite(self.monte_carlo_mttf):
            return None
        return signed_relative_error(value, self.monte_carlo_mttf)

    @property
    def avf_error(self) -> float | None:
        """Signed AVF-step error vs Monte Carlo (Figures 3 and 5)."""
        return self._error(self.avf_mttf)

    @property
    def sofr_error(self) -> float | None:
        """Signed SOFR-step-only error vs Monte Carlo (Figure 6)."""
        return self._error(self.sofr_only_mttf)

    @property
    def avf_sofr_error(self) -> float | None:
        return self._error(self.avf_sofr_mttf)

    @property
    def softarch_error(self) -> float | None:
        """SoftArch error vs Monte Carlo (Section 5.4)."""
        return self._error(self.softarch_mttf)


def _mttf_or_none(comparison, method: str) -> float | None:
    est = comparison.estimates.get(method)
    return None if est is None else est.mttf_seconds


class SweepOutcome(SequenceABC):
    """Sweep results plus the machine-readable set behind them.

    Behaves exactly like the list of :class:`SweepResult` the sweeps
    historically returned (indexing, iteration, ``len``), while also
    carrying the engine's serializable
    :class:`~repro.methods.results.ResultSet` so experiments can emit it
    (the CLI's ``--json`` artifact) without re-deriving anything.
    """

    def __init__(self, results: Sequence[SweepResult], result_set):
        self._results = tuple(results)
        self.result_set = result_set

    @property
    def results(self) -> tuple[SweepResult, ...]:
        return self._results

    def __getitem__(self, index):
        return self._results[index]

    def __len__(self) -> int:
        return len(self._results)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepOutcome({len(self._results)} points)"


def component_sweep(
    workloads: Mapping[str, VulnerabilityProfile],
    n_times_s_values: Iterable[float],
    mc_config: MonteCarloConfig | None = None,
    include_softarch: bool = False,
    workers: int = 1,
    executor: str = "thread",
    cache=None,
    shard: tuple[int, int] | None = None,
    progress=None,
    pipeline_methods: bool = False,
    reallocate_budget: bool = False,
    budget_ledger=None,
) -> SweepOutcome:
    """AVF-step sweep: single component (C = 1), as in Figure 5 / §5.2.

    Since only the product ``N x S`` matters for a single component
    (Section 5.2), points are parameterised by it directly.
    ``shard=(i, n)`` evaluates this machine's round-robin share of the
    grid (the outcome's ``result_set`` records the shard and merges
    back with :func:`repro.methods.merge_result_sets`);
    ``budget_ledger`` (a :class:`repro.methods.BudgetLedger`) lets the
    co-running shards of one fleet coordinate freed trial budget
    through the shared cache directory.
    """
    from ..methods import evaluate_design_space, shard_select

    methods = ["avf", "first_principles"]
    if include_softarch:
        methods.append("softarch")
    points: list[DesignPoint] = []
    space: list[tuple[str, SystemModel]] = []
    for name, profile in workloads.items():
        for n_times_s in n_times_s_values:
            point = DesignPoint(
                workload=name, n_elements=n_times_s, scaling=1.0
            )
            points.append(point)
            space.append(
                (
                    point.label,
                    SystemModel(
                        [Component(name, point.rate_per_second, profile)]
                    ),
                )
            )
    result_set = evaluate_design_space(
        space,
        methods=methods,
        reference="monte_carlo",
        mc_config=mc_config or MonteCarloConfig(),
        workers=workers,
        executor=executor,
        cache=cache,
        shard=shard,
        progress=progress,
        pipeline_methods=pipeline_methods,
        reallocate_budget=reallocate_budget,
        budget_ledger=budget_ledger,
    )
    results = [
        SweepResult(
            point=point,
            monte_carlo_mttf=comparison.reference.mttf_seconds,
            monte_carlo_stderr=comparison.reference.std_error_seconds,
            avf_mttf=_mttf_or_none(comparison, "avf"),
            first_principles_mttf=_mttf_or_none(
                comparison, "first_principles"
            ),
            softarch_mttf=_mttf_or_none(comparison, "softarch"),
            monte_carlo_trials=comparison.reference.trials,
        )
        for point, comparison in zip(shard_select(points, shard), result_set)
    ]
    return SweepOutcome(results, result_set)


def system_sweep(
    workloads: Mapping[str, VulnerabilityProfile],
    n_times_s_values: Iterable[float],
    component_counts: Iterable[int],
    mc_config: MonteCarloConfig | None = None,
    include_softarch: bool = False,
    workers: int = 1,
    executor: str = "thread",
    cache=None,
    shard: tuple[int, int] | None = None,
    progress=None,
    pipeline_methods: bool = False,
    reallocate_budget: bool = False,
    budget_ledger=None,
) -> SweepOutcome:
    """SOFR-step sweep over (workload, N x S, C), as in Figure 6.

    Following Section 4.2, the SOFR step is fed *Monte-Carlo* component
    MTTFs so the reported error isolates the SOFR combination; the batch
    engine's component cache computes each distinct (workload, N x S)
    component once and re-uses it for every C. Every system here is
    homogeneous (C identical components), matching the paper's cluster
    experiments. ``shard``/``progress``/``budget_ledger`` behave as in
    :func:`component_sweep`.
    """
    from ..methods import evaluate_design_space, shard_select

    methods = ["sofr_only", "first_principles"]
    if include_softarch:
        methods.append("softarch")
    component_counts = list(component_counts)
    points: list[DesignPoint] = []
    space: list[tuple[str, SystemModel]] = []
    for name, profile in workloads.items():
        for n_times_s in n_times_s_values:
            rate = component_rate_per_second(n_times_s, 1.0)
            for c_count in component_counts:
                point = DesignPoint(
                    workload=name,
                    n_elements=n_times_s,
                    scaling=1.0,
                    components=c_count,
                )
                points.append(point)
                space.append(
                    (
                        point.label,
                        SystemModel(
                            [
                                Component(
                                    name,
                                    rate,
                                    profile,
                                    multiplicity=c_count,
                                )
                            ]
                        ),
                    )
                )
    result_set = evaluate_design_space(
        space,
        methods=methods,
        reference="monte_carlo",
        mc_config=mc_config or MonteCarloConfig(),
        workers=workers,
        executor=executor,
        cache=cache,
        shard=shard,
        progress=progress,
        pipeline_methods=pipeline_methods,
        reallocate_budget=reallocate_budget,
        budget_ledger=budget_ledger,
    )
    results = [
        SweepResult(
            point=point,
            monte_carlo_mttf=comparison.reference.mttf_seconds,
            monte_carlo_stderr=comparison.reference.std_error_seconds,
            sofr_only_mttf=_mttf_or_none(comparison, "sofr_only"),
            avf_sofr_mttf=None,
            first_principles_mttf=_mttf_or_none(
                comparison, "first_principles"
            ),
            softarch_mttf=_mttf_or_none(comparison, "softarch"),
            monte_carlo_trials=comparison.reference.trials,
        )
        for point, comparison in zip(shard_select(points, shard), result_set)
    ]
    return SweepOutcome(results, result_set)


def table2_points(
    workload_names: Sequence[str],
    n_values: Sequence[float] = (1e5, 1e6, 1e7, 1e8, 1e9),
    s_values: Sequence[float] = (1.0, 5.0, 100.0, 2000.0, 5000.0),
    c_values: Sequence[int] = (2, 8, 5000, 50000, 500000),
) -> list[DesignPoint]:
    """Enumerate the full Table-2 cross product."""
    points = []
    for workload in workload_names:
        for n in n_values:
            for s in s_values:
                for c in c_values:
                    points.append(
                        DesignPoint(
                            workload=workload,
                            n_elements=n,
                            scaling=s,
                            components=c,
                        )
                    )
    return points
