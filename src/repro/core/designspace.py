"""Design-space sweep engine (Table 2 and the Section 5 experiments).

The paper explores systems parameterised by

* ``N`` — elements per component (1e5 .. 1e9),
* ``S`` — raw-rate scaling (1 .. 5000),
* ``C`` — components per system (2 .. 500,000),
* workload — SPEC masking traces or the synthesized ``day``/``week``/
  ``combined`` loops,

and reports, for each point, the relative error of the AVF and/or SOFR
step against Monte Carlo. This module enumerates those points and runs
the methods, producing tidy row records the benchmark harness renders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import DesignSpaceError
from ..masking.profile import VulnerabilityProfile
from ..reliability.metrics import signed_relative_error
from ..ser.rates import component_rate_per_second
from .avf import avf_mttf
from .firstprinciples import exact_component_mttf, first_principles_mttf
from .montecarlo import (
    MonteCarloConfig,
    monte_carlo_component_mttf,
    monte_carlo_mttf,
)
from .softarch import softarch_component_mttf, softarch_mttf
from .sofr import sofr_mttf_from_values
from .system import Component, SystemModel


@dataclass(frozen=True)
class DesignPoint:
    """One configuration of the Table-2 space."""

    workload: str
    n_elements: float
    scaling: float
    components: int = 1

    def __post_init__(self) -> None:
        if self.n_elements <= 0:
            raise DesignSpaceError(
                f"N must be positive, got {self.n_elements}"
            )
        if self.scaling <= 0:
            raise DesignSpaceError(f"S must be positive, got {self.scaling}")
        if self.components < 1:
            raise DesignSpaceError(
                f"C must be >= 1, got {self.components}"
            )

    @property
    def n_times_s(self) -> float:
        return self.n_elements * self.scaling

    @property
    def rate_per_second(self) -> float:
        return component_rate_per_second(self.n_elements, self.scaling)


@dataclass(frozen=True)
class SweepResult:
    """Method MTTFs and errors at one design point (times in seconds)."""

    point: DesignPoint
    monte_carlo_mttf: float
    monte_carlo_stderr: float
    avf_mttf: float | None = None
    avf_sofr_mttf: float | None = None
    sofr_only_mttf: float | None = None
    first_principles_mttf: float | None = None
    softarch_mttf: float | None = None

    def _error(self, value: float | None) -> float | None:
        if value is None or not math.isfinite(self.monte_carlo_mttf):
            return None
        return signed_relative_error(value, self.monte_carlo_mttf)

    @property
    def avf_error(self) -> float | None:
        """Signed AVF-step error vs Monte Carlo (Figures 3 and 5)."""
        return self._error(self.avf_mttf)

    @property
    def sofr_error(self) -> float | None:
        """Signed SOFR-step-only error vs Monte Carlo (Figure 6)."""
        return self._error(self.sofr_only_mttf)

    @property
    def avf_sofr_error(self) -> float | None:
        return self._error(self.avf_sofr_mttf)

    @property
    def softarch_error(self) -> float | None:
        """SoftArch error vs Monte Carlo (Section 5.4)."""
        return self._error(self.softarch_mttf)


def component_sweep(
    workloads: Mapping[str, VulnerabilityProfile],
    n_times_s_values: Iterable[float],
    mc_config: MonteCarloConfig | None = None,
    include_softarch: bool = False,
) -> list[SweepResult]:
    """AVF-step sweep: single component (C = 1), as in Figure 5 / §5.2.

    Since only the product ``N x S`` matters for a single component
    (Section 5.2), points are parameterised by it directly.
    """
    mc_config = mc_config or MonteCarloConfig()
    results = []
    for name, profile in workloads.items():
        for n_times_s in n_times_s_values:
            point = DesignPoint(
                workload=name, n_elements=n_times_s, scaling=1.0
            )
            rate = point.rate_per_second
            component = Component(name, rate, profile)
            mc = monte_carlo_component_mttf(component, mc_config)
            results.append(
                SweepResult(
                    point=point,
                    monte_carlo_mttf=mc.mttf_seconds,
                    monte_carlo_stderr=mc.std_error_seconds,
                    avf_mttf=avf_mttf(rate, profile),
                    first_principles_mttf=exact_component_mttf(rate, profile),
                    softarch_mttf=(
                        softarch_component_mttf(rate, profile)
                        if include_softarch
                        else None
                    ),
                )
            )
    return results


def system_sweep(
    workloads: Mapping[str, VulnerabilityProfile],
    n_times_s_values: Iterable[float],
    component_counts: Iterable[int],
    mc_config: MonteCarloConfig | None = None,
    include_softarch: bool = False,
) -> list[SweepResult]:
    """SOFR-step sweep over (workload, N x S, C), as in Figure 6.

    Following Section 4.2, the SOFR step is fed *Monte-Carlo* component
    MTTFs so the reported error isolates the SOFR combination. Every
    system here is homogeneous (C identical components), matching the
    paper's cluster experiments.
    """
    mc_config = mc_config or MonteCarloConfig()
    results = []
    for name, profile in workloads.items():
        for n_times_s in n_times_s_values:
            point_rate = component_rate_per_second(n_times_s, 1.0)
            base = Component(name, point_rate, profile)
            component_mc = monte_carlo_component_mttf(base, mc_config)
            for c_count in component_counts:
                point = DesignPoint(
                    workload=name,
                    n_elements=n_times_s,
                    scaling=1.0,
                    components=c_count,
                )
                system = SystemModel(
                    [
                        Component(
                            name,
                            point_rate,
                            profile,
                            multiplicity=c_count,
                        )
                    ]
                )
                mc = monte_carlo_mttf(system, mc_config)
                sofr_only = sofr_mttf_from_values(
                    [component_mc.mttf_seconds], [c_count]
                )
                results.append(
                    SweepResult(
                        point=point,
                        monte_carlo_mttf=mc.mttf_seconds,
                        monte_carlo_stderr=mc.std_error_seconds,
                        sofr_only_mttf=sofr_only.mttf_seconds,
                        avf_sofr_mttf=None,
                        first_principles_mttf=first_principles_mttf(
                            system
                        ).mttf_seconds,
                        softarch_mttf=(
                            softarch_mttf(system).mttf_seconds
                            if include_softarch
                            else None
                        ),
                    )
                )
    return results


def table2_points(
    workload_names: Sequence[str],
    n_values: Sequence[float] = (1e5, 1e6, 1e7, 1e8, 1e9),
    s_values: Sequence[float] = (1.0, 5.0, 100.0, 2000.0, 5000.0),
    c_values: Sequence[int] = (2, 8, 5000, 50000, 500000),
) -> list[DesignPoint]:
    """Enumerate the full Table-2 cross product."""
    points = []
    for workload in workload_names:
        for n in n_values:
            for s in s_values:
                for c in c_values:
                    points.append(
                        DesignPoint(
                            workload=workload,
                            n_elements=n,
                            scaling=s,
                            components=c,
                        )
                    )
    return points
