"""Method comparison: the paper's discrepancy measurements.

Every results section of the paper reports the *relative error* of an
estimation method against the Monte-Carlo (or, equivalently, exact
first-principles) MTTF. :func:`compare_methods` runs the requested
methods on one system and returns a :class:`MethodComparison` with the
errors, ready for the experiment tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..reliability.metrics import MTTFEstimate, signed_relative_error
from .avf import avf_mttf
from .firstprinciples import exact_component_mttf, first_principles_mttf
from .montecarlo import (
    MonteCarloConfig,
    monte_carlo_component_mttf,
    monte_carlo_mttf,
)
from .softarch import softarch_mttf
from .sofr import avf_sofr_mttf, sofr_mttf_from_components
from .system import SystemModel


@dataclass(frozen=True)
class MethodComparison:
    """MTTFs of every method on one system, with errors vs the reference.

    ``reference`` is the ground-truth estimate (Monte Carlo by default,
    matching the paper; exact first-principles optionally). Error fields
    are signed relative errors ``(method - reference)/reference`` —
    Section 5.2 notes the AVF step can err in either direction.
    """

    system_label: str
    reference: MTTFEstimate
    estimates: dict[str, MTTFEstimate] = field(default_factory=dict)

    def error(self, method: str) -> float:
        """Signed relative error of ``method`` against the reference."""
        est = self.estimates[method]
        return signed_relative_error(
            est.mttf_seconds, self.reference.mttf_seconds
        )

    def abs_error(self, method: str) -> float:
        return abs(self.error(method))

    @property
    def method_names(self) -> list[str]:
        return list(self.estimates.keys())


def compare_methods(
    system: SystemModel,
    label: str = "",
    mc_config: MonteCarloConfig | None = None,
    reference: str = "monte_carlo",
    include_softarch: bool = False,
) -> MethodComparison:
    """Run AVF+SOFR, SOFR-with-MC-components, and the reference methods.

    Parameters
    ----------
    system:
        The system under evaluation.
    label:
        Human-readable system label for tables.
    mc_config:
        Monte-Carlo settings (trials/seed/sampler).
    reference:
        ``"monte_carlo"`` (the paper's choice) or ``"exact"`` (the closed
        form — same expectation with zero sampling noise).
    include_softarch:
        Also run the SoftArch method (Section 5.4).
    """
    mc_config = mc_config or MonteCarloConfig()
    exact = first_principles_mttf(system)
    if reference == "exact":
        ref = exact
    elif reference == "monte_carlo":
        ref = monte_carlo_mttf(system, mc_config)
    else:
        raise ValueError(f"unknown reference {reference!r}")

    estimates: dict[str, MTTFEstimate] = {}
    estimates["avf_sofr"] = avf_sofr_mttf(system)
    # SOFR step alone: component MTTFs from the reference method, so any
    # error is attributable purely to the SOFR combination (Section 4.2).
    if reference == "exact":
        estimates["sofr_only"] = sofr_mttf_from_components(
            system,
            lambda c: exact_component_mttf(c.rate_per_second, c.profile),
        )
    else:
        estimates["sofr_only"] = sofr_mttf_from_components(
            system,
            lambda c: monte_carlo_component_mttf(
                c, mc_config
            ).mttf_seconds,
        )
    estimates["first_principles"] = exact
    if include_softarch:
        estimates["softarch"] = softarch_mttf(system)
    return MethodComparison(
        system_label=label, reference=ref, estimates=estimates
    )


def avf_step_comparison(
    rate_per_second: float,
    profile,
    reference_mttf: float,
) -> tuple[float, float]:
    """AVF-step MTTF and its signed error against a reference (seconds).

    A light-weight helper for the single-component sweeps (Figures 3/5).
    """
    estimate = avf_mttf(rate_per_second, profile)
    if math.isinf(estimate) or math.isinf(reference_mttf):
        raise ValueError("AVF comparison needs finite MTTFs")
    return estimate, signed_relative_error(estimate, reference_mttf)
