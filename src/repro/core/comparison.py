"""Method comparison: the paper's discrepancy measurements.

Every results section of the paper reports the *relative error* of an
estimation method against the Monte-Carlo (or, equivalently, exact
first-principles) MTTF. :func:`compare_methods` runs the requested
methods on one system and returns a :class:`MethodComparison` with the
errors, ready for the experiment tables.

Since the estimator registry (:mod:`repro.methods`) became the single
call surface, :func:`compare_methods` is a thin back-compat shim over
``repro.analyze``; the numbers are identical to the original free-function
pipeline because the registry adapters delegate to the same functions
with the same seeds and trial counts.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from ..reliability.metrics import MTTFEstimate, signed_relative_error
from .avf import avf_mttf
from .montecarlo import MonteCarloConfig
from .system import SystemModel


@dataclass(frozen=True)
class MethodComparison:
    """MTTFs of every method on one system, with errors vs the reference.

    ``reference`` is the ground-truth estimate (Monte Carlo by default,
    matching the paper; exact first-principles optionally). Error fields
    are signed relative errors ``(method - reference)/reference`` —
    Section 5.2 notes the AVF step can err in either direction.
    """

    system_label: str
    reference: MTTFEstimate
    estimates: dict[str, MTTFEstimate] = field(default_factory=dict)

    def error(self, method: str) -> float:
        """Signed relative error of ``method`` against the reference."""
        est = self.estimates[method]
        return signed_relative_error(
            est.mttf_seconds, self.reference.mttf_seconds
        )

    def abs_error(self, method: str) -> float:
        return abs(self.error(method))

    @property
    def method_names(self) -> list[str]:
        return list(self.estimates.keys())

    def to_dict(self) -> dict:
        """Plain-dict form for JSON serialization (lossless)."""
        return {
            "system_label": self.system_label,
            "reference": self.reference.to_dict(),
            "estimates": {
                name: est.to_dict() for name, est in self.estimates.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MethodComparison":
        """Inverse of :meth:`to_dict`."""
        return cls(
            system_label=str(data["system_label"]),
            reference=MTTFEstimate.from_dict(data["reference"]),
            estimates={
                name: MTTFEstimate.from_dict(est)
                for name, est in data["estimates"].items()
            },
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "MethodComparison":
        return cls.from_dict(json.loads(text))


def compare_methods(
    system: SystemModel,
    label: str = "",
    mc_config: MonteCarloConfig | None = None,
    reference: str = "monte_carlo",
    include_softarch: bool = False,
) -> MethodComparison:
    """Run AVF+SOFR, SOFR-with-reference-components, and the reference.

    Back-compat shim over ``repro.analyze``; see
    :mod:`repro.methods.facade` for the fluent form and
    :func:`repro.methods.batch.evaluate_design_space` for many systems
    at once.

    Parameters
    ----------
    system:
        The system under evaluation.
    label:
        Human-readable system label for tables.
    mc_config:
        Monte-Carlo settings (trials/seed/sampler).
    reference:
        ``"monte_carlo"`` (the paper's choice) or ``"exact"`` (the closed
        form — same expectation with zero sampling noise).
    include_softarch:
        Also run the SoftArch method (Section 5.4).
    """
    if reference not in ("monte_carlo", "exact"):
        raise ValueError(f"unknown reference {reference!r}")
    # Imported lazily: repro.methods builds on this module.
    from ..methods import analyze

    methods = ["avf_sofr", "sofr_only", "first_principles"]
    if include_softarch:
        methods.append("softarch")
    return (
        analyze(system, label=label)
        .using(*methods)
        .against(reference)
        .with_mc(mc_config)
        .comparison()
    )


def avf_step_comparison(
    rate_per_second: float,
    profile,
    reference_mttf: float,
) -> tuple[float, float]:
    """AVF-step MTTF and its signed error against a reference (seconds).

    A light-weight helper for the single-component sweeps (Figures 3/5).
    """
    estimate = avf_mttf(rate_per_second, profile)
    if math.isinf(estimate) or math.isinf(reference_mttf):
        raise ValueError("AVF comparison needs finite MTTFs")
    return estimate, signed_relative_error(estimate, reference_mttf)
