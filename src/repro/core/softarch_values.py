"""SoftArch's instruction-level value-graph frontend (DSN 2005 model).

The profile-level entry points in :mod:`repro.core.softarch` operate on
vulnerability profiles. This module implements the tool SoftArch
actually was: coupled to the timing simulator, it walks the scheduled
instruction stream and

* **generates** error probability on each value while it resides in a
  structure — in the functional unit while being computed
  (``1 - e^{-λ_unit·occupancy}`` apportioned per instance) and in the
  register file while dependents still read it
  (``1 - e^{-λ_entry·residency}``);
* **propagates** along data dependences: a backward reachability pass
  marks the values that can affect program output (transitively feeding
  a store's data or a branch's condition — the value-graph analogue of
  ACE analysis). Errors on unreachable values are masked;
* records an **output event** per output-reaching value at the time its
  error first influences dependents, with the probability accumulated
  over the value's residency;
* folds the per-iteration event timeline into an MTTF with
  :class:`~repro.core.softarch.SoftArchTimeline`.

Attributing each value's generation hazard to exactly one output event
keeps the fold free of the reconvergent-fanout double counting a naive
independent-OR propagation suffers (the same bookkeeping the original
tool performs when it tracks which error events contribute to a value).

Relative to the paper's Section-4.1 masking rules this model masks
*more*: a strike on a live register whose consumers never reach a store
or branch dies in the value graph, whereas the Section-4.1 rule counts
any strike on a live register as a failure. The value-graph MTTF
therefore upper-bounds the profile-based MTTF; tests assert exactly
that relationship.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import EstimationError
from ..microarch.config import MachineConfig
from ..microarch.isa import InstructionRecord, OpClass
from ..microarch.pipeline import ScheduleResult
from ..ser.rates import PAPER_UNIT_RATES_PER_YEAR
from ..units import per_year_to_per_second
from .softarch import OutputEvent, SoftArchTimeline


@dataclass(frozen=True)
class SoftArchRates:
    """Raw error rates for the value-graph model (errors/second).

    Attributes
    ----------
    unit_rates:
        Rate per functional-unit pool, keyed by pool name
        ('int', 'fp', 'ls', 'br'). A strike on the pool lands on one of
        its instances uniformly.
    register_file_rate:
        Rate of the whole register file; a strike lands on one of
        ``register_file_entries`` entries uniformly.
    register_file_entries:
        Entry count (Table 1: 256).
    """

    unit_rates: dict = field(default_factory=dict)
    register_file_rate: float = 0.0
    register_file_entries: int = 256

    def __post_init__(self) -> None:
        for name, rate in self.unit_rates.items():
            if rate < 0:
                raise EstimationError(f"{name}: rate must be >= 0")
        if self.register_file_rate < 0:
            raise EstimationError("register file rate must be >= 0")
        if self.register_file_entries < 1:
            raise EstimationError("register file needs >= 1 entry")

    @classmethod
    def paper_rates(cls) -> "SoftArchRates":
        """The Section-4.1 component rates mapped onto this model."""
        return cls(
            unit_rates={
                "int": per_year_to_per_second(
                    PAPER_UNIT_RATES_PER_YEAR["int_unit"]
                ),
                "fp": per_year_to_per_second(
                    PAPER_UNIT_RATES_PER_YEAR["fp_unit"]
                ),
                # The paper does not separate LS/BR logic; the decode
                # rate stands in for the shared front-end/control logic
                # and is attributed via the branch pool.
                "ls": 0.0,
                "br": per_year_to_per_second(
                    PAPER_UNIT_RATES_PER_YEAR["decode_unit"]
                ),
            },
            register_file_rate=per_year_to_per_second(
                PAPER_UNIT_RATES_PER_YEAR["register_file"]
            ),
        )


def _def_use_edges(
    trace: list[InstructionRecord],
) -> tuple[list[list[int]], list[list[int]]]:
    """Producer indices per instruction and consumer lists per producer."""
    current_def: dict[int, int] = {}
    producers: list[list[int]] = []
    consumers: list[list[int]] = [[] for _ in trace]
    for index, record in enumerate(trace):
        sources = []
        for src in record.srcs:
            producer = current_def.get(src)
            if producer is not None:
                sources.append(producer)
                consumers[producer].append(index)
        producers.append(sources)
        if record.dest is not None:
            current_def[record.dest] = index
    return producers, consumers


def _output_reachability(
    trace: list[InstructionRecord],
    consumers: list[list[int]],
) -> list[bool]:
    """Backward pass: can instruction i's result affect program output?

    Stores and branches are outputs themselves; a value-producing
    instruction is output-reaching if any consumer is an output or
    produces an output-reaching value.
    """
    reach = [False] * len(trace)
    for index in range(len(trace) - 1, -1, -1):
        record = trace[index]
        if record.op in (OpClass.STORE, OpClass.BRANCH):
            reach[index] = True
            continue
        reach[index] = any(reach[c] for c in consumers[index])
    return reach


def softarch_from_value_graph(
    trace: list[InstructionRecord],
    schedule: ScheduleResult,
    config: MachineConfig,
    rates: SoftArchRates,
) -> SoftArchTimeline:
    """Build the SoftArch output-event timeline for one scheduled trace.

    The returned timeline treats the trace window as one iteration of an
    infinite loop (the paper's Section 3 convention), so its
    :meth:`~repro.core.softarch.SoftArchTimeline.mttf` is directly
    comparable with the profile-based methods.
    """
    if len(schedule.issue) != len(trace):
        raise EstimationError(
            "schedule and trace describe different instruction counts"
        )
    cycle_time = 1.0 / config.clock_hz
    rf_entry_rate = rates.register_file_rate / rates.register_file_entries
    unit_instance_rate = {
        pool: rates.unit_rates.get(pool, 0.0)
        / config.unit_pool(pool).count
        for pool in ("int", "fp", "ls", "br")
    }

    producers, consumers = _def_use_edges(trace)
    reach = _output_reachability(trace, consumers)

    events: list[OutputEvent] = []
    for index, record in enumerate(trace):
        if not reach[index]:
            continue  # masked: the value can never affect output
        issue_time = schedule.issue[index] * cycle_time
        complete_time = schedule.complete[index] * cycle_time

        # Error generation in the executing unit, charged to this value.
        occupancy = max(complete_time - issue_time, cycle_time)
        hazard = unit_instance_rate[record.op.unit] * occupancy

        first_influence = None
        if record.op is OpClass.STORE:
            # Data reaches memory when the store drains after retirement.
            first_influence = schedule.retire[index] * cycle_time
        elif record.op is OpClass.BRANCH:
            first_influence = complete_time
        else:
            # Register-file residency: errors striking the value while
            # output-reaching consumers still read it are unmasked.
            reaching_reads = [
                schedule.issue[c] * cycle_time
                for c in consumers[index]
                if reach[c]
            ]
            if reaching_reads:
                last_read = max(reaching_reads)
                hazard += rf_entry_rate * max(
                    last_read - complete_time, 0.0
                )
                first_influence = min(reaching_reads)
        if first_influence is None or hazard <= 0.0:
            continue
        probability = -math.expm1(-hazard)
        event_time = max(first_influence, complete_time)
        events.append(
            OutputEvent(
                time=event_time,
                probability=probability,
                # Strikes spread over [issue, event]; with the tiny
                # per-value hazards here the conditional mean is the
                # midpoint.
                mean_time=0.5 * (issue_time + event_time),
            )
        )

    period = schedule.total_cycles * cycle_time
    return SoftArchTimeline(events, period)
