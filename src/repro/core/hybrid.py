"""Hybrid MTTF estimation: the paper's concluding recommendation.

The paper closes by motivating "future work to determine the best
combination of methodologies that will provide the best MTTF estimates
across all relevant scenarios". This module implements the obvious such
combination, built from the validity analysis:

* in the **safe** regime (tiny hazard mass per iteration) the AVF+SOFR
  pipeline is exact to first order and costs almost nothing — use it;
* in the **caution** regime the first-order phase-skew correction
  (:mod:`repro.core.bounds`) removes the leading error at the same
  cost — use the corrected estimator;
* in the **unreliable** regime no closed-form shortcut is safe — fall
  back to the exact first-principles renewal computation (equivalently
  SoftArch), which this library makes as cheap as the masking profile's
  segment count.

Every estimate records which path produced it and the a priori error
bound that justified the choice, so downstream consumers can audit the
decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..reliability.metrics import MTTFEstimate
from ..reliability.series import sofr_mttf
from .avf import avf_mttf
from .bounds import avf_error_bound, corrected_avf_mttf
from .firstprinciples import exact_component_mttf, first_principles_mttf
from .system import Component, SystemModel
from .validity import (
    SAFE_MASS_THRESHOLD,
    UNRELIABLE_MASS_THRESHOLD,
    Regime,
)


@dataclass(frozen=True)
class HybridEstimate:
    """An MTTF with the method-selection audit trail.

    Attributes
    ----------
    estimate:
        The selected MTTF estimate.
    regime:
        The validity regime that drove the selection.
    error_bound:
        A priori bound on the *uncorrected* AVF-step error at this
        configuration (``λ·V(L)/2`` summed over components); reported
        even when an exact path was taken, as the audit trail.
    """

    estimate: MTTFEstimate
    regime: Regime
    error_bound: float

    def __str__(self) -> str:
        return (
            f"{self.estimate} [regime={self.regime.value}, "
            f"avf-bound={self.error_bound:.2e}]"
        )


def _component_regime(component: Component) -> Regime:
    mass = component.intensity.mass
    if mass < SAFE_MASS_THRESHOLD:
        return Regime.SAFE
    if mass < UNRELIABLE_MASS_THRESHOLD:
        return Regime.CAUTION
    return Regime.UNRELIABLE


def hybrid_component_mttf(component: Component) -> HybridEstimate:
    """Best-method MTTF for a single component."""
    regime = _component_regime(component)
    bound = avf_error_bound(component.rate_per_second, component.profile)
    if regime is Regime.SAFE:
        value = avf_mttf(component.rate_per_second, component.profile)
        method = "hybrid[avf]"
    elif regime is Regime.CAUTION:
        value = corrected_avf_mttf(
            component.rate_per_second, component.profile
        )
        method = "hybrid[avf+correction]"
    else:
        value = exact_component_mttf(
            component.rate_per_second, component.profile
        )
        method = "hybrid[first_principles]"
    return HybridEstimate(
        estimate=MTTFEstimate(mttf_seconds=value, method=method),
        regime=regime,
        error_bound=bound,
    )


def hybrid_system_mttf(system: SystemModel) -> HybridEstimate:
    """Best-method MTTF for a series system.

    The SOFR combination is only used when the *system-level* hazard
    mass per iteration is small (the Section-3.2 exponentiality
    condition); otherwise the exact combined-hazard renewal value is
    computed directly.
    """
    system_mass = sum(
        c.multiplicity * c.intensity.mass for c in system.components
    )
    component_bound = sum(
        c.multiplicity
        * avf_error_bound(c.rate_per_second, c.profile)
        for c in system.components
    )
    if system_mass < SAFE_MASS_THRESHOLD:
        mttfs: list[float] = []
        for comp in system.components:
            per_component = hybrid_component_mttf(comp).estimate
            mttfs.extend([per_component.mttf_seconds] * comp.multiplicity)
        return HybridEstimate(
            estimate=MTTFEstimate(
                mttf_seconds=sofr_mttf(mttfs), method="hybrid[avf+sofr]"
            ),
            regime=Regime.SAFE,
            error_bound=component_bound,
        )
    exact = first_principles_mttf(system)
    regime = (
        Regime.CAUTION
        if system_mass < UNRELIABLE_MASS_THRESHOLD
        else Regime.UNRELIABLE
    )
    return HybridEstimate(
        estimate=MTTFEstimate(
            mttf_seconds=exact.mttf_seconds,
            method="hybrid[first_principles]",
        ),
        regime=regime,
        error_bound=component_bound,
    )
