"""SoftArch: first-principles probabilistic MTTF (Section 5.4).

SoftArch [Li et al., DSN 2005] couples a probabilistic error model with
an architecture-level simulation: as the program executes it tracks the
probability that each architecturally visible value is erroneous —
errors are *generated* on a value while it resides in a structure
(probability ``1 - e^{-λτ}`` over residency ``τ``) and *propagate* to
derived values. When a value can affect program output, the model records
a potential-failure event with its accumulated error probability; the
expected time to first failure over the looped workload is the MTTF.

Crucially, SoftArch never assumes uniform vulnerability (the AVF step) or
exponential per-component failure times (the SOFR step). This module
implements the model's event-accumulation core:

* :class:`SoftArchTimeline` — a chronologically ordered list of
  potential-failure events within one workload iteration, folded into an
  MTTF by forward survival accumulation plus a geometric continuation
  over subsequent iterations (``MTTF = m1 + L(1-q)/q``);
* :func:`softarch_mttf` — derives the event list for a whole system from
  the combined failure intensity, one event per elementary interval in
  which every component's vulnerability is constant, so events never
  overlap and the fold is exact;
* the instruction-level value-graph frontend (error generation on
  register residency, propagation along data dependences, output events
  at stores/branches) lives in :mod:`repro.core.softarch_values` and
  produces the same :class:`SoftArchTimeline`.

The fold is deliberately a *different code path* from the closed-form
renewal integral in :mod:`repro.core.firstprinciples`: the paper uses
SoftArch as an independent method and validates it against Monte Carlo
(<1% component, <2% system error); our tests do the same.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import EstimationError
from ..masking.profile import VulnerabilityProfile
from ..reliability.hazard import (
    CyclicIntensity,
    NestedHazard,
    PiecewiseHazard,
)
from ..reliability.metrics import MTTFEstimate
from .system import SystemModel


@dataclass(frozen=True)
class OutputEvent:
    """A potential-failure event within one workload iteration.

    Attributes
    ----------
    time:
        End of the interval this event covers (when the affected value
        reaches program output).
    probability:
        Probability that the value is erroneous — i.e. that an unmasked
        strike occurred over the covered interval.
    mean_time:
        Expected failure instant conditional on this event failing
        (strikes spread over the interval, so this lies inside it).
    """

    time: float
    probability: float
    mean_time: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise EstimationError(
                f"event probability must be in [0,1], got {self.probability}"
            )
        if self.time < 0:
            raise EstimationError(f"event time must be >= 0, got {self.time}")
        if self.mean_time > self.time * (1 + 1e-9):
            raise EstimationError(
                "conditional mean time cannot exceed the event time"
            )


class SoftArchTimeline:
    """Per-iteration output-event timeline folded into an MTTF.

    Events must cover disjoint, chronologically ordered intervals (the
    builders below guarantee this). The fold walks the events once:
    ``P(first failure = event j) = p_j · Π_{i<j}(1 - p_i)``, giving the
    iteration failure probability ``q`` and the conditional mean failure
    time ``m1``; independent identical iterations then give

        ``MTTF = m1 + L · (1 - q) / q``.
    """

    def __init__(self, events: Sequence[OutputEvent], period: float):
        if period <= 0:
            raise EstimationError(f"period must be positive, got {period}")
        self._events = sorted(events, key=lambda e: e.time)
        for event in self._events:
            if event.time > period * (1 + 1e-9):
                raise EstimationError(
                    f"event at {event.time} outside iteration of {period}"
                )
        self._period = float(period)

    @property
    def period(self) -> float:
        return self._period

    @property
    def events(self) -> list[OutputEvent]:
        return list(self._events)

    @property
    def event_count(self) -> int:
        return len(self._events)

    def iteration_failure_probability(self) -> float:
        """``q``: probability one iteration fails, by forward survival."""
        log_survival = 0.0
        for event in self._events:
            if event.probability >= 1.0:
                return 1.0
            log_survival += math.log1p(-event.probability)
        return -math.expm1(log_survival)

    def mttf(self) -> float:
        """Expected time to first failure over looped iterations."""
        survival = 1.0
        weighted_time = 0.0
        q = 0.0
        for event in self._events:
            p_here = survival * event.probability
            weighted_time += p_here * event.mean_time
            q += p_here
            survival *= 1.0 - event.probability
        if q <= 0.0:
            return math.inf
        m1 = weighted_time / q
        return m1 + self._period * (1.0 - q) / q


# ---------------------------------------------------------------------------
# Event construction from failure intensities.
# ---------------------------------------------------------------------------


def _truncated_exp_mean_fraction(x: float) -> float:
    """Mean of a truncated Exp(1) on [0, 1] with total hazard ``x``.

    ``g(x) = 1/x - 1/(e^x - 1)``, evaluated stably: a Taylor series for
    small ``x`` (the direct form suffers catastrophic cancellation) and
    the ``expm1`` form otherwise. ``g`` decreases from 1/2 (uniform
    limit) towards 0 (failures concentrate at the interval start), so
    the conditional mean always lies inside the interval.
    """
    if x < 1e-5:
        return 0.5 - x / 12.0 + x**3 / 720.0
    if x > 700.0:  # e^x overflows; 1/(e^x - 1) is exactly 0 in double
        return 1.0 / x
    return 1.0 / x - 1.0 / math.expm1(x)


def _segment_event(
    start: float, end: float, rate: float
) -> OutputEvent | None:
    """Event for one constant-intensity interval, or ``None`` if inert.

    Generation probability is ``1 - e^{-r·d}``; conditional on a strike,
    its instant is truncated-exponential over the interval, with mean
    ``start + d·g(r·d)`` (see :func:`_truncated_exp_mean_fraction`).
    """
    d = end - start
    if d <= 0 or rate <= 0:
        return None
    x = rate * d
    prob = -math.expm1(-x)
    if prob <= 0.0:
        return None
    mean_local = d * _truncated_exp_mean_fraction(x)
    return OutputEvent(time=end, probability=prob, mean_time=start + mean_local)


def _events_from_piecewise(
    hazard: PiecewiseHazard, offset: float = 0.0, until: float | None = None
) -> list[OutputEvent]:
    """One event per positive-intensity segment of a piecewise hazard."""
    events: list[OutputEvent] = []
    bp = hazard.breakpoints
    rates = hazard.rates
    for j in range(rates.size):
        t0 = float(bp[j])
        t1 = float(bp[j + 1])
        if until is not None:
            if t0 >= until:
                break
            t1 = min(t1, until)
        event = _segment_event(offset + t0, offset + t1, float(rates[j]))
        if event is not None:
            events.append(event)
    return events


#: Below this repetition count, inner cycles are enumerated exactly;
#: above it, each block is folded into one aggregate event (also exact —
#: blocks are sequential and identically distributed).
_ENUMERATION_LIMIT = 1024


def _aggregate_blocks(
    block_events: list[OutputEvent],
    block_period: float,
    repetitions: int,
    offset: float,
) -> OutputEvent | None:
    """Collapse ``repetitions`` identical sequential event blocks.

    Within one block: failure probability ``q_b`` and conditional mean
    ``m_b`` come from the standard fold. Across blocks the first failing
    block index is geometric, so the aggregate has

    * probability ``1 - (1 - q_b)^R``,
    * conditional mean ``offset + E[k | fail]·P_block + m_b`` with
      ``E[k | fail] = q_b·Σ_{k<R} k(1-q_b)^k / (1 - (1-q_b)^R)``.

    Exact because blocks are disjoint in time and i.i.d.
    """
    survival = 1.0
    weighted = 0.0
    q_b = 0.0
    for e in block_events:
        p_here = survival * e.probability
        weighted += p_here * e.mean_time
        q_b += p_here
        survival *= 1.0 - e.probability
    if q_b <= 0.0:
        return None
    m_b = weighted / q_b
    r = repetitions
    if q_b >= 1.0:
        total_q = 1.0
        mean_k = 0.0
    else:
        x = 1.0 - q_b
        total_q = -math.expm1(r * math.log1p(-q_b))
        x_pow_r = math.exp(r * math.log(x)) if x > 0 else 0.0
        # Σ_{k=0}^{r-1} k x^k = x(1 - r x^{r-1} + (r-1) x^r)/(1-x)^2
        x_pow_r_minus_1 = x_pow_r / x if x > 0 else 0.0
        sum_k = x * (1.0 - r * x_pow_r_minus_1 + (r - 1) * x_pow_r) / (
            q_b * q_b
        )
        mean_k = q_b * sum_k / total_q
    return OutputEvent(
        time=offset + r * block_period,
        probability=total_q,
        mean_time=offset + mean_k * block_period + m_b,
    )


def _events_from_nested(hazard: NestedHazard) -> list[OutputEvent]:
    """Events for a nested hazard, aggregating massive inner repetitions."""
    events: list[OutputEvent] = []
    offset = 0.0
    for duration, inner in hazard.segments:
        ratio = duration / inner.period
        full = int(math.floor(ratio + 1e-9))
        tail = duration - full * inner.period
        if tail < 0:
            tail = 0.0
        block = _events_from_piecewise(inner)
        if full > 0 and block:
            if full <= _ENUMERATION_LIMIT:
                for k in range(full):
                    shift = offset + k * inner.period
                    events.extend(
                        OutputEvent(
                            time=shift + e.time,
                            probability=e.probability,
                            mean_time=shift + e.mean_time,
                        )
                        for e in block
                    )
            else:
                aggregate = _aggregate_blocks(
                    block, inner.period, full, offset
                )
                if aggregate is not None:
                    events.append(aggregate)
        if tail > 1e-12 * inner.period:
            shift = offset + full * inner.period
            events.extend(
                OutputEvent(
                    time=shift + e.time,
                    probability=e.probability,
                    mean_time=shift + e.mean_time,
                )
                for e in _events_from_piecewise(inner, until=tail)
            )
        offset += duration
    return events


def timeline_from_intensity(intensity: CyclicIntensity) -> SoftArchTimeline:
    """Build the per-iteration event timeline for a failure intensity."""
    if isinstance(intensity, PiecewiseHazard):
        return SoftArchTimeline(
            _events_from_piecewise(intensity), intensity.period
        )
    if isinstance(intensity, NestedHazard):
        return SoftArchTimeline(
            _events_from_nested(intensity), intensity.period
        )
    raise EstimationError(
        f"SoftArch needs a piecewise or nested intensity, got "
        f"{type(intensity).__name__}"
    )


# ---------------------------------------------------------------------------
# Public entry points.
# ---------------------------------------------------------------------------


def softarch_component_mttf(
    rate_per_second: float, profile: VulnerabilityProfile
) -> float:
    """SoftArch MTTF (seconds) for one component."""
    if rate_per_second < 0:
        raise EstimationError("raw rate must be non-negative")
    if rate_per_second == 0:
        return math.inf
    return timeline_from_intensity(profile.to_hazard(rate_per_second)).mttf()


def softarch_mttf(system: SystemModel) -> MTTFEstimate:
    """SoftArch MTTF of a series system.

    The system's combined failure intensity (components' intensities
    superposed, multiplicities included) is cut into elementary
    constant-intensity intervals; each becomes one output event. Because
    the intervals are disjoint, the forward fold is exact — this mirrors
    SoftArch's operation of accounting for *all* structures at each
    simulation step.
    """
    timeline = timeline_from_intensity(system.combined_intensity())
    return MTTFEstimate(mttf_seconds=timeline.mttf(), method="softarch")
