"""First-order AVF-step error bounds and a corrected estimator.

An extension beyond the paper: the paper shows *when* the AVF step
breaks (λ·L not small) and demonstrates the error empirically; here we
derive the leading error term in closed form, giving (a) a cheap a
priori bound usable without any Monte Carlo, and (b) a corrected
estimator accurate to second order.

Derivation. With cumulative vulnerability ``V(t) = ∫_0^t v`` and hazard
mass ``m = λ·V(L)``, expanding the exact renewal MTTF

    ``E = (∫_0^L e^{-λV(t)} dt) / (1 - e^{-m})``

to first order in ``λ`` gives ``E ≈ E_AVF · (1 + λ·κ)`` with the
**phase-skew coefficient**

    ``κ = V(L)/2 - (1/L) ∫_0^L V(t) dt``.

``κ`` measures where in the loop the vulnerability mass sits: a
front-loaded busy period accrues ``V`` early, making ``∫V`` large and
``κ`` negative (the AVF step overestimates the MTTF); a back-loaded one
gives ``κ > 0``. For the Section-3.1.2 busy/idle loop this reduces to
``κ = -A(L-A)/(2L)``, matching the closed form exactly.

The signed relative error of the AVF step is therefore ``≈ -λ·κ/(1+λκ)``
≈ ``-λ·κ``, and ``|λ·κ| <= m/2`` always — recovering the paper's rule of
thumb that the AVF step is trustworthy whenever the hazard mass per
iteration is small, but with the exact leading constant.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import EstimationError
from ..masking.profile import (
    NestedProfile,
    PiecewiseProfile,
    VulnerabilityProfile,
)
from .avf import avf_mttf


def _integral_of_cumulative_piecewise(profile: PiecewiseProfile) -> float:
    """``∫_0^L V(t) dt`` for a piecewise-constant vulnerability.

    Within segment ``j`` (duration ``d_j``, value ``v_j``, entering
    cumulative ``V_j``): ``∫ = V_j·d_j + v_j·d_j²/2``.
    """
    bp = profile.breakpoints
    values = profile.values
    durations = np.diff(bp)
    entering = np.concatenate(([0.0], np.cumsum(values * durations)))[:-1]
    return float(np.sum(entering * durations + 0.5 * values * durations**2))


def _integral_of_cumulative_nested(profile: NestedProfile) -> float:
    """``∫_0^L V(t) dt`` for a nested profile.

    Over one segment repeating an inner profile with per-cycle mass
    ``w`` and inner integral ``J`` for ``k`` full repetitions:
    ``Σ_{i<k} [entering_i·P + J] `` with ``entering_i = V_seg0 + i·w``.
    """
    total = 0.0
    entering = 0.0
    for duration, inner in profile.segments:
        inner_period = inner.period
        w = inner.vulnerable_time
        j_inner = _integral_of_cumulative_piecewise(inner)
        reps = duration / inner_period
        k = int(math.floor(reps + 1e-9))
        tail = duration - k * inner_period
        # Full repetitions: arithmetic series in the entering mass.
        total += k * (entering * inner_period + j_inner)
        total += w * inner_period * 0.5 * k * (k - 1)
        if tail > 1e-12 * inner_period:
            entering_tail = entering + k * w
            # Partial repetition: integrate the inner cumulative up to
            # `tail` plus the entering offset.
            sub = _partial_integral_of_cumulative(inner, tail)
            total += entering_tail * tail + sub
            entering = entering_tail + float(
                inner.to_hazard(1.0).cumulative(tail)
            )
        else:
            entering += k * w
    return total


def _partial_integral_of_cumulative(
    profile: PiecewiseProfile, x: float
) -> float:
    """``∫_0^x V(t) dt`` for a piecewise profile, ``x <= period``."""
    bp = profile.breakpoints
    values = profile.values
    total = 0.0
    entering = 0.0
    for j in range(values.size):
        t0, t1 = float(bp[j]), float(bp[j + 1])
        if t0 >= x:
            break
        end = min(t1, x)
        d = end - t0
        total += entering * d + 0.5 * values[j] * d * d
        entering += values[j] * (t1 - t0)
    return total


def phase_skew_coefficient(profile: VulnerabilityProfile) -> float:
    """The phase-skew coefficient ``κ = V(L)/2 - (1/L)∫V(t)dt`` (seconds).

    Zero for a constant-vulnerability profile (no skew); negative when
    vulnerability is front-loaded in the loop, positive when
    back-loaded.
    """
    if isinstance(profile, PiecewiseProfile):
        integral = _integral_of_cumulative_piecewise(profile)
    elif isinstance(profile, NestedProfile):
        integral = _integral_of_cumulative_nested(profile)
    else:
        raise EstimationError(
            f"unsupported profile type {type(profile).__name__}"
        )
    return 0.5 * profile.vulnerable_time - integral / profile.period


def avf_error_first_order(
    rate_per_second: float, profile: VulnerabilityProfile
) -> float:
    """Leading-order signed relative error of the AVF step.

    ``(E_AVF - E_exact)/E_exact ≈ -λ·κ`` for small hazard mass. A
    negative return value means the AVF step *underestimates* the MTTF.
    """
    if rate_per_second < 0:
        raise EstimationError("raw rate must be non-negative")
    return -rate_per_second * phase_skew_coefficient(profile)


def corrected_avf_mttf(
    rate_per_second: float, profile: VulnerabilityProfile
) -> float:
    """AVF-step MTTF with the first-order phase-skew correction applied.

    ``E_corrected = E_AVF · (1 + λ·κ)`` — exact through O(m) where the
    plain AVF step is exact only through O(1); its residual error is
    O(m²). Falls back to the plain AVF value when the correction would
    be non-positive (mass far outside the expansion's radius).
    """
    base = avf_mttf(rate_per_second, profile)
    if math.isinf(base):
        return base
    factor = 1.0 + rate_per_second * phase_skew_coefficient(profile)
    if factor <= 0.0:
        return base
    return base * factor


def avf_error_bound(
    rate_per_second: float, profile: VulnerabilityProfile
) -> float:
    """A rate-only a priori bound: ``|error| <= m/2`` with ``m = λ·V(L)``.

    ``|κ| <= V(L)/2`` for any profile (``0 <= V(t) <= V(L)`` pointwise),
    so the leading error can never exceed half the hazard mass per
    iteration. This is the quantitative form of the paper's "valid when
    λ·L → 0" conclusion.
    """
    if rate_per_second < 0:
        raise EstimationError("raw rate must be non-negative")
    return 0.5 * rate_per_second * profile.vulnerable_time
