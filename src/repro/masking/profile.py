"""Cyclic vulnerability profiles.

Profiles are dimensionless (values in ``[0, 1]``); converting one into a
failure intensity requires a raw error rate (errors/second), at which
point the :mod:`repro.reliability.hazard` machinery takes over.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..errors import ProfileError
from ..reliability.hazard import CyclicIntensity, NestedHazard, PiecewiseHazard


class VulnerabilityProfile(ABC):
    """A cyclic vulnerability function ``v(t) ∈ [0, 1]`` with period L."""

    @property
    @abstractmethod
    def period(self) -> float:
        """Length of one workload iteration, seconds (the paper's L)."""

    @property
    @abstractmethod
    def vulnerable_time(self) -> float:
        """``V(L) = ∫_0^L v(t) dt`` — ACE-weighted time per iteration."""

    @abstractmethod
    def to_hazard(self, rate_per_second: float) -> CyclicIntensity:
        """Failure intensity ``rate * v(t)`` as a cyclic hazard."""

    @abstractmethod
    def value_at(self, tau):
        """Vulnerability at local time ``tau ∈ [0, period)`` (vectorised)."""

    @property
    @abstractmethod
    def fingerprint(self) -> str:
        """Stable content digest of the profile.

        Two profiles with identical shape (same breakpoints and values,
        bit-for-bit) share a fingerprint regardless of object identity;
        any change to the content changes it. This is the cache-key
        identity the estimation caches use (:mod:`repro.methods.cache`),
        replacing fragile ``id()`` keys and surviving process boundaries
        and reruns.
        """

    @abstractmethod
    def to_dict(self) -> dict:
        """Lossless plain-dict wire form (see :func:`profile_from_dict`).

        The round trip preserves the profile bit-for-bit — in
        particular ``profile_from_dict(p.to_dict()).fingerprint ==
        p.fingerprint`` — because Python's JSON float serialization is
        shortest-round-trip for float64. This is what lets the analysis
        service's content-addressed request dedup work across the HTTP
        boundary.
        """

    @property
    def avf(self) -> float:
        """The architecture vulnerability factor: time-average of ``v``.

        This is exactly the AVF-step definition (Section 2.2): the
        fraction of time the component holds/processes ACE state.
        """
        return self.vulnerable_time / self.period


class PiecewiseProfile(VulnerabilityProfile):
    """Piecewise-constant vulnerability over one period.

    Parameters
    ----------
    breakpoints:
        Shape ``(m+1,)``; starts at 0, strictly increasing, last entry is
        the period.
    values:
        Shape ``(m,)``; each in ``[0, 1]``.
    """

    def __init__(self, breakpoints: Sequence[float], values: Sequence[float]):
        bp = np.asarray(breakpoints, dtype=float)
        vals = np.asarray(values, dtype=float)
        if np.any((vals < 0) | (vals > 1)):
            raise ProfileError("vulnerability values must lie in [0, 1]")
        # Reuse PiecewiseHazard's validation by constructing the unit-rate
        # hazard; it is also the workhorse for all queries.
        self._unit = PiecewiseHazard(bp, vals)

    @classmethod
    def from_segments(
        cls, segments: Sequence[tuple[float, float]]
    ) -> "PiecewiseProfile":
        """Build from ``(duration, vulnerability)`` pairs."""
        if not segments:
            raise ProfileError("need at least one segment")
        durations = np.asarray([d for d, _ in segments], dtype=float)
        if np.any(durations <= 0):
            raise ProfileError("segment durations must be positive")
        bp = np.concatenate(([0.0], np.cumsum(durations)))
        return cls(bp, [v for _, v in segments])

    @classmethod
    def constant(cls, value: float, period: float) -> "PiecewiseProfile":
        """A constant vulnerability (``value`` for the whole period)."""
        return cls([0.0, period], [value])

    @property
    def breakpoints(self) -> np.ndarray:
        return self._unit.breakpoints

    @property
    def values(self) -> np.ndarray:
        return self._unit.rates

    @property
    def period(self) -> float:
        return self._unit.period

    @property
    def vulnerable_time(self) -> float:
        return self._unit.mass

    @property
    def segment_count(self) -> int:
        return int(self._unit.rates.size)

    @property
    def fingerprint(self) -> str:
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            digest = hashlib.sha256(b"piecewise/v1:")
            digest.update(
                np.ascontiguousarray(
                    self._unit.breakpoints, dtype=np.float64
                ).tobytes()
            )
            digest.update(b"|")
            digest.update(
                np.ascontiguousarray(
                    self._unit.rates, dtype=np.float64
                ).tobytes()
            )
            fp = digest.hexdigest()
            self._fingerprint = fp
        return fp

    def to_dict(self) -> dict:
        return {
            "kind": "piecewise",
            "breakpoints": [float(b) for b in self._unit.breakpoints],
            "values": [float(v) for v in self._unit.rates],
        }

    def value_at(self, tau):
        """Vulnerability at local time ``tau ∈ [0, period)``."""
        return self._unit.rate_at(tau)

    def to_hazard(self, rate_per_second: float) -> PiecewiseHazard:
        if rate_per_second < 0:
            raise ProfileError("raw error rate must be non-negative")
        return self._unit.scaled(rate_per_second)

    def tiled(self, n: int) -> "PiecewiseProfile":
        """The profile repeated over ``n`` consecutive periods."""
        tiled = self._unit.tiled(n)
        return PiecewiseProfile(tiled.breakpoints, tiled.rates)

    def dilated(self, factor: float) -> "PiecewiseProfile":
        """The profile stretched in time by ``factor`` (> 0).

        Every segment's duration is multiplied by ``factor``; the AVF is
        unchanged. Used to map a short simulated masking window onto the
        paper's 1e8-instruction loop length (see
        :mod:`repro.harness.spec_setup`): the dimensionless quantity
        driving AVF/SOFR validity is the hazard mass per iteration
        ``λ·V(L)``, which scales linearly with time dilation.
        """
        if factor <= 0:
            raise ProfileError(f"dilation factor must be positive, got {factor}")
        return PiecewiseProfile(
            self._unit.breakpoints * factor, self._unit.rates
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PiecewiseProfile(period={self.period:g}, avf={self.avf:.4f}, "
            f"segments={self.segment_count})"
        )


class NestedProfile(VulnerabilityProfile):
    """Two-time-scale profile: outer segments each repeating an inner profile.

    Models the paper's ``combined`` workload (Section 4.2): an outer loop
    of 24 hours whose halves each cycle one SPEC benchmark's masking
    trace. Enumerate-and-flatten is infeasible (billions of inner
    repetitions), so this class delegates to
    :class:`~repro.reliability.hazard.NestedHazard` closed forms.

    Parameters
    ----------
    segments:
        ``(duration, inner)`` pairs where ``inner`` is a
        :class:`PiecewiseProfile` or a plain vulnerability value.
    """

    def __init__(
        self,
        segments: Sequence[tuple[float, "PiecewiseProfile | float"]],
    ):
        if not segments:
            raise ProfileError("need at least one segment")
        normalised: list[tuple[float, PiecewiseProfile]] = []
        for duration, inner in segments:
            duration = float(duration)
            if duration <= 0:
                raise ProfileError("segment durations must be positive")
            if isinstance(inner, (int, float)):
                inner = PiecewiseProfile.constant(float(inner), duration)
            if not isinstance(inner, PiecewiseProfile):
                raise ProfileError(
                    "inner profile must be a PiecewiseProfile or a number"
                )
            normalised.append((duration, inner))
        self._segments = normalised
        self._unit = NestedHazard(
            [(d, p.to_hazard(1.0)) for d, p in normalised]
        )

    @property
    def segments(self) -> list[tuple[float, PiecewiseProfile]]:
        return list(self._segments)

    @property
    def period(self) -> float:
        return self._unit.period

    @property
    def vulnerable_time(self) -> float:
        return self._unit.mass

    @property
    def fingerprint(self) -> str:
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            digest = hashlib.sha256(b"nested/v1:")
            for duration, inner in self._segments:
                digest.update(float(duration).hex().encode("ascii"))
                digest.update(b"|")
                digest.update(inner.fingerprint.encode("ascii"))
                digest.update(b";")
            fp = digest.hexdigest()
            self._fingerprint = fp
        return fp

    def to_dict(self) -> dict:
        return {
            "kind": "nested",
            "segments": [
                [float(duration), inner.to_dict()]
                for duration, inner in self._segments
            ],
        }

    def to_hazard(self, rate_per_second: float) -> NestedHazard:
        if rate_per_second < 0:
            raise ProfileError("raw error rate must be non-negative")
        return self._unit.scaled(rate_per_second)

    def value_at(self, tau):
        """Vulnerability at local time ``tau ∈ [0, period)`` (vectorised)."""
        tau = np.asarray(tau, dtype=float)
        scalar = tau.ndim == 0
        tau = np.atleast_1d(tau)
        if np.any((tau < 0) | (tau >= self.period)):
            raise ProfileError("tau outside [0, period)")
        starts = np.concatenate(
            ([0.0], np.cumsum([d for d, _ in self._segments]))
        )
        seg = np.clip(
            np.searchsorted(starts, tau, side="right") - 1,
            0,
            len(self._segments) - 1,
        )
        out = np.empty_like(tau)
        for j in np.unique(seg):
            sel = seg == j
            inner = self._segments[j][1]
            local = np.mod(tau[sel] - starts[j], inner.period)
            out[sel] = inner.value_at(
                np.clip(local, 0, inner.period * (1 - 1e-15))
            )
        return out[0] if scalar else out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NestedProfile(period={self.period:g}, avf={self.avf:.4f}, "
            f"segments={len(self._segments)})"
        )


def profile_from_dict(data: dict) -> VulnerabilityProfile:
    """Rebuild a profile from its :meth:`~VulnerabilityProfile.to_dict` form.

    Dispatches on the ``kind`` tag (``"piecewise"`` or ``"nested"``).
    The reconstruction is lossless: breakpoints and values come back
    bit-for-bit, so the rebuilt profile's ``fingerprint`` — and with it
    every content-addressed cache key derived from it — matches the
    original's.
    """
    if not isinstance(data, dict):
        raise ProfileError(f"profile wire form must be a dict, got {data!r}")
    kind = data.get("kind")
    if kind == "piecewise":
        try:
            return PiecewiseProfile(data["breakpoints"], data["values"])
        except KeyError as missing:
            raise ProfileError(
                f"piecewise profile wire form is missing {missing}"
            ) from None
    if kind == "nested":
        try:
            segments = data["segments"]
        except KeyError:
            raise ProfileError(
                "nested profile wire form is missing 'segments'"
            ) from None
        rebuilt = []
        for segment in segments:
            duration, inner = segment
            inner_profile = profile_from_dict(inner)
            if not isinstance(inner_profile, PiecewiseProfile):
                raise ProfileError(
                    "nested profile segments must hold piecewise inners"
                )
            rebuilt.append((float(duration), inner_profile))
        return NestedProfile(rebuilt)
    raise ProfileError(
        f"unknown profile kind {kind!r}; expected 'piecewise' or 'nested'"
    )


def busy_idle_profile(
    busy_time: float, period: float, busy_value: float = 1.0
) -> PiecewiseProfile:
    """The paper's canonical synthetic workload (Section 3.1.2).

    Vulnerable (``busy_value``) for the first ``busy_time`` seconds of
    each iteration, masked for the rest. ``busy_time == period`` yields an
    always-vulnerable profile.
    """
    if not 0 < busy_time <= period:
        raise ProfileError(
            f"busy time must be in (0, period]; got {busy_time} of {period}"
        )
    if busy_time == period:
        return PiecewiseProfile.constant(busy_value, period)
    return PiecewiseProfile(
        [0.0, busy_time, period], [busy_value, 0.0]
    )


def from_cycle_mask(
    mask: np.ndarray, cycle_time: float
) -> PiecewiseProfile:
    """Compress a per-cycle vulnerability array into a profile.

    ``mask`` may be boolean (busy/idle) or float in ``[0, 1]``
    (fractional liveness). Consecutive equal cycles are run-length
    encoded; a 100k-cycle trace with phase behaviour typically compresses
    by 10-100x.
    """
    mask = np.asarray(mask)
    if mask.ndim != 1 or mask.size == 0:
        raise ProfileError("mask must be a non-empty 1-D array")
    if cycle_time <= 0:
        raise ProfileError(f"cycle time must be positive, got {cycle_time}")
    values = mask.astype(float)
    if np.any((values < 0) | (values > 1)):
        raise ProfileError("mask values must lie in [0, 1]")
    change = np.flatnonzero(np.diff(values)) + 1
    starts = np.concatenate(([0], change))
    run_values = values[starts]
    bp = np.concatenate((starts, [values.size])) * cycle_time
    return PiecewiseProfile(bp, run_values)
