"""Register-liveness accounting.

The paper's register-file masking model (Section 4.1): a raw error
strikes each register with equal probability; the error is masked iff the
struck register holds a value that will never be read again. The
per-cycle vulnerability of the register file is therefore the fraction of
registers currently *live* (value still to be read).

The microarchitecture simulator emits, for every architectural register,
the intervals (in cycles) during which its current value is live; this
module turns interval sets into per-cycle live counts with a
difference-array sweep.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import TraceError


def live_counts_from_intervals(
    intervals: Iterable[tuple[int, int]],
    n_cycles: int,
) -> np.ndarray:
    """Per-cycle count of live registers from half-open live intervals.

    Parameters
    ----------
    intervals:
        ``(start_cycle, end_cycle)`` pairs, half-open ``[start, end)``,
        each marking one register's value being live over those cycles.
        Intervals may overlap arbitrarily (different registers) and are
        clipped to ``[0, n_cycles)``.
    n_cycles:
        Length of the observation window.

    Returns
    -------
    ``int64`` array of shape ``(n_cycles,)``.
    """
    if n_cycles <= 0:
        raise TraceError(f"cycle count must be positive, got {n_cycles}")
    diff = np.zeros(n_cycles + 1, dtype=np.int64)
    for start, end in intervals:
        if end <= start:
            continue
        start = max(int(start), 0)
        end = min(int(end), n_cycles)
        if start >= n_cycles or end <= 0:
            continue
        diff[start] += 1
        diff[end] -= 1
    return np.cumsum(diff[:-1])


def live_fraction(
    intervals: Iterable[tuple[int, int]],
    n_cycles: int,
    n_registers: int,
) -> np.ndarray:
    """Per-cycle live fraction (the register-file vulnerability mask)."""
    if n_registers <= 0:
        raise TraceError(f"register count must be positive, got {n_registers}")
    counts = live_counts_from_intervals(intervals, n_cycles)
    if counts.max(initial=0) > n_registers:
        raise TraceError(
            "live count exceeds register count; overlapping intervals for "
            "one register?"
        )
    return counts / float(n_registers)


def merge_register_intervals(
    per_register: Sequence[Sequence[tuple[int, int]]],
) -> list[tuple[int, int]]:
    """Flatten per-register interval lists, validating per-register order.

    Within one register, live intervals must be non-overlapping and
    sorted (a register's value is redefined before it can be live again).
    """
    merged: list[tuple[int, int]] = []
    for reg_index, intervals in enumerate(per_register):
        prev_end = -1
        for start, end in intervals:
            if start < prev_end:
                raise TraceError(
                    f"register {reg_index} has overlapping live intervals"
                )
            prev_end = end
            merged.append((start, end))
    return merged
