"""Vulnerability profiles and masking traces.

A *vulnerability profile* ``v(t) ∈ [0, 1]`` gives, for each point of a
cyclic workload of period ``L``, the probability that a raw soft error
striking the component at that time is **not** masked:

* for a functional unit the paper's model is binary — ``v = 1`` when the
  unit is busy, ``0`` when idle (Section 4.1);
* for the register file a strike hits a uniformly random register, so
  ``v(t)`` is the fraction of registers whose values are still to be
  read — a fractional profile (Section 4.1);
* for the synthesized ``day``/``week`` workloads ``v`` is busy/idle at
  hour scale; for ``combined`` it is a two-time-scale nested profile
  (Section 4.2).

The AVF of a component is exactly the time average of ``v`` over one
period. Multiplying a profile by a raw error rate yields the failure
intensity consumed by the reliability machinery.
"""

from .profile import (
    NestedProfile,
    PiecewiseProfile,
    VulnerabilityProfile,
    busy_idle_profile,
    from_cycle_mask,
    profile_from_dict,
)
from .trace import MaskingTrace
from .compose import concatenate_profiles, or_combine
from .liveness import live_counts_from_intervals

__all__ = [
    "NestedProfile",
    "PiecewiseProfile",
    "VulnerabilityProfile",
    "busy_idle_profile",
    "from_cycle_mask",
    "profile_from_dict",
    "MaskingTrace",
    "concatenate_profiles",
    "or_combine",
    "live_counts_from_intervals",
]
