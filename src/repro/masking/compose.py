"""Profile composition.

Two distinct composition semantics appear in the paper's experiments:

* **Hazard addition** — independent raw-error processes per component;
  the processor fails when any unit fails. That composition lives in
  :class:`repro.reliability.series.SeriesSystem` (intensities add) and is
  what Section 4.2 uses ("apply these three traces ... simultaneously").
* **Pointwise OR** — a *single* strike process hitting a component whose
  sub-structures mask independently: the strike is unmasked if it is
  unmasked by any sub-structure it can affect. :func:`or_combine`
  implements this for same-period piecewise profiles.

:func:`concatenate_profiles` builds phase-structured workloads (the
``combined`` benchmark's outer loop) by sequencing profiles in time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ProfileError
from ..reliability.hazard import _REL_TOL  # shared tolerance
from .profile import NestedProfile, PiecewiseProfile


def or_combine(profiles: Sequence[PiecewiseProfile]) -> PiecewiseProfile:
    """Pointwise ``1 - prod(1 - v_i)`` over same-period profiles.

    For binary profiles this is a logical OR of busy masks. The result is
    always >= each input and <= 1 (tested as a property invariant).
    """
    if not profiles:
        raise ProfileError("need at least one profile")
    period = profiles[0].period
    for p in profiles[1:]:
        if abs(p.period - period) > _REL_TOL * period:
            raise ProfileError(
                f"period mismatch: {p.period} vs {period}; tile first"
            )
    bp = np.unique(np.concatenate([p.breakpoints for p in profiles]))
    bp[-1] = period
    mids = 0.5 * (bp[:-1] + bp[1:])
    survive = np.ones_like(mids)
    for p in profiles:
        vals = p.value_at(np.clip(mids, 0, p.period * (1 - 1e-15)))
        survive *= 1.0 - vals
    return PiecewiseProfile(bp, 1.0 - survive)


def concatenate_profiles(
    segments: Sequence[tuple[float, "PiecewiseProfile | float"]],
) -> NestedProfile:
    """Sequence profiles in time into one long outer cycle.

    Each ``(duration, profile)`` pair runs the profile cyclically for
    ``duration`` seconds, then the next segment starts. This is exactly
    the structure of the ``combined`` workload (Section 4.2).
    """
    return NestedProfile(segments)


def weighted_average_profile(
    profiles: Sequence[PiecewiseProfile], weights: Sequence[float]
) -> PiecewiseProfile:
    """Pointwise convex combination of same-period profiles.

    Used to model a component whose strikes are distributed across
    sub-structures with given probabilities (e.g. a register file whose
    strike lands on the integer bank with probability 80/256).
    """
    if not profiles:
        raise ProfileError("need at least one profile")
    if len(weights) != len(profiles):
        raise ProfileError("weights must match profiles in length")
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0) or w.sum() <= 0:
        raise ProfileError("weights must be non-negative and not all zero")
    w = w / w.sum()
    period = profiles[0].period
    for p in profiles[1:]:
        if abs(p.period - period) > _REL_TOL * period:
            raise ProfileError("period mismatch; tile first")
    bp = np.unique(np.concatenate([p.breakpoints for p in profiles]))
    bp[-1] = period
    mids = 0.5 * (bp[:-1] + bp[1:])
    vals = np.zeros_like(mids)
    for p, wi in zip(profiles, w):
        vals += wi * p.value_at(np.clip(mids, 0, p.period * (1 - 1e-15)))
    return PiecewiseProfile(bp, np.clip(vals, 0.0, 1.0))
