"""Masking traces: the simulator's per-cycle vulnerability output.

A :class:`MaskingTrace` holds, for one workload window on one machine
configuration, a named per-cycle vulnerability array per component —
exactly the paper's "masking trace" artifact (Section 4): for each cycle
and each component, whether (or with what probability) a raw error in
that cycle would escape masking.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import numpy as np

from ..errors import TraceError
from ..units import BASE_CLOCK_HZ
from .profile import PiecewiseProfile, from_cycle_mask


class MaskingTrace:
    """Named per-cycle vulnerability masks over a common window.

    Parameters
    ----------
    masks:
        Mapping from component name to a 1-D array; boolean arrays model
        busy/idle units, float arrays in ``[0, 1]`` model fractional
        vulnerability (register liveness). All arrays must share one
        length.
    clock_hz:
        The simulated clock, to convert cycles to seconds.
    workload:
        Label of the generating workload (for reports).
    """

    def __init__(
        self,
        masks: Mapping[str, np.ndarray],
        clock_hz: float = BASE_CLOCK_HZ,
        workload: str = "",
    ):
        if not masks:
            raise TraceError("a masking trace needs at least one component")
        if clock_hz <= 0:
            raise TraceError(f"clock must be positive, got {clock_hz}")
        self._masks: dict[str, np.ndarray] = {}
        length = None
        for name, arr in masks.items():
            arr = np.asarray(arr)
            if arr.ndim != 1 or arr.size == 0:
                raise TraceError(
                    f"component {name!r}: mask must be a non-empty 1-D array"
                )
            if length is None:
                length = arr.size
            elif arr.size != length:
                raise TraceError(
                    f"component {name!r}: length {arr.size} != {length}"
                )
            values = arr.astype(float)
            if np.any((values < 0) | (values > 1)):
                raise TraceError(
                    f"component {name!r}: values must lie in [0, 1]"
                )
            self._masks[name] = values
        self._clock_hz = float(clock_hz)
        self.workload = workload

    # -- accessors -------------------------------------------------------

    @property
    def component_names(self) -> list[str]:
        return list(self._masks.keys())

    @property
    def n_cycles(self) -> int:
        return next(iter(self._masks.values())).size

    @property
    def clock_hz(self) -> float:
        return self._clock_hz

    @property
    def cycle_time(self) -> float:
        return 1.0 / self._clock_hz

    @property
    def duration_seconds(self) -> float:
        return self.n_cycles / self._clock_hz

    def mask(self, name: str) -> np.ndarray:
        if name not in self._masks:
            raise TraceError(
                f"unknown component {name!r}; have {self.component_names}"
            )
        return self._masks[name]

    def profile(self, name: str) -> PiecewiseProfile:
        """Run-length-compressed vulnerability profile for a component."""
        return from_cycle_mask(self.mask(name), self.cycle_time)

    def avf(self, name: str) -> float:
        """The component's AVF: time-average vulnerability (Section 2.2)."""
        return float(self.mask(name).mean())

    def utilization_summary(self) -> dict[str, float]:
        """AVF per component — the headline numbers of a masking trace."""
        return {name: self.avf(name) for name in self._masks}

    # -- persistence (used by the benchmark harness cache) ----------------

    def save(self, path: "str | Path") -> None:
        """Serialise to a ``.npz`` file."""
        path = Path(path)
        payload = {f"mask_{k}": v for k, v in self._masks.items()}
        payload["_clock_hz"] = np.asarray(self._clock_hz)
        payload["_workload"] = np.asarray(self.workload)
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path: "str | Path") -> "MaskingTrace":
        """Deserialise from :meth:`save` output."""
        with np.load(Path(path), allow_pickle=False) as data:
            masks = {
                key[len("mask_"):]: data[key]
                for key in data.files
                if key.startswith("mask_")
            }
            clock = float(data["_clock_hz"])
            workload = str(data["_workload"])
        return cls(masks, clock_hz=clock, workload=workload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        comps = ", ".join(
            f"{n}:{self.avf(n):.3f}" for n in self.component_names
        )
        return (
            f"MaskingTrace(workload={self.workload!r}, "
            f"cycles={self.n_cycles}, avf=[{comps}])"
        )
