"""Implementations of every paper artifact (tables, figures, claims).

Each ``run_*`` function regenerates one artifact and returns an
:class:`~repro.harness.experiment.ExperimentResult`. Every experiment
routes its estimation through the batch engine
(:func:`repro.methods.evaluate_design_space`), so all of them share the
same memoization, fan-out, and serializable ``result_set`` machinery,
and all honour the runner's parallel/caching knobs:

* ``workers`` / ``executor`` — fan the grid out over a thread or
  process pool (``--workers`` / ``--executor``);
* ``cache_dir`` — back the estimate cache with an on-disk,
  content-addressed store so repeated invocations skip re-estimation
  (``--cache-dir``);
* ``mc_chunks`` — split each Monte-Carlo estimate into seeded chunks
  (``--mc-chunks``); numbers depend on the chunking, never on the
  worker count.

Defaults are sized to finish in seconds; the paper-scale knobs
(Monte-Carlo trials, SPEC window) are environment variables:

* ``REPRO_MC_TRIALS``          — trials per Monte-Carlo estimate
  (default 100,000; the paper uses 1,000,000);
* ``REPRO_SPEC_INSTRUCTIONS``  — simulated window per benchmark
  (default 40,000; the paper uses 1e8 — see
  :func:`repro.harness.spec_setup.paper_dilation` for how experiments
  bridge the difference).
"""

from __future__ import annotations

import dataclasses
import os
import zlib

from ..analytical.busy_idle import figure3_curves
from ..analytical.sofr_halfnormal import figure4_curve
from ..core.comparison import MethodComparison
from ..core.designspace import component_sweep, system_sweep, table2_points
from ..core.montecarlo import MonteCarloConfig, StoppingRule
from ..core.system import Component, SystemModel
from ..methods import (
    ResultSet,
    canonical_name,
    evaluate_design_space,
    shard_select,
)
from ..masking.profile import VulnerabilityProfile
from ..microarch.config import MachineConfig
from ..reliability.metrics import MTTFEstimate, signed_relative_error
from ..ser.environment import (
    TABLE2_COMPONENT_COUNTS,
    TABLE2_ELEMENT_COUNTS,
    TABLE2_SCALING_FACTORS,
)
from ..ser.rates import component_rate_per_second
from ..units import SECONDS_PER_YEAR
from ..workloads.longrun import combined_workload, day_workload, week_workload
from ..workloads.spec import SPEC_FP_NAMES, SPEC_INT_NAMES
from .experiment import (
    ExperimentResult,
    cache_note,
    make_cache,
    make_ledger,
)
from .figures import render_series
from .spec_setup import (
    masking_trace_for,
    processor_profile,
    spec_uniprocessor_system,
)
from .tables import Table, percent

#: Trials per Monte-Carlo estimate in harness runs.
DEFAULT_TRIALS = int(os.environ.get("REPRO_MC_TRIALS", "100000"))

#: Benchmarks used where the paper shows "representative" SPEC results.
REPRESENTATIVE_SPEC = ("gzip", "mcf", "swim")

#: Benchmark pair for the `combined` workload (one INT + one FP).
COMBINED_PAIR = ("gzip", "swim")


def _mc_config(
    trials: int | None,
    seed: int = 0,
    chunks: int = 1,
    target_stderr: float | None = None,
    kernel: str = "numpy",
) -> MonteCarloConfig:
    """Monte-Carlo settings for one experiment run.

    ``target_stderr`` (the CLI's ``--target-stderr``) attaches a
    :class:`StoppingRule`: the run becomes adaptive, scheduling trial
    chunks only until the estimate's relative stderr meets the target,
    with the configured trial count as the budget.
    """
    stopping = (
        StoppingRule(target_rel_stderr=target_stderr)
        if target_stderr is not None
        else None
    )
    return MonteCarloConfig(
        trials=trials or DEFAULT_TRIALS,
        seed=seed,
        chunks=chunks,
        stopping=stopping,
        kernel=kernel,
    )


def _bench_seed(bench: str) -> int:
    """Stable per-benchmark seed (``hash(str)`` is process-randomized)."""
    return zlib.crc32(bench.encode("utf-8"))


def _shard_suffix(shard: tuple[int, int] | None) -> str:
    """Headline qualifier so per-shard logs never read as full-grid."""
    return "" if shard is None else f" [shard {shard[0]}/{shard[1]} only]"


def _synthesized_workloads(
    dilate: bool = False,
) -> dict[str, VulnerabilityProfile]:
    """The Section-4.2 synthesized workloads (day / week / combined)."""
    first = processor_profile(
        COMBINED_PAIR[0], dilate_to_paper_window=dilate
    )
    second = processor_profile(
        COMBINED_PAIR[1], dilate_to_paper_window=dilate
    )
    return {
        "day": day_workload(),
        "week": week_workload(),
        "combined": combined_workload(first, second),
    }


# ---------------------------------------------------------------------------
# Table 1 — the base machine configuration.
# ---------------------------------------------------------------------------


def run_table1(
    benchmarks: tuple[str, ...] = REPRESENTATIVE_SPEC,
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    **_,
):
    config = MachineConfig.power4_like()
    table = Table("Table 1: base POWER4-like processor configuration",
                  ["Parameter", "Value"])
    for name, value in config.table1_rows():
        table.add_row(name, value)

    behaviour = Table(
        "Simulator behaviour on this configuration",
        ["benchmark", "IPC", "mispredict", "L1D miss", "int AVF", "fp AVF",
         "decode AVF", "regfile AVF"],
    )
    for bench in benchmarks:
        trace = masking_trace_for(bench)
        # Reuse the cached masking trace; IPC etc. come from a fresh,
        # equally sized run only if stats are needed. The masking trace
        # itself carries the component AVFs.
        behaviour.add_row(
            bench,
            "-",  # IPC reported by the sec5.1 experiment's simulation
            "-",
            "-",
            f"{trace.avf('int_unit'):.3f}",
            f"{trace.avf('fp_unit'):.3f}",
            f"{trace.avf('decode_unit'):.3f}",
            f"{trace.avf('register_file'):.3f}",
        )
    # Closed-form sanity sweep over the same machines: AVF+SOFR vs exact
    # on each benchmark's uniprocessor (no Monte Carlo — instant).
    cache = make_cache(cache_dir)
    result_set = evaluate_design_space(
        [(bench, spec_uniprocessor_system(bench)) for bench in benchmarks],
        methods=["avf_sofr"],
        reference="first_principles",
        workers=workers,
        executor=executor,
        cache=cache,
    )
    return ExperimentResult(
        artifact="table1",
        title="Base processor configuration",
        paper_claim="POWER4-like core: 8-wide fetch, groups of 5, "
        "2INT/2FP/2LS/1BR, ROB 150, 256-entry RF, 32KB/64KB L1, 1MB L2, "
        "latencies 1/10/77.",
        tables=[table, behaviour],
        headline="configuration reproduced field-for-field "
        f"({len(config.table1_rows())} Table-1 rows)",
        notes=cache_note([], cache, cache_dir),
        result_set=result_set,
    )


# ---------------------------------------------------------------------------
# Table 2 — the design space.
# ---------------------------------------------------------------------------


def run_table2(
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    **_,
):
    table = Table("Table 2: design space dimensions", ["Dimension", "Values"])
    table.add_row("N (elements/component)",
                  " ".join(f"{v:g}" for v in TABLE2_ELEMENT_COUNTS))
    table.add_row("S (rate scaling)",
                  " ".join(f"{v:g}" for v in TABLE2_SCALING_FACTORS))
    table.add_row("C (components/system)",
                  " ".join(str(v) for v in TABLE2_COMPONENT_COUNTS))
    table.add_row(
        "Workload",
        f"SPEC fp ({len(SPEC_FP_NAMES)}), SPEC int ({len(SPEC_INT_NAMES)}), "
        "day, week, combined",
    )
    points = table2_points(
        ["spec_int", "spec_fp", "day", "week", "combined"]
    )
    # Evaluate a representative closed-form corner of the grid through
    # the batch engine, demonstrating the space is not merely enumerable.
    workloads = {"day": day_workload(), "week": week_workload()}
    space = []
    for name, profile in workloads.items():
        rate = component_rate_per_second(1e8, 1.0)
        for c_count in (2, 5000):
            space.append(
                (
                    f"{name}/NxS=1e+08/C={c_count}",
                    SystemModel(
                        [Component(name, rate, profile,
                                   multiplicity=c_count)]
                    ),
                )
            )
    cache = make_cache(cache_dir)
    result_set = evaluate_design_space(
        space,
        methods=["avf_sofr"],
        reference="first_principles",
        workers=workers,
        executor=executor,
        cache=cache,
    )
    return ExperimentResult(
        artifact="table2",
        title="Design space explored",
        paper_claim="N in 1e5..1e9, S in 1..5000, C in 2..500000, "
        "SPEC + day/week/combined workloads.",
        tables=[table],
        headline=f"{len(points)} design points enumerable "
        "(5 N x 5 S x 5 C x 5 workload families); "
        f"{len(space)}-point representative corner evaluated",
        notes=cache_note([], cache, cache_dir),
        result_set=result_set,
    )


# ---------------------------------------------------------------------------
# Figure 3 — AVF-step error, analytical busy/idle loop.
# ---------------------------------------------------------------------------


def run_fig3(
    trials: int | None = None,
    validate_mc: bool = True,
    kernel: str = "numpy",
    **_,
):
    points = figure3_curves()
    table = Table(
        "Figure 3: AVF-step relative error, 100MB cache, busy/idle loop",
        ["L (days)", "rate scale", "exact MTTF (y)", "AVF MTTF (y)",
         "rel. error"],
    )
    scales = sorted({p.rate_scale for p in points})
    days_axis = sorted({p.loop_days for p in points})
    series = {}
    for scale in scales:
        errors = []
        for p in points:
            if p.rate_scale != scale:
                continue
            table.add_row(
                p.loop_days,
                f"{scale:g}x",
                p.exact_mttf / SECONDS_PER_YEAR,
                p.avf_mttf / SECONDS_PER_YEAR,
                percent(p.relative_error),
            )
            errors.append(p.relative_error)
        series[f"lambda x{scale:g}"] = errors
    figure = render_series(
        "Figure 3 (reproduced): |AVF - exact| / exact",
        [f"{d:g}d" for d in days_axis],
        series,
    )
    notes = []
    if validate_mc:
        # Cross-check one closed-form point against Monte Carlo.
        from ..core.montecarlo import monte_carlo_component_mttf
        from ..masking.profile import busy_idle_profile
        from ..units import SECONDS_PER_DAY

        p16 = next(
            p for p in points if p.loop_days == 16 and p.rate_scale == 5.0
        )
        profile = busy_idle_profile(8 * SECONDS_PER_DAY, 16 * SECONDS_PER_DAY)
        comp = Component("cache", p16.rate_per_second, profile)
        mc = monte_carlo_component_mttf(
            comp, _mc_config(trials, kernel=kernel)
        )
        deviation = signed_relative_error(mc.mttf_seconds, p16.exact_mttf)
        notes.append(
            f"Monte-Carlo check at L=16d, 5x: closed form within "
            f"{deviation:+.3%} of MC (n={mc.trials})"
        )
    peak = max(p.relative_error for p in points)
    result_set = ResultSet(
        comparisons=tuple(
            MethodComparison(
                system_label=(
                    f"busy_idle/L={p.loop_days:g}d/scale={p.rate_scale:g}x"
                ),
                reference=MTTFEstimate(
                    mttf_seconds=p.exact_mttf, method="first_principles"
                ),
                estimates={
                    "avf": MTTFEstimate(
                        mttf_seconds=p.avf_mttf, method="avf"
                    )
                },
            )
            for p in points
        ),
        methods=("avf",),
        reference_method="first_principles",
    )
    return ExperimentResult(
        artifact="fig3",
        title="AVF-step error for the analytical busy/idle workload",
        paper_claim="errors small at baseline rate, significant "
        "(tens of percent) at 3-5x rates and multi-day loops.",
        tables=[table],
        figures=[figure],
        notes=notes,
        headline=f"error grows with L and rate scale; peak "
        f"{peak:.1%} at L=16d, 5x (paper's figure shows the same shape)",
        result_set=result_set,
    )


# ---------------------------------------------------------------------------
# Figure 4 — SOFR-step error on the half-normal counter-example.
# ---------------------------------------------------------------------------


def run_fig4(trials: int | None = None, validate_mc: bool = True, **_):
    points = figure4_curve()
    table = Table(
        "Figure 4: SOFR error for f(x) = (2/sqrt(pi)) e^{-x^2} components",
        ["N components", "exact MTTF", "SOFR MTTF", "rel. error"],
    )
    for p in points:
        table.add_row(
            p.n_components, p.exact_mttf, p.sofr_mttf,
            percent(-p.relative_error if p.sofr_mttf < p.exact_mttf
                    else p.relative_error),
        )
    figure = render_series(
        "Figure 4 (reproduced): |SOFR - exact| / exact",
        [str(p.n_components) for p in points],
        {"SOFR error": [p.relative_error for p in points]},
    )
    notes = []
    if validate_mc:
        import numpy as np

        from ..reliability.distributions import HalfNormalSquare

        rng = np.random.default_rng(0)
        n_comp = 8
        dist = HalfNormalSquare()
        n_trials = trials or DEFAULT_TRIALS
        samples = dist.sample(n_trials * n_comp, rng).reshape(
            n_trials, n_comp
        ).min(axis=1)
        point = next(p for p in points if p.n_components == n_comp)
        deviation = signed_relative_error(
            float(samples.mean()), point.exact_mttf
        )
        notes.append(
            f"Monte-Carlo check at N=8: numerical integral within "
            f"{deviation:+.3%} of sampled min (n={n_trials})"
        )
    two = next(p for p in points if p.n_components == 2)
    last = points[-1]
    # These points live in distribution space (no SystemModel), so the
    # result set is assembled directly rather than via the batch engine.
    result_set = ResultSet(
        comparisons=tuple(
            MethodComparison(
                system_label=f"halfnormal/N={p.n_components}",
                reference=MTTFEstimate(
                    mttf_seconds=p.exact_mttf, method="first_principles"
                ),
                estimates={
                    "sofr_only": MTTFEstimate(
                        mttf_seconds=p.sofr_mttf, method="sofr"
                    )
                },
            )
            for p in points
        ),
        methods=("sofr_only",),
        reference_method="first_principles",
    )
    return ExperimentResult(
        artifact="fig4",
        title="SOFR-step error for a near-exponential TTF distribution",
        paper_claim="error grows from 15% (2 components) to about 32% "
        "(32 components).",
        tables=[table],
        figures=[figure],
        notes=notes,
        headline=f"{two.relative_error:.1%} at N=2 rising to "
        f"{last.relative_error:.1%} at N={last.n_components}",
        result_set=result_set,
    )


# ---------------------------------------------------------------------------
# Section 5.1 — AVF and SOFR on today's uniprocessors running SPEC.
# ---------------------------------------------------------------------------


def run_sec51(
    benchmarks: tuple[str, ...] | None = None,
    trials: int | None = None,
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    mc_chunks: int = 1,
    target_stderr: float | None = None,
    kernel: str = "numpy",
    pipeline_methods: bool = False,
    reallocate_budget: bool = False,
    **_,
):
    benchmarks = benchmarks or REPRESENTATIVE_SPEC
    table = Table(
        "Section 5.1: AVF & SOFR vs first principles, uniprocessor + SPEC",
        ["benchmark", "component", "AVF", "AVF-step error",
         "MC consistency (sigma)"],
    )
    sofr_table = Table(
        "Section 5.1: processor-level AVF+SOFR error",
        ["benchmark", "AVF+SOFR MTTF (y)", "exact MTTF (y)", "error"],
    )
    cache = make_cache(cache_dir)
    engine = dict(
        workers=workers, executor=executor, cache=cache,
        pipeline_methods=pipeline_methods,
        reallocate_budget=reallocate_budget,
    )
    worst_component = 0.0
    worst_sofr = 0.0
    merged: ResultSet | None = None
    for bench in benchmarks:
        system = spec_uniprocessor_system(bench)
        mc = _mc_config(
            trials, seed=_bench_seed(bench), chunks=mc_chunks,
            target_stderr=target_stderr, kernel=kernel,
        )
        # Component level: AVF step and MC consistency vs the closed form,
        # one single-component system per unit.
        component_set = evaluate_design_space(
            [
                (f"{bench}/{comp.name}", SystemModel([comp]))
                for comp in system.components
            ],
            methods=["avf", "monte_carlo"],
            reference="first_principles",
            mc_config=mc,
            **engine,
        )
        for comp, comparison in zip(system.components, component_set):
            error = comparison.error("avf")
            worst_component = max(worst_component, abs(error))
            mc_est = comparison.estimates["monte_carlo"]
            sigma = (
                abs(mc_est.mttf_seconds - comparison.reference.mttf_seconds)
                / mc_est.std_error_seconds
                if mc_est.std_error_seconds > 0
                else 0.0
            )
            table.add_row(
                bench, comp.name, f"{comp.avf:.4f}", percent(error),
                f"{sigma:.1f}",
            )
        # Processor level: the full AVF+SOFR pipeline vs first principles.
        bench_set = evaluate_design_space(
            [(bench, system)],
            methods=["avf_sofr"],
            reference="first_principles",
            mc_config=mc,
            **engine,
        )
        comparison = bench_set[0]
        sofr_error = comparison.error("avf_sofr")
        worst_sofr = max(worst_sofr, abs(sofr_error))
        sofr_table.add_row(
            bench,
            comparison.estimates["avf_sofr"].mttf_seconds
            / SECONDS_PER_YEAR,
            comparison.reference.mttf_seconds / SECONDS_PER_YEAR,
            percent(sofr_error),
        )
        bench_merged = component_set.merged(bench_set)
        merged = (
            bench_merged if merged is None else merged.merged(bench_merged)
        )
    return ExperimentResult(
        artifact="sec5.1",
        title="Uniprocessor + SPEC: AVF+SOFR matches first principles",
        paper_claim="discrepancy < 0.5% for every component and "
        "benchmark; processor-level SOFR matches as well.",
        tables=[table, sofr_table],
        headline=f"worst component error {worst_component:.4%}, worst "
        f"processor error {worst_sofr:.4%} (both far below the paper's "
        "0.5% bound)",
        notes=cache_note(
            [
                "MC consistency column: |MC - exact| in standard errors; "
                "values of O(1) confirm the Monte-Carlo engine estimates "
                "the same quantity the closed form computes."
            ],
            cache,
            cache_dir,
        ),
        result_set=merged,
    )


# ---------------------------------------------------------------------------
# Section 5.2 — AVF step for SPEC across all N x S.
# ---------------------------------------------------------------------------


def run_sec52(
    benchmarks: tuple[str, ...] | None = None,
    n_times_s_values: tuple[float, ...] = (1e5, 1e7, 1e9, 5e12),
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    shard: tuple[int, int] | None = None,
    progress=None,
    pipeline_methods: bool = False,
    reallocate_budget: bool = False,
    **_,
):
    benchmarks = benchmarks or REPRESENTATIVE_SPEC
    table = Table(
        "Section 5.2: AVF-step error for SPEC across N x S "
        "(paper window via time dilation)",
        ["benchmark", "N x S", "lambda*V(L)", "AVF-step error"],
    )
    space = []
    masses = []
    for bench in benchmarks:
        profile = processor_profile(bench, dilate_to_paper_window=True)
        for n_times_s in n_times_s_values:
            rate = component_rate_per_second(n_times_s, 1.0)
            space.append(
                (
                    f"{bench}/NxS={n_times_s:g}",
                    SystemModel([Component(bench, rate, profile)]),
                )
            )
            masses.append(rate * profile.vulnerable_time)
    cache = make_cache(cache_dir)
    result_set = evaluate_design_space(
        space,
        methods=["avf"],
        reference="first_principles",
        workers=workers,
        executor=executor,
        cache=cache,
        shard=shard,
        progress=progress,
        pipeline_methods=pipeline_methods,
        reallocate_budget=reallocate_budget,
    )
    worst = 0.0
    for (label, _system), mass, comparison in zip(
        shard_select(space, shard), shard_select(masses, shard), result_set
    ):
        bench, n_label = label.split("/NxS=")
        error = comparison.error("avf")
        worst = max(worst, abs(error))
        table.add_row(bench, n_label, f"{mass:.2e}", percent(error))
    return ExperimentResult(
        artifact="sec5.2",
        title="AVF step stays accurate for SPEC at every N x S",
        paper_claim="relative error < 0.5% for each SPEC benchmark, all "
        "N and S studied.",
        tables=[table],
        headline=f"worst AVF-step error {worst:.4%} across "
        f"{len(benchmarks)} benchmarks x {len(n_times_s_values)} N*S "
        f"points{_shard_suffix(shard)}",
        notes=cache_note(
            [
                "SPEC loop lengths are milliseconds, so lambda*V(L) stays "
                "tiny even at N x S = 5e12 — exactly why the paper finds "
                "the AVF step safe for SPEC-like workloads."
            ],
            cache,
            cache_dir,
        ),
        result_set=result_set,
    )


# ---------------------------------------------------------------------------
# Figure 5 — AVF step on the synthesized workloads, broad N x S.
# ---------------------------------------------------------------------------


def run_fig5(
    trials: int | None = None,
    n_times_s_values: tuple[float, ...] = (1e8, 1e9, 1e10, 1e11, 1e12),
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    mc_chunks: int = 1,
    target_stderr: float | None = None,
    kernel: str = "numpy",
    shard: tuple[int, int] | None = None,
    progress=None,
    pipeline_methods: bool = False,
    reallocate_budget: bool = False,
    budget_ledger: str | None = None,
    ledger_replay: bool = False,
    ledger_timeout: float | None = None,
    ledger_opts: dict | None = None,
    **_,
):
    workloads = _synthesized_workloads()
    cache = make_cache(cache_dir)
    results = component_sweep(
        workloads,
        n_times_s_values,
        _mc_config(
            trials, chunks=mc_chunks, target_stderr=target_stderr,
            kernel=kernel,
        ),
        workers=workers,
        executor=executor,
        cache=cache,
        shard=shard,
        progress=progress,
        pipeline_methods=pipeline_methods,
        reallocate_budget=reallocate_budget,
        budget_ledger=make_ledger(
            budget_ledger, cache_dir, shard, ledger_replay,
            ledger_timeout, ledger_opts,
        ),
    )
    table = Table(
        "Figure 5: AVF-step error vs Monte Carlo, synthesized workloads",
        ["workload", "N x S", "MC MTTF (y)", "AVF MTTF (y)", "error"],
    )
    series: dict[str, list[float]] = {name: [] for name in workloads}
    for res in results:
        error = res.avf_error
        table.add_row(
            res.point.workload,
            f"{res.point.n_times_s:g}",
            res.monte_carlo_mttf / SECONDS_PER_YEAR,
            res.avf_mttf / SECONDS_PER_YEAR,
            percent(error),
        )
        series[res.point.workload].append(error)
    # A shard holds only its share of each series; the cross-grid
    # figure is rendered by the merged (or unsharded) run.
    figures = (
        [
            render_series(
                "Figure 5 (reproduced): signed AVF error vs Monte Carlo",
                [f"{v:g}" for v in n_times_s_values],
                series,
            )
        ]
        if shard is None
        else []
    )
    peak = max((abs(r.avf_error) for r in results), default=0.0)
    big = [
        r for r in results
        if r.point.n_times_s >= 1e9 and abs(r.avf_error) > 0.01
    ]
    return ExperimentResult(
        artifact="fig5",
        title="AVF-step error on day/week/combined across N x S",
        paper_claim="significant errors (up to ~90%) once N x S >= 1e9; "
        "sign varies by workload.",
        tables=[table],
        figures=figures,
        headline=f"peak |error| {peak:.0%}; {len(big)} points with "
        f">1% error at N x S >= 1e9{_shard_suffix(shard)}",
        notes=cache_note([], cache, cache_dir),
        result_set=results.result_set,
    )


# ---------------------------------------------------------------------------
# Figure 6 — SOFR step: (a) SPEC, (b) synthesized workloads.
# ---------------------------------------------------------------------------


def run_fig6a(
    trials: int | None = None,
    benchmarks: tuple[str, ...] = REPRESENTATIVE_SPEC,
    n_times_s_values: tuple[float, ...] = (1e9, 2e12, 5e12),
    component_counts: tuple[int, ...] = (2, 8, 5000, 50000),
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    mc_chunks: int = 1,
    target_stderr: float | None = None,
    kernel: str = "numpy",
    shard: tuple[int, int] | None = None,
    progress=None,
    pipeline_methods: bool = False,
    reallocate_budget: bool = False,
    budget_ledger: str | None = None,
    ledger_replay: bool = False,
    ledger_timeout: float | None = None,
    ledger_opts: dict | None = None,
    **_,
):
    workloads = {
        bench: processor_profile(bench, dilate_to_paper_window=True)
        for bench in benchmarks
    }
    cache = make_cache(cache_dir)
    results = system_sweep(
        workloads,
        n_times_s_values,
        component_counts,
        _mc_config(
            trials, chunks=mc_chunks, target_stderr=target_stderr,
            kernel=kernel,
        ),
        workers=workers,
        executor=executor,
        cache=cache,
        shard=shard,
        progress=progress,
        pipeline_methods=pipeline_methods,
        reallocate_budget=reallocate_budget,
        budget_ledger=make_ledger(
            budget_ledger, cache_dir, shard, ledger_replay,
            ledger_timeout, ledger_opts,
        ),
    )
    table = Table(
        "Figure 6(a): SOFR-step error vs Monte Carlo, SPEC workloads "
        "(paper window via time dilation)",
        ["benchmark", "N x S", "C", "MC MTTF (y)", "SOFR MTTF (y)",
         "error"],
    )
    worst = 0.0
    safe_worst = 0.0
    for res in results:
        error = res.sofr_error
        table.add_row(
            res.point.workload,
            f"{res.point.n_times_s:g}",
            res.point.components,
            res.monte_carlo_mttf / SECONDS_PER_YEAR,
            res.sofr_only_mttf / SECONDS_PER_YEAR,
            percent(error),
        )
        worst = max(worst, abs(error))
        if res.point.components <= 8:
            safe_worst = max(safe_worst, abs(error))
    return ExperimentResult(
        artifact="fig6a",
        title="SOFR-step error on SPEC across C and N x S",
        paper_claim="accurate for C <= 8 at all N x S; significant "
        "errors only for C >= 5000 with very large N x S (>= ~2e12).",
        tables=[table],
        headline=f"C<=8 worst error {safe_worst:.2%}; overall worst "
        f"{worst:.0%} at the largest C x (N x S) corner"
        f"{_shard_suffix(shard)}",
        notes=cache_note(
            [
                "Profiles are time-dilated to the paper's 1e8-instruction "
                "loop; the dimensionless hazard mass matches the paper's "
                "points (see DESIGN.md)."
            ],
            cache,
            cache_dir,
        ),
        result_set=results.result_set,
    )


def run_fig6b(
    trials: int | None = None,
    n_times_s_values: tuple[float, ...] = (1e8, 1e9),
    component_counts: tuple[int, ...] = (2, 8, 5000, 50000, 500000),
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    mc_chunks: int = 1,
    target_stderr: float | None = None,
    kernel: str = "numpy",
    shard: tuple[int, int] | None = None,
    progress=None,
    pipeline_methods: bool = False,
    reallocate_budget: bool = False,
    budget_ledger: str | None = None,
    ledger_replay: bool = False,
    ledger_timeout: float | None = None,
    ledger_opts: dict | None = None,
    **_,
):
    workloads = _synthesized_workloads()
    table = Table(
        "Figure 6(b): SOFR-step error vs Monte Carlo, synthesized "
        "workloads",
        ["workload", "N x S", "C", "MC MTTF (d)", "SOFR MTTF (d)",
         "error (zero phase)", "error (random phase)"],
    )
    space: list[tuple[str, SystemModel]] = []
    meta: list[tuple[str, float, int]] = []
    for name, profile in workloads.items():
        for n_times_s in n_times_s_values:
            rate = component_rate_per_second(n_times_s, 1.0)
            for c_count in component_counts:
                space.append(
                    (
                        f"{name}/NxS={n_times_s:g}/C={c_count}",
                        SystemModel(
                            [
                                Component(
                                    name, rate, profile,
                                    multiplicity=c_count,
                                )
                            ]
                        ),
                    )
                )
                meta.append((name, n_times_s, c_count))
    cache = make_cache(cache_dir)
    engine = dict(
        workers=workers, executor=executor, cache=cache, shard=shard,
        progress=progress, pipeline_methods=pipeline_methods,
        reallocate_budget=reallocate_budget,
    )
    # The two passes are separate sweeps, so a fleet coordinates each
    # through its own ledger file (same run id, per-pass suffix); every
    # shard runs the passes in the same order, so the rounds pair up.
    pass_ledger = lambda suffix: make_ledger(
        f"{budget_ledger}.{suffix}" if budget_ledger else None,
        cache_dir, shard, ledger_replay, ledger_timeout,
        ledger_opts,
    )
    # Zero-phase pass: the SOFR step (fed zero-phase MC component MTTFs,
    # memoized once per distinct component across every C) against the
    # zero-phase Monte-Carlo reference.
    zero_set = evaluate_design_space(
        space,
        methods=["sofr_only"],
        reference="monte_carlo",
        mc_config=_mc_config(
            trials, chunks=mc_chunks, target_stderr=target_stderr,
            kernel=kernel,
        ),
        budget_ledger=pass_ledger("zero"),
        **engine,
    )
    # Random-phase pass: only the reference changes convention; the SOFR
    # estimate stays the zero-phase one (the literal reading of the
    # paper's procedure), so this pass carries the closed form instead.
    random_set = evaluate_design_space(
        [(f"{label}/phase=random", system) for label, system in space],
        methods=["first_principles"],
        reference="monte_carlo",
        mc_config=dataclasses.replace(
            _mc_config(
                trials, seed=1, chunks=mc_chunks,
                target_stderr=target_stderr, kernel=kernel,
            ),
            start_phase="random",
        ),
        budget_ledger=pass_ledger("random"),
        **engine,
    )
    key_points: dict = {}
    for (name, n_times_s, c_count), zero_cmp, random_cmp in zip(
        shard_select(meta, shard), zero_set, random_set
    ):
        sofr = zero_cmp.estimates["sofr_only"].mttf_seconds
        mc_zero = zero_cmp.reference.mttf_seconds
        mc_random = random_cmp.reference.mttf_seconds
        err_zero = signed_relative_error(sofr, mc_zero)
        err_random = signed_relative_error(sofr, mc_random)
        table.add_row(
            name,
            f"{n_times_s:g}",
            c_count,
            mc_zero / 86400.0,
            sofr / 86400.0,
            percent(err_zero),
            percent(err_random),
        )
        key_points[(name, n_times_s, c_count)] = (err_zero, err_random)
    day5k = key_points.get(("day", 1e8, 5000))
    day50k = key_points.get(("day", 1e8, 50000))
    week5k = key_points.get(("week", 1e8, 5000))
    week50k = key_points.get(("week", 1e8, 50000))
    headline_bits = []
    if day5k and day50k:
        headline_bits.append(
            f"day@1e8 (random phase): {abs(day5k[1]):.0%} (C=5000) -> "
            f"{abs(day50k[1]):.0%} (C=50000); paper: 11% -> 50%"
        )
    if week5k and week50k:
        headline_bits.append(
            f"week@1e8 (random phase): {abs(week5k[1]):.0%} -> "
            f"{abs(week50k[1]):.0%}; paper: 32% -> 80%"
        )
    return ExperimentResult(
        artifact="fig6b",
        title="SOFR-step error on day/week/combined across C and N x S",
        paper_claim="day@N=1e8: 11% (C=5000) and 50% (C=50000); week: "
        "32% and 80%; combined smaller but still significant.",
        tables=[table],
        headline=(
            "; ".join(headline_bits)
            or (
                "see table (paper key points reproduced)"
                if shard is None
                else "see table"
            )
        )
        + _shard_suffix(shard),
        notes=cache_note(
            [
                "Two loop-phase conventions are reported: 'zero' starts "
                "every trial at the beginning of the busy period (the "
                "literal reading of the paper's Monte-Carlo procedure); "
                "'random' starts at a uniform offset into the loop. In the "
                "regime the paper highlights (MTTF comparable to one "
                "iteration) the convention changes the numbers but not the "
                "structure: SOFR is accurate for C <= 8 and breaks by tens "
                "of percent for C >= 5000, errors growing with C and with "
                "the workload period (week > day > combined), exactly the "
                "paper's pattern."
            ],
            cache,
            cache_dir,
        ),
        result_set=zero_set.merged(random_set),
    )


# ---------------------------------------------------------------------------
# Generic registry-driven comparison (ours; drives --method/--reference).
# ---------------------------------------------------------------------------


def run_compare(
    benchmarks: tuple[str, ...] | None = None,
    trials: int | None = None,
    methods: tuple[str, ...] | None = None,
    reference: str | None = None,
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    mc_chunks: int = 1,
    target_stderr: float | None = None,
    kernel: str = "numpy",
    pipeline_methods: bool = False,
    reallocate_budget: bool = False,
    **_,
):
    """Compare any registered methods on the SPEC uniprocessor systems.

    The method set and reference are fully pluggable — this is the
    experiment the CLI's ``--method``/``--reference`` flags drive. Any
    estimator added through :func:`repro.methods.register_method` is
    immediately selectable here without touching this file.
    """
    benchmarks = benchmarks or REPRESENTATIVE_SPEC
    methods = tuple(methods) if methods else (
        "avf_sofr", "sofr_only", "first_principles", "hybrid"
    )
    # Estimates come back keyed by canonical registry names, so resolve
    # aliases ("exact", "mc") up front before using them as table keys.
    methods = tuple(dict.fromkeys(canonical_name(m) for m in methods))
    reference = reference or "exact"
    cache = make_cache(cache_dir)
    table = Table(
        f"Method comparison vs {reference} (SPEC uniprocessor)",
        ["benchmark"] + [f"{m} error" for m in methods],
    )
    # One engine call per benchmark (each keeps its own stable MC seed),
    # merged into one result set.
    result_set: ResultSet | None = None
    for bench in benchmarks:
        bench_set = evaluate_design_space(
            [(bench, spec_uniprocessor_system(bench))],
            methods=methods,
            reference=reference,
            mc_config=_mc_config(
                trials, seed=_bench_seed(bench), chunks=mc_chunks,
                target_stderr=target_stderr, kernel=kernel,
            ),
            workers=workers,
            executor=executor,
            cache=cache,
            pipeline_methods=pipeline_methods,
            reallocate_budget=reallocate_budget,
        )
        comparison = bench_set[0]
        table.add_row(
            bench, *(percent(comparison.error(m)) for m in methods)
        )
        result_set = (
            bench_set
            if result_set is None
            else result_set.merged(bench_set)
        )
    worst = {m: result_set.worst_abs_error(m) for m in methods}
    worst_text = ", ".join(f"{m} {e:.2%}" for m, e in worst.items())
    return ExperimentResult(
        artifact="compare",
        title="Registry-driven method comparison",
        paper_claim="(ours) every method, one pluggable call surface.",
        tables=[table],
        headline=f"worst |error| vs {reference}: {worst_text}",
        notes=cache_note([], cache, cache_dir),
        result_set=result_set,
    )


# ---------------------------------------------------------------------------
# Section 5.4 — SoftArch across the whole space.
# ---------------------------------------------------------------------------


def run_sec54(
    trials: int | None = None,
    n_times_s_values: tuple[float, ...] = (1e8, 1e10, 1e12),
    component_counts: tuple[int, ...] = (1, 8, 5000, 50000),
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    mc_chunks: int = 1,
    target_stderr: float | None = None,
    kernel: str = "numpy",
    shard: tuple[int, int] | None = None,
    progress=None,
    pipeline_methods: bool = False,
    reallocate_budget: bool = False,
    budget_ledger: str | None = None,
    ledger_replay: bool = False,
    ledger_timeout: float | None = None,
    ledger_opts: dict | None = None,
    **_,
):
    workloads = _synthesized_workloads()
    spec_profiles = {
        bench: processor_profile(bench, dilate_to_paper_window=True)
        for bench in REPRESENTATIVE_SPEC
    }
    all_workloads = {**workloads, **spec_profiles}
    space: list[tuple[str, SystemModel]] = []
    meta: list[tuple[str, float, int]] = []
    for name, profile in all_workloads.items():
        for n_times_s in n_times_s_values:
            rate = component_rate_per_second(n_times_s, 1.0)
            for c_count in component_counts:
                space.append(
                    (
                        f"{name}/NxS={n_times_s:g}/C={c_count}",
                        SystemModel(
                            [
                                Component(
                                    name, rate, profile,
                                    multiplicity=c_count,
                                )
                            ]
                        ),
                    )
                )
                meta.append((name, n_times_s, c_count))
    cache = make_cache(cache_dir)
    result_set = evaluate_design_space(
        space,
        methods=["softarch", "first_principles"],
        reference="monte_carlo",
        mc_config=_mc_config(
            trials, chunks=mc_chunks, target_stderr=target_stderr,
            kernel=kernel,
        ),
        workers=workers,
        executor=executor,
        cache=cache,
        shard=shard,
        progress=progress,
        pipeline_methods=pipeline_methods,
        reallocate_budget=reallocate_budget,
        budget_ledger=make_ledger(
            budget_ledger, cache_dir, shard, ledger_replay,
            ledger_timeout, ledger_opts,
        ),
    )
    table = Table(
        "Section 5.4: SoftArch error vs Monte Carlo / exact",
        ["workload", "N x S", "C", "SoftArch vs exact",
         "SoftArch vs MC (sigma)"],
    )
    worst_exact = 0.0
    for (name, n_times_s, c_count), comparison in zip(
        shard_select(meta, shard), result_set
    ):
        sa = comparison.estimates["softarch"].mttf_seconds
        exact = comparison.estimates["first_principles"].mttf_seconds
        vs_exact = signed_relative_error(sa, exact)
        worst_exact = max(worst_exact, abs(vs_exact))
        mc = comparison.reference
        sigma = (
            abs(sa - mc.mttf_seconds) / mc.std_error_seconds
            if mc.std_error_seconds > 0
            else 0.0
        )
        table.add_row(
            name, f"{n_times_s:g}", c_count,
            percent(vs_exact), f"{sigma:.1f}",
        )
    return ExperimentResult(
        artifact="sec5.4",
        title="SoftArch shows no AVF/SOFR discrepancies anywhere",
        paper_claim="SoftArch error < 1% for single components and < 2% "
        "for full systems across the entire design space.",
        tables=[table],
        headline=f"worst SoftArch-vs-exact error {worst_exact:.2e} "
        "(all points far inside the paper's 1%/2% bounds); deviations "
        f"from MC are pure sampling noise{_shard_suffix(shard)}",
        notes=cache_note([], cache, cache_dir),
        result_set=result_set,
    )
