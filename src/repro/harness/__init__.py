"""Experiment harness: regenerate every table and figure of the paper.

Each paper artifact (Table 1, Table 2, Figures 3-6, and the Sections
5.1/5.2/5.4 numeric claims) is an :class:`~repro.harness.experiment.Experiment`
registered under its artifact id. The benchmark suite
(``benchmarks/bench_*.py``) runs them through pytest-benchmark; the CLI
(``repro-experiments``) runs them standalone and emits the
EXPERIMENTS.md comparison tables.
"""

from .tables import Table
from .figures import render_series
from .experiment import Experiment, ExperimentResult
from .registry import all_experiments, get_experiment
from .spec_setup import (
    PAPER_COMPONENTS,
    masking_trace_for,
    processor_profile,
    spec_uniprocessor_system,
)

__all__ = [
    "Table",
    "render_series",
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "PAPER_COMPONENTS",
    "masking_trace_for",
    "processor_profile",
    "spec_uniprocessor_system",
]
