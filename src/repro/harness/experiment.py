"""Experiment framework: one object per paper artifact."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigurationError
from ..methods import BudgetLedger, ComponentCache, DiskCache, ledger_path
from ..methods.cache import resolve_cache_dir
from .tables import Table


def make_cache(cache_dir: str | None) -> ComponentCache:
    """An experiment's estimate cache, disk-backed when requested.

    Path resolution (env-var default, ``~`` expansion) goes through
    :func:`repro.methods.cache.resolve_cache_dir` — the same helper
    ``repro-serve`` uses, so the CLI and the analysis service can never
    disagree about where a given ``--cache-dir`` (or an unset one)
    points.
    """
    resolved = resolve_cache_dir(cache_dir)
    if resolved is not None:
        return ComponentCache(disk=DiskCache(resolved))
    return ComponentCache()


def make_ledger(
    budget_ledger: str | None,
    cache_dir: str | None,
    shard: tuple[int, int] | None,
    replay: bool = False,
    timeout: float | None = None,
    ledger_opts: dict | None = None,
) -> BudgetLedger | None:
    """A sharded fleet's cross-shard budget ledger, or None.

    ``budget_ledger`` is the CLI's ``--budget-ledger RUN_ID`` — a name
    every shard of one fleet passes identically so they all append to
    the same ``xshard-<RUN_ID>.ledger`` file inside the shared
    ``--cache-dir``. ``replay`` is ``--ledger-replay``: follow a
    completed ledger deterministically instead of coordinating live.
    ``timeout`` is ``--ledger-timeout``: the rendezvous patience in
    seconds — a shard's first fleet barrier waits out its slowest
    sibling's *entire* initial sweep, so paper-scale fleets need more
    than the default.

    ``ledger_opts`` carries the elastic-membership knobs:
    ``join`` (``--join``: take over this slot in an already-running
    fleet), ``lease`` (``--ledger-lease``: seconds of ledger silence
    before a blocked sibling is declared departed), ``heartbeat``
    (``--ledger-heartbeat``: the liveness beat period, default
    lease/4), and ``leave_after`` (``--leave-after``: voluntarily
    depart before publishing round N — the chaos knob).
    """
    if not budget_ledger:
        return None
    if cache_dir is None:
        raise ConfigurationError(
            "--budget-ledger needs --cache-dir: the ledger file lives "
            "in the fleet's shared cache directory"
        )
    if shard is None:
        raise ConfigurationError(
            "--budget-ledger needs --shard i/N: the ledger coordinates "
            "co-running shards"
        )
    opts = ledger_opts or {}
    kwargs = {} if timeout is None else {"timeout": timeout}
    if opts.get("join"):
        kwargs["takeover"] = True
    if opts.get("lease") is not None:
        kwargs["lease"] = opts["lease"]
    if opts.get("heartbeat") is not None:
        kwargs["heartbeat_interval"] = opts["heartbeat"]
    if opts.get("leave_after") is not None:
        kwargs["leave_after"] = opts["leave_after"]
    return BudgetLedger(
        ledger_path(cache_dir, budget_ledger),
        shard=shard,
        replay=replay,
        **kwargs,
    )


def cache_note(
    notes: list[str], cache: ComponentCache, cache_dir: str | None
) -> list[str]:
    """Append the cache-stats note CI's warm-cache smoke test greps for.

    The format (``estimate cache [...]: ... misses=0`` on a warm rerun)
    is asserted by the CI smoke job and the runner tests — keep them in
    sync when changing it.
    """
    if cache_dir:
        notes.append(f"estimate cache [{cache_dir}]: {cache.stats_line()}")
    return notes


@dataclass
class ExperimentResult:
    """Everything one experiment run produced.

    ``result_set`` optionally carries the machine-readable
    :class:`~repro.methods.results.ResultSet` behind the rendered
    tables, so the CLI's ``--json`` flag can emit an artifact that
    ``ResultSet.from_json`` loads back.
    """

    artifact: str
    title: str
    paper_claim: str
    tables: list[Table] = field(default_factory=list)
    figures: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    headline: str = ""
    result_set: object | None = None

    def render(self) -> str:
        """Human-readable console rendering."""
        parts = [
            f"[{self.artifact}] {self.title}",
            f"paper claim: {self.paper_claim}",
        ]
        if self.headline:
            parts.append(f"measured:    {self.headline}")
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        for figure in self.figures:
            parts.append("")
            parts.append(figure)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def render_markdown(self) -> str:
        """EXPERIMENTS.md section for this artifact."""
        parts = [
            f"### {self.artifact}: {self.title}",
            "",
            f"*Paper:* {self.paper_claim}",
            "",
            f"*Measured:* {self.headline}" if self.headline else "",
        ]
        for table in self.tables:
            parts.append("")
            parts.append(table.render_markdown())
        for note in self.notes:
            parts.append("")
            parts.append(f"> {note}")
        return "\n".join(p for p in parts if p is not None)


@dataclass(frozen=True)
class Experiment:
    """A runnable reproduction of one paper artifact."""

    artifact: str
    title: str
    paper_claim: str
    runner: Callable[..., ExperimentResult]

    def run(self, **kwargs) -> ExperimentResult:
        result = self.runner(**kwargs)
        if result.artifact != self.artifact:
            raise ConfigurationError(
                f"runner produced artifact {result.artifact!r} for "
                f"experiment {self.artifact!r}"
            )
        return result
