"""Experiment registry: artifact id -> runnable experiment."""

from __future__ import annotations

from ..errors import ConfigurationError
from .experiment import Experiment
from . import experiments as _impl
from . import ablations as _ablations

_REGISTRY: dict[str, Experiment] = {}


def _register(experiment: Experiment) -> None:
    if experiment.artifact in _REGISTRY:
        raise ConfigurationError(
            f"duplicate experiment {experiment.artifact!r}"
        )
    _REGISTRY[experiment.artifact] = experiment


_register(
    Experiment(
        "table1",
        "Base processor configuration",
        "POWER4-like Table-1 machine",
        _impl.run_table1,
    )
)
_register(
    Experiment(
        "table2",
        "Design space explored",
        "N x S x C x workload grid",
        _impl.run_table2,
    )
)
_register(
    Experiment(
        "fig3",
        "AVF-step error, analytical busy/idle loop",
        "errors grow with L and raw rate",
        _impl.run_fig3,
    )
)
_register(
    Experiment(
        "fig4",
        "SOFR-step error, half-normal TTF",
        "15% at N=2 to ~32% at N=32",
        _impl.run_fig4,
    )
)
_register(
    Experiment(
        "sec5.1",
        "Uniprocessor + SPEC validation",
        "< 0.5% error everywhere",
        _impl.run_sec51,
    )
)
_register(
    Experiment(
        "sec5.2",
        "AVF step for SPEC across N x S",
        "< 0.5% error for all N, S",
        _impl.run_sec52,
    )
)
_register(
    Experiment(
        "fig5",
        "AVF-step error, synthesized workloads",
        "up to ~90% once N x S >= 1e9",
        _impl.run_fig5,
    )
)
_register(
    Experiment(
        "fig6a",
        "SOFR-step error, SPEC workloads",
        "errors only for C >= 5000 at huge N x S",
        _impl.run_fig6a,
    )
)
_register(
    Experiment(
        "fig6b",
        "SOFR-step error, synthesized workloads",
        "day: 11%/50%; week: 32%/80% at C=5000/50000",
        _impl.run_fig6b,
    )
)
_register(
    Experiment(
        "sec5.4",
        "SoftArch across the design space",
        "< 1% component, < 2% system",
        _impl.run_sec54,
    )
)
_register(
    Experiment(
        "compare",
        "Registry-driven method comparison",
        "(ours) any registered methods via --method/--reference",
        _impl.run_compare,
    )
)
_register(
    Experiment(
        "ablation.samplers",
        "Arrival vs inverse Monte-Carlo samplers",
        "(ours) the two samplers are distribution-identical",
        _ablations.run_sampler_equivalence,
    )
)
_register(
    Experiment(
        "ablation.convergence",
        "Monte-Carlo trial-count convergence",
        "(ours) error scales as 1/sqrt(trials)",
        _ablations.run_mc_convergence,
    )
)
_register(
    Experiment(
        "ablation.exponentiality",
        "Masked TTF departure from exponential",
        "(ours) CoV and KS grow with hazard mass — why SOFR breaks",
        _ablations.run_exponentiality,
    )
)
_register(
    Experiment(
        "ablation.dilation",
        "Masking-window dilation sensitivity",
        "(ours) AVF/SOFR errors track the dimensionless hazard mass",
        _ablations.run_dilation_sensitivity,
    )
)
_register(
    Experiment(
        "ablation.hybrid",
        "Validity-aware hybrid methodology",
        "(ours) accurate everywhere at near-AVF cost",
        _ablations.run_hybrid_method,
    )
)


def all_experiments() -> dict[str, Experiment]:
    """All registered experiments keyed by artifact id."""
    return dict(_REGISTRY)


def get_experiment(artifact: str) -> Experiment:
    """Look up one experiment by artifact id."""
    if artifact not in _REGISTRY:
        raise ConfigurationError(
            f"unknown experiment {artifact!r}; have {sorted(_REGISTRY)}"
        )
    return _REGISTRY[artifact]
