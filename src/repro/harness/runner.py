"""Command-line experiment runner (``repro-experiments``).

Usage::

    repro-experiments --list
    repro-experiments fig3 fig4
    repro-experiments --all --markdown experiments.md
    repro-experiments fig3 --json fig3.json
    repro-experiments compare --method avf_sofr --method hybrid \\
        --reference exact --json compare.json
    repro-experiments fig5 --executor process --workers 8 \\
        --mc-chunks 16 --cache-dir ~/.cache/repro
    repro-experiments fig5 --executor remote \\
        --workers hostA:8421,hostB:8421 --mc-chunks 16
    repro-experiments fig5 --trials 1000000 --mc-chunks 32 \\
        --target-stderr 0.01 --progress
    repro-experiments fig5 --shard 0/2 --cache-dir /shared/cache \\
        --json shard0.json   # machine A
    repro-experiments fig5 --shard 1/2 --cache-dir /shared/cache \\
        --json shard1.json   # machine B
    repro-experiments merge shard0.json shard1.json --json full.json

``--json`` writes the machine-readable
:class:`~repro.methods.results.ResultSet` behind the run (loadable with
``ResultSet.from_json``); ``--method``/``--reference`` select estimators
from the method registry for experiments that support pluggable method
sets (e.g. ``compare``). ``--workers``/``--executor`` fan the batch
engine out over threads, processes, or a remote ``repro-worker`` fleet
(``--workers auto``, the default, asks the backend — cpu count locally,
fleet size remotely), ``--mc-chunks`` splits each
Monte-Carlo estimate into seeded chunks (numbers depend on the chunking,
never the worker count), and ``--cache-dir`` persists every estimate in
a content-addressed on-disk cache so repeated invocations skip
re-estimation entirely.

The streaming engine adds three scaling controls: ``--target-stderr``
makes Monte-Carlo references adaptive (chunks are scheduled only until
the relative standard error meets the target, with ``--trials`` as the
budget), ``--shard i/N`` evaluates one machine's deterministic share of
a sweep (run every shard against one shared ``--cache-dir``, then
``merge`` the per-shard ``--json`` artifacts into the exact unsharded
result), and ``--progress`` streams per-point progress lines to stderr
as chunk moments merge.

The pipelined scheduler adds two more: ``--pipeline-methods`` submits
method estimates to the worker pool the moment each point's reference
finalizes (no post-reference phase; results bit-identical), and
``--reallocate-budget`` re-grants the trial budget freed by
early-stopping points to the least-converged stragglers (pair it with
``--target-stderr``; deterministic across workers and executors, and a
sharded run redistributes within its own shard only).

The cross-shard budget ledger removes that last restriction:
``--budget-ledger RUN_ID`` makes K co-running shards (same RUN_ID,
same shared ``--cache-dir``) coordinate their freed trial budget
through one append-only ledger file — budget freed on any machine
reaches the fleet's least-converged point, the merged result is
deterministic given the ledger, and ``--ledger-replay`` re-derives any
shard's run from a completed ledger bit-identically (see
docs/SCHEDULER.md and the sharded-fleet recipe in EXPERIMENTS.md)::

    repro-experiments fig5 --shard 0/2 --cache-dir /shared/cache \\
        --target-stderr 0.02 --reallocate-budget \\
        --budget-ledger run1 --json shard0.json &   # machine A
    repro-experiments fig5 --shard 1/2 --cache-dir /shared/cache \\
        --target-stderr 0.02 --reallocate-budget \\
        --budget-ledger run1 --json shard1.json     # machine B
    repro-experiments merge shard0.json shard1.json --json full.json
"""

from __future__ import annotations

import argparse
import sys
import time

from .registry import all_experiments, get_experiment


def parse_shard(text: str) -> tuple[int, int]:
    """Parse the CLI's ``i/N`` shard syntax into ``(i, N)``."""
    from ..errors import ConfigurationError
    from ..methods.results import validate_shard

    try:
        return validate_shard(text.split("/", 1))
    except ConfigurationError:
        raise argparse.ArgumentTypeError(
            f"shard must look like 'i/N' with 0 <= i < N (e.g. 0/4), "
            f"got {text!r}"
        ) from None


class ProgressReporter:
    """Prints the engine's per-point progress events to stderr.

    One line per event, prefixed so sweeps driven by schedulers/tmux
    stay greppable::

        [progress] day/NxS=1e+10 chunk 3/16 trials=30000 rel_se=1.42%
        [progress] day/NxS=1e+10 done trials=40000 rel_se=0.97% (early)
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.events = 0

    def __call__(self, event) -> None:
        self.events += 1
        parts = [f"[progress] {event.label}"]
        if event.kind == "point-start":
            parts.append("start")
            if event.total_chunks:
                parts.append(f"chunks={event.total_chunks}")
        elif event.kind == "chunk":
            parts.append(
                f"chunk {event.merged_chunks}/{event.total_chunks}"
            )
            parts.append(f"trials={event.trials}")
        elif event.kind == "method-start":
            parts.append(f"method {event.method} start")
        elif event.kind == "method-done":
            parts.append(f"method {event.method} done")
            parts.append(f"trials={event.trials}")
        elif event.kind == "budget-reallocated":
            parts.append(
                f"budget +{event.granted_trials} trials "
                f"({event.granted_chunks} chunks)"
            )
        elif event.kind == "budget-claimed":
            parts.append(
                f"budget +{event.granted_trials} trials "
                f"({event.granted_chunks} chunks) [cross-shard]"
            )
        elif event.kind == "prewarm":
            parts.append(f"prewarmed {event.warmed_entries} cache entries")
        elif event.kind == "shard-departed":
            parts.append(
                f"shard {event.shard} departed before round {event.round}"
            )
        elif event.kind == "shard-adopted":
            parts.append(f"adopting departed shard {event.shard}")
        else:
            parts.append("done")
            parts.append(f"trials={event.trials}")
        if event.rel_stderr is not None:
            parts.append(f"rel_se={event.rel_stderr:.2%}")
        if event.stopped_early:
            parts.append("(early)")
        if event.cached:
            parts.append("(cached)")
        print(" ".join(parts), file=self.stream)


def run_merge(args) -> int:
    """The ``merge`` command: reassemble per-shard ``--json`` artifacts."""
    from ..methods import ResultSet, merge_result_sets

    if not args.artifacts:
        print("merge needs at least one shard JSON file", file=sys.stderr)
        return 1
    if not args.json:
        print("merge needs --json OUT for the merged set", file=sys.stderr)
        return 1
    from ..errors import ConfigurationError

    try:
        shards = [ResultSet.from_json(path) for path in args.artifacts]
        merged = merge_result_sets(shards)
    except (OSError, ValueError, ConfigurationError) as error:
        print(f"merge failed: {error}", file=sys.stderr)
        return 1
    merged.to_json(args.json)
    count = shards[0].shard[1] if shards[0].shard else len(shards)
    print(
        f"merged {len(shards)} shard(s) (/{count}) -> {len(merged)} "
        f"points written to {args.json}"
    )
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        help="artifact ids to run (e.g. fig3 sec5.1); see --list. "
        "The special first argument 'merge' instead merges per-shard "
        "ResultSet JSON files: merge SHARD.json... --json OUT.json",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="Monte-Carlo trials per estimate (default: REPRO_MC_TRIALS "
        "or 100000; the paper used 1000000)",
    )
    parser.add_argument(
        "--method",
        action="append",
        dest="methods",
        metavar="NAME",
        default=None,
        help="method to run (repeatable); see repro.methods.available(). "
        "Honoured by experiments with pluggable method sets.",
    )
    parser.add_argument(
        "--reference",
        default=None,
        metavar="NAME",
        help="reference method errors are measured against "
        "('monte_carlo' or 'exact')",
    )
    from ..methods.executors import available_executors

    parser.add_argument(
        "--workers",
        default="auto",
        metavar="N|auto|HOST:PORT,...",
        help="fan-out width for the batch engine: an integer, 'auto' "
        "(default; cpu count for local executors — on a 1-CPU host "
        "that is the serial inline path — or the fleet size for "
        "--executor remote), or a comma-separated list of "
        "repro-worker addresses (implies --executor remote)",
    )
    parser.add_argument(
        "--executor",
        choices=available_executors(),
        default=None,
        help="fan-out backend from the executor registry: 'thread' "
        "(default), 'process' (single-host true parallelism), or "
        "'remote' (TCP repro-worker fleet; pass the worker addresses "
        "via --workers — an address list alone implies remote). "
        "Numbers are identical across backends at fixed --mc-chunks",
    )
    parser.add_argument(
        "--kernel",
        choices=("numpy", "numba", "legacy"),
        default="numpy",
        help="Monte-Carlo sampling kernel: 'numpy' (default) runs "
        "inverse-method draws against compiled, fingerprint-cached "
        "intensity plans with batched chunk dispatch; 'numba' JIT-"
        "compiles the hot invert loop when numba is installed (fails "
        "loudly otherwise); 'legacy' keeps the original per-chunk "
        "object-graph sampler as a benchmark/debug axis. All three "
        "produce bit-identical results and share cache entries",
    )
    parser.add_argument(
        "--mc-chunks",
        type=int,
        default=None,
        metavar="K",
        help="split each Monte-Carlo estimate into K seeded chunks "
        "(the unit of both process fan-out and adaptive stopping; "
        "default: 1, or 16 when --target-stderr is set — the rule can "
        "only stop at chunk boundaries)",
    )
    parser.add_argument(
        "--target-stderr",
        type=float,
        default=None,
        metavar="REL",
        help="adaptive precision: schedule Monte-Carlo chunks only "
        "until the estimate's relative standard error is <= REL "
        "(e.g. 0.01 for 1%%); --trials is the budget and --mc-chunks "
        "the stopping granularity. Recorded trial counts and achieved "
        "stderr land in the --json artifact.",
    )
    parser.add_argument(
        "--shard",
        type=parse_shard,
        default=None,
        metavar="I/N",
        help="evaluate only this machine's deterministic share of each "
        "sweep (honoured by the sweep experiments: fig5, fig6a, fig6b, "
        "sec5.2, sec5.4); merge the per-shard --json artifacts with "
        "'repro-experiments merge'. fig6b splits its computation but "
        "its two-pass artifact is not merge-able (merge fails loudly).",
    )
    parser.add_argument(
        "--pipeline-methods",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="submit method estimates to the worker pool the moment "
        "each point's reference finalizes instead of running them in a "
        "post-reference phase (results bit-identical either way; "
        "--no-pipeline-methods restores the phased schedule)",
    )
    parser.add_argument(
        "--reallocate-budget",
        action="store_true",
        help="return the trial budget of chunks cancelled by early "
        "stops to a shared ledger and re-grant it to the "
        "least-converged points that exhausted theirs (needs "
        "--target-stderr to have any effect; deterministic across "
        "--workers/--executor)",
    )
    parser.add_argument(
        "--budget-ledger",
        metavar="RUN_ID",
        default=None,
        help="coordinate trial budget across co-running shards through "
        "an append-only ledger file in the shared --cache-dir: every "
        "shard of one fleet passes the same RUN_ID (plus --shard i/N, "
        "--target-stderr and --reallocate-budget) and budget freed by "
        "any shard's early-stopping points reaches the fleet's "
        "least-converged point. Honoured by the adaptive Monte-Carlo "
        "sweeps (fig5, fig6a, fig6b, sec5.4); merged results are "
        "deterministic given the ledger and tagged +xshard so merge "
        "only combines ledger-coordinated shards with each other.",
    )
    parser.add_argument(
        "--ledger-replay",
        action="store_true",
        help="replay a completed --budget-ledger run instead of "
        "coordinating live: recorded rounds drive the identical grant "
        "schedule with no waiting, reproducing each shard's live "
        "results bit-for-bit (fails loudly on any divergence)",
    )
    parser.add_argument(
        "--ledger-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="rendezvous patience for --budget-ledger fleets (default "
        "600): a shard's first fleet barrier waits out its slowest "
        "sibling's entire initial sweep, so paper-scale fleets need "
        "more",
    )
    parser.add_argument(
        "--join",
        action="store_true",
        help="join an already-running --budget-ledger fleet by taking "
        "over this --shard slot mid-run (after its member crashed or "
        "left): already-sealed rounds verify like a replay, then this "
        "member goes live at the first unsealed round. Joining a "
        "finished run is refused loudly.",
    )
    parser.add_argument(
        "--leave-after",
        type=int,
        default=None,
        metavar="N",
        help="voluntarily depart the --budget-ledger fleet before "
        "publishing round N (0 = before the first fleet barrier), "
        "recording a shard-depart so survivors adopt this slot's open "
        "points — the chaos-testing knob behind the elastic-fleet "
        "suite; exits with status 0 and no artifact",
    )
    parser.add_argument(
        "--ledger-lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="declare a blocked --budget-ledger sibling departed after "
        "this many seconds without any new ledger record from it, and "
        "adopt its slot (heartbeat records keep healthy-but-slow "
        "members alive); without a lease a lost member times out the "
        "whole fleet",
    )
    parser.add_argument(
        "--ledger-heartbeat",
        type=float,
        default=None,
        metavar="SECONDS",
        help="liveness heartbeat period for --budget-ledger members "
        "(default: lease/4 when --ledger-lease is set); beats are "
        "monotone counters, never clock values",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream per-point progress lines to stderr as trial "
        "chunks merge",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="content-addressed on-disk estimate cache; warm reruns "
        "skip re-estimation (entries invalidate automatically when a "
        "profile, rate, or MC configuration changes). Defaults to "
        "$REPRO_CACHE_DIR when set — the same resolution rule "
        "repro-serve uses",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the run's machine-readable ResultSet as JSON "
        "(loadable with repro.methods.ResultSet.from_json)",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also write results as a markdown report",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.artifacts and args.artifacts[0] == "merge":
        args.artifacts = args.artifacts[1:]
        return run_merge(args)

    experiments = all_experiments()

    if args.list or (not args.artifacts and not args.all):
        print("available experiments:")
        for artifact, experiment in sorted(experiments.items()):
            print(f"  {artifact:24s} {experiment.title}")
        return 0

    # Adaptive stopping happens at chunk boundaries, so --target-stderr
    # with a single monolithic chunk could never stop early; give it a
    # useful default granularity unless the user chose one.
    if args.mc_chunks is None:
        args.mc_chunks = 16 if args.target_stderr is not None else 1
        if args.target_stderr is not None:
            print(
                "note: --target-stderr without --mc-chunks; using 16 "
                "chunks as the stopping granularity",
                file=sys.stderr,
            )

    if args.reallocate_budget and args.target_stderr is None:
        print(
            "note: --reallocate-budget without --target-stderr is a "
            "no-op (no stopping rule ever frees budget)",
            file=sys.stderr,
        )

    if args.ledger_replay and not args.budget_ledger:
        print(
            "--ledger-replay needs --budget-ledger RUN_ID (which "
            "recorded fleet should be replayed?)",
            file=sys.stderr,
        )
        return 2
    if args.budget_ledger:
        missing = [
            flag
            for flag, value in (
                ("--shard i/N", args.shard),
                ("--cache-dir", args.cache_dir),
                ("--target-stderr", args.target_stderr),
            )
            if value is None
        ]
        if missing:
            print(
                f"--budget-ledger needs {', '.join(missing)}: the "
                "ledger coordinates adaptive co-running shards through "
                "the shared cache directory",
                file=sys.stderr,
            )
            return 2
        if not args.reallocate_budget:
            print(
                "note: --budget-ledger implies --reallocate-budget",
                file=sys.stderr,
            )
            args.reallocate_budget = True
    for flag, value in (
        ("--join", args.join or None),
        ("--leave-after", args.leave_after),
        ("--ledger-lease", args.ledger_lease),
        ("--ledger-heartbeat", args.ledger_heartbeat),
    ):
        if value is not None and not args.budget_ledger:
            print(
                f"{flag} needs --budget-ledger RUN_ID: elastic "
                "membership is a property of a ledger fleet",
                file=sys.stderr,
            )
            return 2
    if args.join and args.ledger_replay:
        print(
            "--join and --ledger-replay are mutually exclusive: one "
            "joins a live fleet, the other reproduces a finished one",
            file=sys.stderr,
        )
        return 2

    from ..errors import ConfigurationError
    from ..methods.executors import executor_from_cli, parse_workers

    try:
        executor, workers = executor_from_cli(
            args.executor, parse_workers(args.workers)
        )
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 2

    run_kwargs: dict = {
        "trials": args.trials,
        "workers": workers,
        "executor": executor,
        "cache_dir": args.cache_dir,
        "mc_chunks": args.mc_chunks,
        "target_stderr": args.target_stderr,
        "kernel": args.kernel,
        "shard": args.shard,
        "pipeline_methods": args.pipeline_methods,
        "reallocate_budget": args.reallocate_budget,
        "budget_ledger": args.budget_ledger,
        "ledger_replay": args.ledger_replay,
        "ledger_timeout": args.ledger_timeout,
        "ledger_opts": {
            "join": args.join,
            "lease": args.ledger_lease,
            "heartbeat": args.ledger_heartbeat,
            "leave_after": args.leave_after,
        },
    }
    if args.progress:
        run_kwargs["progress"] = ProgressReporter()
    if args.methods:
        run_kwargs["methods"] = tuple(args.methods)
    if args.reference:
        run_kwargs["reference"] = args.reference

    selected = (
        sorted(experiments) if args.all else args.artifacts
    )
    sections = []
    merged_set = None
    for artifact in selected:
        experiment = get_experiment(artifact)
        # repro: allow[D101] console elapsed-time display only; the
        # experiment's numbers come from experiment.run alone
        started = time.perf_counter()
        from ..methods import ShardDeparted

        try:
            result = experiment.run(**run_kwargs)
        except ShardDeparted as departed:
            # A voluntary --leave-after departure is a clean exit: the
            # depart record is on the ledger and a survivor (or a
            # --join replacement) owns this slot's remaining rounds.
            print(
                f"[{artifact}] {departed} — departed cleanly, no "
                "artifact written",
                file=sys.stderr,
            )
            return 0
        # repro: allow[D101] second half of the same display timer
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{artifact}] completed in {elapsed:.1f}s")
        print()
        sections.append(result.render_markdown())
        if result.result_set is not None:
            merged_set = (
                result.result_set
                if merged_set is None
                else merged_set.merged(result.result_set)
            )

    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write("# Experiment results\n\n")
            handle.write("\n\n".join(sections))
            handle.write("\n")
        print(f"markdown report written to {args.markdown}")

    if args.json:
        if merged_set is None:
            print(
                f"no ResultSet produced by {' '.join(selected)}; "
                f"{args.json} not written"
            )
            return 1
        merged_set.to_json(args.json)
        print(f"result set written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    sys.exit(main())
