"""Command-line experiment runner (``repro-experiments``).

Usage::

    repro-experiments --list
    repro-experiments fig3 fig4
    repro-experiments --all --markdown experiments.md
    repro-experiments fig3 --json fig3.json
    repro-experiments compare --method avf_sofr --method hybrid \\
        --reference exact --json compare.json
    repro-experiments fig5 --executor process --workers 8 \\
        --mc-chunks 16 --cache-dir ~/.cache/repro

``--json`` writes the machine-readable
:class:`~repro.methods.results.ResultSet` behind the run (loadable with
``ResultSet.from_json``); ``--method``/``--reference`` select estimators
from the method registry for experiments that support pluggable method
sets (e.g. ``compare``). ``--workers``/``--executor`` fan the batch
engine out over threads or processes, ``--mc-chunks`` splits each
Monte-Carlo estimate into seeded chunks (numbers depend on the chunking,
never the worker count), and ``--cache-dir`` persists every estimate in
a content-addressed on-disk cache so repeated invocations skip
re-estimation entirely.
"""

from __future__ import annotations

import argparse
import sys
import time

from .registry import all_experiments, get_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        help="artifact ids to run (e.g. fig3 sec5.1); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="Monte-Carlo trials per estimate (default: REPRO_MC_TRIALS "
        "or 100000; the paper used 1000000)",
    )
    parser.add_argument(
        "--method",
        action="append",
        dest="methods",
        metavar="NAME",
        default=None,
        help="method to run (repeatable); see repro.methods.available(). "
        "Honoured by experiments with pluggable method sets.",
    )
    parser.add_argument(
        "--reference",
        default=None,
        metavar="NAME",
        help="reference method errors are measured against "
        "('monte_carlo' or 'exact')",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan-out width for the batch engine (default: 1, serial)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="fan-out backend: 'thread' (default) or 'process' (true "
        "parallelism; numbers identical to serial at fixed --mc-chunks)",
    )
    parser.add_argument(
        "--mc-chunks",
        type=int,
        default=1,
        metavar="K",
        help="split each Monte-Carlo estimate into K seeded chunks "
        "(enables chunk-granular process fan-out; default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="content-addressed on-disk estimate cache; warm reruns "
        "skip re-estimation (entries invalidate automatically when a "
        "profile, rate, or MC configuration changes)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the run's machine-readable ResultSet as JSON "
        "(loadable with repro.methods.ResultSet.from_json)",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also write results as a markdown report",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    experiments = all_experiments()

    if args.list or (not args.artifacts and not args.all):
        print("available experiments:")
        for artifact, experiment in sorted(experiments.items()):
            print(f"  {artifact:24s} {experiment.title}")
        return 0

    run_kwargs: dict = {
        "trials": args.trials,
        "workers": args.workers,
        "executor": args.executor,
        "cache_dir": args.cache_dir,
        "mc_chunks": args.mc_chunks,
    }
    if args.methods:
        run_kwargs["methods"] = tuple(args.methods)
    if args.reference:
        run_kwargs["reference"] = args.reference

    selected = (
        sorted(experiments) if args.all else args.artifacts
    )
    sections = []
    merged_set = None
    for artifact in selected:
        experiment = get_experiment(artifact)
        started = time.perf_counter()
        result = experiment.run(**run_kwargs)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{artifact}] completed in {elapsed:.1f}s")
        print()
        sections.append(result.render_markdown())
        if result.result_set is not None:
            merged_set = (
                result.result_set
                if merged_set is None
                else merged_set.merged(result.result_set)
            )

    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write("# Experiment results\n\n")
            handle.write("\n\n".join(sections))
            handle.write("\n")
        print(f"markdown report written to {args.markdown}")

    if args.json:
        if merged_set is None:
            print(
                f"no ResultSet produced by {' '.join(selected)}; "
                f"{args.json} not written"
            )
            return 1
        merged_set.to_json(args.json)
        print(f"result set written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    sys.exit(main())
