"""Command-line experiment runner (``repro-experiments``).

Usage::

    repro-experiments --list
    repro-experiments fig3 fig4
    repro-experiments --all --markdown experiments.md
"""

from __future__ import annotations

import argparse
import sys
import time

from .registry import all_experiments, get_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        help="artifact ids to run (e.g. fig3 sec5.1); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="Monte-Carlo trials per estimate (default: REPRO_MC_TRIALS "
        "or 100000; the paper used 1000000)",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also write results as a markdown report",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    experiments = all_experiments()

    if args.list or (not args.artifacts and not args.all):
        print("available experiments:")
        for artifact, experiment in sorted(experiments.items()):
            print(f"  {artifact:24s} {experiment.title}")
        return 0

    selected = (
        sorted(experiments) if args.all else args.artifacts
    )
    sections = []
    for artifact in selected:
        experiment = get_experiment(artifact)
        started = time.perf_counter()
        result = experiment.run(trials=args.trials)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{artifact}] completed in {elapsed:.1f}s")
        print()
        sections.append(result.render_markdown())

    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write("# Experiment results\n\n")
            handle.write("\n\n".join(sections))
            handle.write("\n")
        print(f"markdown report written to {args.markdown}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    sys.exit(main())
