"""Shared SPEC experiment setup.

Builds and caches the masking traces the Section-5 experiments consume,
and assembles the paper's systems from them:

* the **uniprocessor** system of Section 4.1/5.1 — four components
  (integer unit, FP unit, decode unit, register file) with the paper's
  absolute raw error rates;
* the **processor-level profile** of Section 4.2 — the three unit
  traces applied simultaneously, used as the per-component masking of a
  cluster node (strikes land uniformly across the units' elements).

Trace windows default to :data:`DEFAULT_INSTRUCTIONS` dynamic
instructions (override with the ``REPRO_SPEC_INSTRUCTIONS`` environment
variable). The paper simulates 1e8 instructions; shorter windows are
*conservative* for every reproduced claim — they shrink the loop length
L, which only makes the AVF+SOFR assumptions easier to satisfy, and the
Section-5 SPEC claims are "errors are negligible", which we confirm.
"""

from __future__ import annotations

import os
from functools import lru_cache

from ..core.system import Component, SystemModel
from ..masking.compose import weighted_average_profile
from ..masking.profile import PiecewiseProfile
from ..masking.trace import MaskingTrace
from ..microarch.config import MachineConfig
from ..microarch.simulator import simulate
from ..ser.rates import paper_unit_rate_per_second
from ..workloads.spec import spec_benchmark
from ..workloads.synthesis import synthesize_trace

#: Default dynamic-instruction window per benchmark.
DEFAULT_INSTRUCTIONS = int(
    os.environ.get("REPRO_SPEC_INSTRUCTIONS", "40000")
)

#: The paper's simulated window (Section 4.1): 1e8 dynamic instructions.
PAPER_INSTRUCTIONS = 100_000_000


def paper_dilation(n_instructions: int | None = None) -> float:
    """Time-dilation factor mapping our window to the paper's window.

    The AVF/SOFR validity question is controlled by the hazard mass per
    workload iteration, ``λ·V(L)``, which is linear in the loop length
    L. Our simulated windows are shorter than the paper's 1e8
    instructions (pure-Python simulation speed); dilating the masking
    profile by this factor reproduces the paper's L exactly while
    keeping the simulated utilisation statistics. Experiments state when
    they apply it.
    """
    n_instructions = n_instructions or DEFAULT_INSTRUCTIONS
    return PAPER_INSTRUCTIONS / float(n_instructions)

#: The four studied components (Section 4.1) and their trace mask names.
PAPER_COMPONENTS: tuple[str, ...] = (
    "int_unit",
    "fp_unit",
    "decode_unit",
    "register_file",
)


@lru_cache(maxsize=64)
def masking_trace_for(
    benchmark: str,
    n_instructions: int | None = None,
    seed: int = 0,
) -> MaskingTrace:
    """Simulate ``benchmark`` and return its masking trace (cached)."""
    n_instructions = n_instructions or DEFAULT_INSTRUCTIONS
    profile = spec_benchmark(benchmark)
    trace = synthesize_trace(profile, n_instructions, seed=seed)
    result = simulate(
        trace, MachineConfig.power4_like(), workload=benchmark
    )
    return result.masking_trace


def spec_uniprocessor_system(
    benchmark: str,
    n_instructions: int | None = None,
    seed: int = 0,
) -> SystemModel:
    """The Section-4.1 uniprocessor: four components, paper raw rates."""
    trace = masking_trace_for(benchmark, n_instructions, seed)
    components = [
        Component(
            name,
            paper_unit_rate_per_second(name),
            trace.profile(name),
        )
        for name in PAPER_COMPONENTS
    ]
    return SystemModel(components)


def processor_profile(
    benchmark: str,
    n_instructions: int | None = None,
    seed: int = 0,
    dilate_to_paper_window: bool = False,
) -> PiecewiseProfile:
    """Processor-level vulnerability for cluster experiments (Section 4.2).

    The paper applies the integer, FP, and decode unit traces
    "simultaneously to determine whether there is a processor-level
    failure". With a single N x S raw-error budget for the whole
    processor and no element attribution per unit, a strike lands on
    each unit's share of elements with equal probability — the
    processor's vulnerability is the equal-weight average of the three
    unit vulnerabilities.

    With ``dilate_to_paper_window`` the profile's period is stretched to
    the paper's 1e8-instruction loop (see :func:`paper_dilation`).
    """
    trace = masking_trace_for(benchmark, n_instructions, seed)
    units = ["int_unit", "fp_unit", "decode_unit"]
    profile = weighted_average_profile(
        [trace.profile(u) for u in units], [1.0, 1.0, 1.0]
    )
    if dilate_to_paper_window:
        profile = profile.dilated(paper_dilation(n_instructions))
    return profile


def clear_trace_cache() -> None:
    """Drop cached masking traces (tests use this to vary windows)."""
    masking_trace_for.cache_clear()
