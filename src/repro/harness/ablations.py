"""Ablation experiments (ours, not the paper's).

These probe the reproduction's own design choices:

* sampler equivalence — the paper-literal arrival/resampling Monte
  Carlo versus the fast inverse-hazard sampler;
* trial-count convergence — 1/sqrt(n) scaling justifying the default
  trial counts;
* exponentiality diagnostics — *why* SOFR breaks: the masked TTF's
  coefficient of variation and KS distance from exponential grow with
  the hazard mass per iteration;
* dilation sensitivity — AVF/SOFR errors depend on the workload only
  through the dimensionless hazard mass ``λ·V(L)``, which justifies the
  time-dilation bridging of simulated window lengths.
"""

from __future__ import annotations

import math
import os

import numpy as np

from ..core.avf import avf_mttf
from ..core.firstprinciples import exact_component_mttf
from ..core.montecarlo import MonteCarloConfig, sample_component_ttf
from ..core.system import Component
from ..reliability.diagnostics import exponentiality_report
from ..reliability.metrics import signed_relative_error
from ..reliability.process import FailureProcess
from ..units import SECONDS_PER_DAY
from ..workloads.longrun import day_workload
from .experiment import ExperimentResult
from .tables import Table, percent

_DEFAULT_TRIALS = int(os.environ.get("REPRO_MC_TRIALS", "100000"))


def _day_component(rate: float) -> Component:
    return Component("proc", rate, day_workload())


def run_sampler_equivalence(trials: int | None = None, **_):
    trials = trials or _DEFAULT_TRIALS
    table = Table(
        "Ablation: arrival vs inverse sampler",
        ["lambda*L", "inverse mean (d)", "arrival mean (d)",
         "difference (sigma)", "max |decile gap|"],
    )
    worst_sigma = 0.0
    for lam_l in (0.01, 0.1, 1.0, 5.0):
        rate = lam_l / SECONDS_PER_DAY
        comp = _day_component(rate)
        inv = sample_component_ttf(
            comp, MonteCarloConfig(trials=trials, seed=1)
        )
        arr = sample_component_ttf(
            comp,
            MonteCarloConfig(trials=trials, seed=2, method="arrival"),
        )
        pooled_se = math.sqrt(
            inv.var(ddof=1) / inv.size + arr.var(ddof=1) / arr.size
        )
        sigma = abs(inv.mean() - arr.mean()) / pooled_se
        worst_sigma = max(worst_sigma, sigma)
        deciles = np.linspace(0.1, 0.9, 9)
        gap = np.max(
            np.abs(
                np.quantile(inv, deciles) - np.quantile(arr, deciles)
            )
            / np.quantile(inv, deciles)
        )
        table.add_row(
            f"{lam_l:g}",
            inv.mean() / 86400.0,
            arr.mean() / 86400.0,
            f"{sigma:.2f}",
            percent(float(gap)),
        )
    return ExperimentResult(
        artifact="ablation.samplers",
        title="Arrival and inverse samplers agree",
        paper_claim="(ours) the fast inverse-hazard sampler is "
        "distribution-identical to the paper's resampling procedure.",
        tables=[table],
        headline=f"mean differences within {worst_sigma:.1f} standard "
        "errors across four hazard regimes",
    )


def run_mc_convergence(trials: int | None = None, **_):
    base_trials = trials or _DEFAULT_TRIALS
    rate = 0.5 / SECONDS_PER_DAY
    comp = _day_component(rate)
    exact = exact_component_mttf(rate, comp.profile)
    table = Table(
        "Ablation: Monte-Carlo convergence",
        ["trials", "MC MTTF (d)", "rel. deviation", "stderr/mean"],
    )
    rows = []
    for factor in (0.01, 0.1, 1.0):
        n = max(int(base_trials * factor), 100)
        samples = sample_component_ttf(
            comp, MonteCarloConfig(trials=n, seed=3)
        )
        deviation = signed_relative_error(float(samples.mean()), exact)
        rel_se = float(
            samples.std(ddof=1) / math.sqrt(n) / samples.mean()
        )
        rows.append((n, rel_se))
        table.add_row(
            n, samples.mean() / 86400.0, percent(deviation),
            percent(rel_se),
        )
    # 1/sqrt(n): se ratio between smallest and largest trial counts.
    expected_ratio = math.sqrt(rows[-1][0] / rows[0][0])
    actual_ratio = rows[0][1] / rows[-1][1]
    return ExperimentResult(
        artifact="ablation.convergence",
        title="Monte-Carlo error scales as 1/sqrt(trials)",
        paper_claim="(ours) justifies default trial counts.",
        tables=[table],
        headline=f"stderr ratio {actual_ratio:.1f} vs sqrt-law "
        f"{expected_ratio:.1f} across a {rows[-1][0] // rows[0][0]}x "
        "trial range",
    )


def run_exponentiality(trials: int | None = None, **_):
    trials = trials or _DEFAULT_TRIALS
    table = Table(
        "Ablation: masked TTF vs exponential (day workload)",
        ["lambda*L", "exact CoV", "sample CoV", "KS distance",
         "looks exponential"],
    )
    for lam_l in (1e-3, 0.1, 1.0, 10.0):
        rate = lam_l / SECONDS_PER_DAY
        comp = _day_component(rate)
        process = FailureProcess(comp.intensity)
        samples = sample_component_ttf(
            comp, MonteCarloConfig(trials=trials, seed=4)
        )
        report = exponentiality_report(samples)
        table.add_row(
            f"{lam_l:g}",
            f"{process.coefficient_of_variation():.4f}",
            f"{report.coefficient_of_variation:.4f}",
            f"{report.ks_distance:.4f}",
            report.looks_exponential,
        )
    return ExperimentResult(
        artifact="ablation.exponentiality",
        title="Masking drives the TTF away from exponential",
        paper_claim="(ours) quantifies the SOFR-assumption violation "
        "the paper identifies analytically (Section 3.2).",
        tables=[table],
        headline="CoV and KS distance grow with hazard mass per "
        "iteration; the exponentiality screen fails exactly where "
        "Figure 6 shows SOFR failing",
    )


def run_hybrid_method(**_):
    from ..core.hybrid import hybrid_system_mttf
    from ..core.sofr import avf_sofr_mttf
    from ..core.system import SystemModel

    table = Table(
        "Ablation: hybrid methodology vs AVF+SOFR vs exact",
        ["C", "mass/component", "regime", "method chosen",
         "AVF+SOFR error", "hybrid error"],
    )
    worst_hybrid = 0.0
    worst_plain = 0.0
    for count, mass in (
        (2, 1e-6), (100, 1e-4), (100, 3e-2), (5000, 3e-3), (50000, 0.1)
    ):
        profile = day_workload()
        rate = mass / profile.vulnerable_time
        from repro.core.system import Component as _Component

        system = SystemModel(
            [_Component("node", rate, profile, multiplicity=count)]
        )
        from ..core.firstprinciples import first_principles_mttf

        exact = first_principles_mttf(system).mttf_seconds
        plain = avf_sofr_mttf(system).mttf_seconds
        hybrid = hybrid_system_mttf(system)
        plain_err = signed_relative_error(plain, exact)
        hybrid_err = signed_relative_error(
            hybrid.estimate.mttf_seconds, exact
        )
        worst_hybrid = max(worst_hybrid, abs(hybrid_err))
        worst_plain = max(worst_plain, abs(plain_err))
        table.add_row(
            count,
            f"{mass:g}",
            hybrid.regime.value,
            hybrid.estimate.method,
            percent(plain_err),
            percent(hybrid_err),
        )
    return ExperimentResult(
        artifact="ablation.hybrid",
        title="A validity-aware hybrid beats blind AVF+SOFR",
        paper_claim="(ours, operationalising the paper's conclusion) a "
        "method selector keyed on the hazard mass stays accurate "
        "everywhere.",
        tables=[table],
        headline=f"hybrid worst error {worst_hybrid:.3%} vs AVF+SOFR "
        f"worst {worst_plain:.0%} across the severity sweep",
    )


def run_dilation_sensitivity(**_):
    from .spec_setup import processor_profile

    table = Table(
        "Ablation: window dilation vs hazard mass",
        ["dilation", "period (s)", "AVF", "lambda*V(L)",
         "AVF-step error"],
    )
    base = processor_profile("gzip")
    for dilation in (1.0, 10.0, 100.0, 2500.0):
        profile = base.dilated(dilation)
        # Choose the rate so the *undilated* mass would be 1e-4.
        rate = 1e-4 / base.vulnerable_time
        exact = exact_component_mttf(rate, profile)
        approx = avf_mttf(rate, profile)
        error = signed_relative_error(approx, exact)
        table.add_row(
            f"{dilation:g}x",
            profile.period,
            f"{profile.avf:.4f}",
            f"{rate * profile.vulnerable_time:.2e}",
            percent(error),
        )
    return ExperimentResult(
        artifact="ablation.dilation",
        title="AVF error tracks the dimensionless hazard mass",
        paper_claim="(ours) validates bridging simulated-window lengths "
        "by time dilation: the AVF is dilation-invariant and the error "
        "is governed by lambda*V(L).",
        tables=[table],
        headline="AVF constant under dilation; error grows exactly with "
        "the dilated hazard mass",
    )
