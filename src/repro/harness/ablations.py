"""Ablation experiments (ours, not the paper's).

These probe the reproduction's own design choices:

* sampler equivalence — the paper-literal arrival/resampling Monte
  Carlo versus the fast inverse-hazard sampler;
* trial-count convergence — 1/sqrt(n) scaling justifying the default
  trial counts;
* exponentiality diagnostics — *why* SOFR breaks: the masked TTF's
  coefficient of variation and KS distance from exponential grow with
  the hazard mass per iteration;
* dilation sensitivity — AVF/SOFR errors depend on the workload only
  through the dimensionless hazard mass ``λ·V(L)``, which justifies the
  time-dilation bridging of simulated window lengths.

Like the paper experiments, the ablations route their estimation
through :func:`repro.methods.evaluate_design_space`, emit a
serializable ``result_set``, and honour the runner's
``workers``/``executor``/``cache_dir``/``mc_chunks`` knobs. The one
exception is the exponentiality ablation, whose KS diagnostic is
sample-level by nature: it draws its samples directly (once) and
reduces both the diagnostics and its result set from them.
"""

from __future__ import annotations

import math
import os

import numpy as np

from ..core.montecarlo import (
    MonteCarloConfig,
    estimate_from_moments,
    moments_from_samples,
    sample_component_ttf,
)
from ..core.comparison import MethodComparison
from ..core.system import Component, SystemModel
from ..methods import ResultSet, evaluate_design_space
from ..reliability.diagnostics import exponentiality_report
from ..reliability.metrics import MTTFEstimate, signed_relative_error
from ..reliability.process import FailureProcess
from ..units import SECONDS_PER_DAY
from ..workloads.longrun import day_workload
from .experiment import ExperimentResult, cache_note, make_cache
from .tables import Table, percent

_DEFAULT_TRIALS = int(os.environ.get("REPRO_MC_TRIALS", "100000"))


def _day_component(rate: float) -> Component:
    return Component("proc", rate, day_workload())


def _day_system(rate: float) -> SystemModel:
    return SystemModel([_day_component(rate)])


def run_sampler_equivalence(
    trials: int | None = None,
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    mc_chunks: int = 1,
    **_,
):
    trials = trials or _DEFAULT_TRIALS
    table = Table(
        "Ablation: arrival vs inverse sampler",
        ["lambda*L", "inverse mean (d)", "arrival mean (d)",
         "difference (sigma)", "max |decile gap|"],
    )
    lam_ls = (0.01, 0.1, 1.0, 5.0)
    space = [
        (f"day/lambdaL={lam_l:g}", _day_system(lam_l / SECONDS_PER_DAY))
        for lam_l in lam_ls
    ]
    cache = make_cache(cache_dir)
    engine = dict(workers=workers, executor=executor, cache=cache)
    inverse_set = evaluate_design_space(
        space,
        methods=["first_principles"],
        reference="monte_carlo",
        mc_config=MonteCarloConfig(trials=trials, seed=1, chunks=mc_chunks),
        **engine,
    )
    arrival_set = evaluate_design_space(
        [(f"{label}/arrival", system) for label, system in space],
        methods=["first_principles"],
        reference="monte_carlo",
        mc_config=MonteCarloConfig(
            trials=trials, seed=2, method="arrival", chunks=mc_chunks
        ),
        **engine,
    )
    worst_sigma = 0.0
    deciles = np.linspace(0.1, 0.9, 9)
    for lam_l, inv_cmp, arr_cmp in zip(lam_ls, inverse_set, arrival_set):
        inv, arr = inv_cmp.reference, arr_cmp.reference
        pooled_se = math.sqrt(
            inv.std_error_seconds**2 + arr.std_error_seconds**2
        )
        sigma = abs(inv.mttf_seconds - arr.mttf_seconds) / pooled_se
        worst_sigma = max(worst_sigma, sigma)
        # Distributional check: a mean match alone would miss a sampler
        # that distorts the TTF shape, so compare the samplers'
        # quantiles on fresh same-seed draws (mean/stderr above come
        # from the cached engine estimates).
        comp = _day_component(lam_l / SECONDS_PER_DAY)
        inv_samples = sample_component_ttf(
            comp, MonteCarloConfig(trials=trials, seed=1)
        )
        arr_samples = sample_component_ttf(
            comp, MonteCarloConfig(trials=trials, seed=2, method="arrival")
        )
        gap = np.max(
            np.abs(
                np.quantile(inv_samples, deciles)
                - np.quantile(arr_samples, deciles)
            )
            / np.quantile(inv_samples, deciles)
        )
        table.add_row(
            f"{lam_l:g}",
            inv.mttf_seconds / 86400.0,
            arr.mttf_seconds / 86400.0,
            f"{sigma:.2f}",
            percent(float(gap)),
        )
    return ExperimentResult(
        artifact="ablation.samplers",
        title="Arrival and inverse samplers agree",
        paper_claim="(ours) the fast inverse-hazard sampler is "
        "distribution-identical to the paper's resampling procedure.",
        tables=[table],
        headline=f"mean differences within {worst_sigma:.1f} standard "
        "errors across four hazard regimes",
        notes=cache_note([], cache, cache_dir),
        result_set=inverse_set.merged(arrival_set),
    )


def run_mc_convergence(
    trials: int | None = None,
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    mc_chunks: int = 1,
    **_,
):
    base_trials = trials or _DEFAULT_TRIALS
    rate = 0.5 / SECONDS_PER_DAY
    system = _day_system(rate)
    table = Table(
        "Ablation: Monte-Carlo convergence",
        ["trials", "MC MTTF (d)", "rel. deviation", "stderr/mean"],
    )
    cache = make_cache(cache_dir)
    rows = []
    merged: ResultSet | None = None
    for factor in (0.01, 0.1, 1.0):
        n = max(int(base_trials * factor), 100)
        trial_set = evaluate_design_space(
            [(f"day/trials={n}", system)],
            methods=["first_principles"],
            reference="monte_carlo",
            mc_config=MonteCarloConfig(trials=n, seed=3, chunks=mc_chunks),
            workers=workers,
            executor=executor,
            cache=cache,
        )
        comparison = trial_set[0]
        mc = comparison.reference
        exact = comparison.estimates["first_principles"].mttf_seconds
        deviation = signed_relative_error(mc.mttf_seconds, exact)
        rel_se = mc.std_error_seconds / mc.mttf_seconds
        rows.append((n, rel_se))
        table.add_row(
            n, mc.mttf_seconds / 86400.0, percent(deviation),
            percent(rel_se),
        )
        merged = trial_set if merged is None else merged.merged(trial_set)
    # 1/sqrt(n): se ratio between smallest and largest trial counts.
    expected_ratio = math.sqrt(rows[-1][0] / rows[0][0])
    actual_ratio = rows[0][1] / rows[-1][1]
    return ExperimentResult(
        artifact="ablation.convergence",
        title="Monte-Carlo error scales as 1/sqrt(trials)",
        paper_claim="(ours) justifies default trial counts.",
        tables=[table],
        headline=f"stderr ratio {actual_ratio:.1f} vs sqrt-law "
        f"{expected_ratio:.1f} across a {rows[-1][0] // rows[0][0]}x "
        "trial range",
        notes=cache_note([], cache, cache_dir),
        result_set=merged,
    )


def run_exponentiality(trials: int | None = None, **_):
    trials = trials or _DEFAULT_TRIALS
    table = Table(
        "Ablation: masked TTF vs exponential (day workload)",
        ["lambda*L", "exact CoV", "sample CoV", "KS distance",
         "looks exponential"],
    )
    lam_ls = (1e-3, 0.1, 1.0, 10.0)
    # This ablation is sample-level (KS distance needs the raw TTF
    # array, which the batch engine deliberately does not keep), so the
    # samples are drawn once and *both* the diagnostics and the
    # result-set estimates are reduced from them — no second pass.
    comparisons = []
    for lam_l in lam_ls:
        rate = lam_l / SECONDS_PER_DAY
        comp = _day_component(rate)
        process = FailureProcess(comp.intensity)
        samples = sample_component_ttf(
            comp, MonteCarloConfig(trials=trials, seed=4)
        )
        report = exponentiality_report(samples)
        table.add_row(
            f"{lam_l:g}",
            f"{process.coefficient_of_variation():.4f}",
            f"{report.coefficient_of_variation:.4f}",
            f"{report.ks_distance:.4f}",
            report.looks_exponential,
        )
        comparisons.append(
            MethodComparison(
                system_label=f"day/lambdaL={lam_l:g}",
                reference=estimate_from_moments(
                    moments_from_samples(samples), "monte_carlo[inverse]"
                ),
                estimates={
                    "first_principles": MTTFEstimate(
                        mttf_seconds=process.mttf(),
                        method="first_principles",
                    )
                },
            )
        )
    return ExperimentResult(
        artifact="ablation.exponentiality",
        title="Masking drives the TTF away from exponential",
        paper_claim="(ours) quantifies the SOFR-assumption violation "
        "the paper identifies analytically (Section 3.2).",
        tables=[table],
        headline="CoV and KS distance grow with hazard mass per "
        "iteration; the exponentiality screen fails exactly where "
        "Figure 6 shows SOFR failing",
        result_set=ResultSet(
            comparisons=tuple(comparisons),
            methods=("first_principles",),
            reference_method="monte_carlo",
        ),
    )


def run_hybrid_method(
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    **_,
):
    from ..core.hybrid import hybrid_system_mttf

    table = Table(
        "Ablation: hybrid methodology vs AVF+SOFR vs exact",
        ["C", "mass/component", "regime", "method chosen",
         "AVF+SOFR error", "hybrid error"],
    )
    severities = (
        (2, 1e-6), (100, 1e-4), (100, 3e-2), (5000, 3e-3), (50000, 0.1)
    )
    profile = day_workload()
    space = []
    for count, mass in severities:
        rate = mass / profile.vulnerable_time
        space.append(
            (
                f"day/C={count}/mass={mass:g}",
                SystemModel(
                    [Component("node", rate, profile, multiplicity=count)]
                ),
            )
        )
    cache = make_cache(cache_dir)
    result_set = evaluate_design_space(
        space,
        methods=["avf_sofr", "hybrid"],
        reference="first_principles",
        workers=workers,
        executor=executor,
        cache=cache,
    )
    worst_hybrid = 0.0
    worst_plain = 0.0
    for (count, mass), (label, system), comparison in zip(
        severities, space, result_set
    ):
        regime = hybrid_system_mttf(system).regime
        plain_err = comparison.error("avf_sofr")
        hybrid_err = comparison.error("hybrid")
        worst_hybrid = max(worst_hybrid, abs(hybrid_err))
        worst_plain = max(worst_plain, abs(plain_err))
        table.add_row(
            count,
            f"{mass:g}",
            regime.value,
            comparison.estimates["hybrid"].method,
            percent(plain_err),
            percent(hybrid_err),
        )
    return ExperimentResult(
        artifact="ablation.hybrid",
        title="A validity-aware hybrid beats blind AVF+SOFR",
        paper_claim="(ours, operationalising the paper's conclusion) a "
        "method selector keyed on the hazard mass stays accurate "
        "everywhere.",
        tables=[table],
        headline=f"hybrid worst error {worst_hybrid:.3%} vs AVF+SOFR "
        f"worst {worst_plain:.0%} across the severity sweep",
        notes=cache_note([], cache, cache_dir),
        result_set=result_set,
    )


def run_dilation_sensitivity(
    workers: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    **_,
):
    from .spec_setup import processor_profile

    table = Table(
        "Ablation: window dilation vs hazard mass",
        ["dilation", "period (s)", "AVF", "lambda*V(L)",
         "AVF-step error"],
    )
    base = processor_profile("gzip")
    dilations = (1.0, 10.0, 100.0, 2500.0)
    # Choose the rate so the *undilated* mass would be 1e-4.
    rate = 1e-4 / base.vulnerable_time
    space = []
    profiles = []
    for dilation in dilations:
        profile = base.dilated(dilation)
        profiles.append(profile)
        space.append(
            (
                f"gzip/dilation={dilation:g}x",
                SystemModel([Component("gzip", rate, profile)]),
            )
        )
    cache = make_cache(cache_dir)
    result_set = evaluate_design_space(
        space,
        methods=["avf"],
        reference="first_principles",
        workers=workers,
        executor=executor,
        cache=cache,
    )
    for dilation, profile, comparison in zip(
        dilations, profiles, result_set
    ):
        error = comparison.error("avf")
        table.add_row(
            f"{dilation:g}x",
            profile.period,
            f"{profile.avf:.4f}",
            f"{rate * profile.vulnerable_time:.2e}",
            percent(error),
        )
    return ExperimentResult(
        artifact="ablation.dilation",
        title="AVF error tracks the dimensionless hazard mass",
        paper_claim="(ours) validates bridging simulated-window lengths "
        "by time dilation: the AVF is dilation-invariant and the error "
        "is governed by lambda*V(L).",
        tables=[table],
        headline="AVF constant under dilation; error grows exactly with "
        "the dilated hazard mass",
        notes=cache_note([], cache, cache_dir),
        result_set=result_set,
    )
