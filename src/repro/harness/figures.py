"""ASCII rendering of figure-style series.

The paper's figures are bar/line charts of relative error against a
swept parameter. :func:`render_series` draws a horizontal-bar chart per
series so the *shape* (growth, crossings, sign) is visible in a
terminal or a bench log.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import ConfigurationError


def render_series(
    title: str,
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 48,
    unit: str = "%",
    scale: float = 100.0,
) -> str:
    """Render one or more series as labelled horizontal bars.

    Parameters
    ----------
    title:
        Chart heading.
    x_labels:
        Label per x position (shared across series).
    series:
        Mapping series-name -> values (same length as ``x_labels``).
    width:
        Bar width in characters at the maximum magnitude.
    unit / scale:
        Values are displayed as ``value * scale`` with this unit suffix
        (defaults render ratios as percentages).
    """
    if not series:
        raise ConfigurationError("need at least one series")
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_labels)} labels"
            )
    peak = max(
        (abs(v) for values in series.values() for v in values), default=0.0
    )
    if peak <= 0:
        peak = 1.0
    label_width = max((len(x) for x in x_labels), default=1)
    lines = [title, "=" * len(title)]
    for name, values in series.items():
        lines.append(f"-- {name} --")
        for x, v in zip(x_labels, values):
            bar_len = int(round(abs(v) / peak * width))
            bar = ("#" if v >= 0 else "-") * bar_len
            lines.append(
                f"{x.rjust(label_width)} | {bar} {v * scale:.2f}{unit}"
            )
    return "\n".join(lines)
