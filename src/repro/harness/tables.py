"""Plain-text result tables.

Experiments produce :class:`Table` objects; the harness renders them as
aligned ASCII (for the console and bench logs) and as GitHub-flavoured
markdown (for EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError


class Table:
    """A small, immutable-ish result table."""

    def __init__(self, title: str, headers: Sequence[str]):
        if not headers:
            raise ConfigurationError("a table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append([_format_cell(c) for c in cells])

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """Aligned plain-text rendering."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)] if self.title else []
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def column(self, header: str) -> list[str]:
        """All cells of one column (for tests and assertions)."""
        if header not in self.headers:
            raise ConfigurationError(
                f"no column {header!r}; have {self.headers}"
            )
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def _format_cell(value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def percent(value: float) -> str:
    """Format a ratio as a signed percentage cell."""
    return f"{value:+.2%}"
