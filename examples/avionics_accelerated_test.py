"""Figure-3/5 walkthrough: high-altitude and accelerated-test regimes.

The same hardware and workload can sit on either side of the AVF
validity boundary depending only on the environment: the paper's S
factor scales the raw error rate by 1 (ground) to 5000 (accelerated
beam testing). This example sweeps the environments for a large cache
running a week-scale duty cycle and shows where the AVF step starts
lying — including the direction of the lie.

Run:  python examples/avionics_accelerated_test.py
"""

from repro import Component, SystemModel, avf_mttf, validity_report
from repro.core import exact_component_mttf, softarch_component_mttf
from repro.ser import ComponentErrorModel
from repro.ser.environment import ENVIRONMENTS
from repro.ser.rates import cache_bits
from repro.units import SECONDS_PER_DAY
from repro.workloads import week_workload


def main() -> None:
    profile = week_workload()  # busy weekdays, idle weekend
    bits = cache_bits(100.0)  # the paper's 100MB cache
    print(
        f"100MB cache ({bits:.3g} bits), week workload "
        f"(AVF = {profile.avf:.3f})"
    )
    print()
    header = (
        f"{'environment':18s} {'S':>6s} {'raw/year':>9s} "
        f"{'AVF MTTF (d)':>13s} {'exact (d)':>11s} {'SoftArch (d)':>13s} "
        f"{'AVF error':>10s}"
    )
    print(header)
    print("-" * len(header))
    for env in sorted(ENVIRONMENTS.values(), key=lambda e: e.scaling):
        model = ComponentErrorModel("cache", bits, scaling=env.scaling)
        rate = model.rate_per_second
        avf_estimate = avf_mttf(rate, profile)
        exact = exact_component_mttf(rate, profile)
        softarch = softarch_component_mttf(rate, profile)
        error = (avf_estimate - exact) / exact
        print(
            f"{env.name:18s} {env.scaling:>6g} {model.rate_per_year:>9.3g} "
            f"{avf_estimate / SECONDS_PER_DAY:>13.4g} "
            f"{exact / SECONDS_PER_DAY:>11.4g} "
            f"{softarch / SECONDS_PER_DAY:>13.4g} {error:>+10.2%}"
        )
    print()

    # The validity advisor encodes the paper's conclusions.
    space = ComponentErrorModel("cache", bits, scaling=2000.0)
    system = SystemModel(
        [Component("cache", space.rate_per_second, profile)]
    )
    print("validity report for the space environment:")
    print(validity_report(system).summary())
    print()
    print(
        "SoftArch tracks the exact MTTF in every environment — it does "
        "not rely on the uniformity assumption the AVF step needs "
        "(Section 5.4)."
    )


if __name__ == "__main__":
    main()
