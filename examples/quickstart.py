"""Quickstart: when can you trust AVF+SOFR?

Models the paper's motivating scenario in a few lines: a component that
is busy half of every 24-hour cycle, evaluated with the standard
AVF+SOFR methodology and with first principles, at a terrestrial and an
accelerated raw error rate.

Run:  python examples/quickstart.py
"""

from repro import (
    Component,
    MonteCarloConfig,
    SystemModel,
    avf_sofr_mttf,
    busy_idle_profile,
    days,
    first_principles_mttf,
    monte_carlo_mttf,
    validity_report,
)


def evaluate(label: str, rate_per_second: float) -> None:
    profile = busy_idle_profile(busy_time=days(0.5), period=days(1))
    system = SystemModel(
        [Component("server", rate_per_second, profile)]
    )
    standard = avf_sofr_mttf(system)
    exact = first_principles_mttf(system)
    monte = monte_carlo_mttf(
        system, MonteCarloConfig(trials=100_000, seed=42)
    )
    error = (
        standard.mttf_seconds - exact.mttf_seconds
    ) / exact.mttf_seconds

    print(f"=== {label} ===")
    print(f"AVF+SOFR:         {standard}")
    print(f"first principles: {exact}")
    print(f"Monte Carlo:      {monte}")
    print(f"AVF+SOFR error vs exact: {error:+.2%}")
    print(validity_report(system).summary())
    print()


def main() -> None:
    # Terrestrial: ~1 raw error/year for a 12.5MB component (N = 1e8
    # bits at the paper's 1e-8 errors/year/bit baseline).
    evaluate("terrestrial (N*S = 1e8)", 1e8 * 1e-8 / (365.25 * 86400))
    # Accelerated test / space: 2000x the baseline rate. The AVF step's
    # uniformity assumption now fails visibly (Section 3.1.2).
    evaluate("accelerated (N*S = 2e11)", 2e11 * 1e-8 / (365.25 * 86400))


if __name__ == "__main__":
    main()
