"""Quickstart: when can you trust AVF+SOFR?

Models the paper's motivating scenario in a few lines: a component that
is busy half of every 24-hour cycle, evaluated with the standard
AVF+SOFR methodology, Monte Carlo, and first principles — all through
the unified ``repro.analyze`` facade. Every method name below is a key
in the estimator registry (``repro.methods.available()``); plug in your
own with ``repro.register_method``.

Run:  python examples/quickstart.py
"""

from repro import (
    Component,
    MonteCarloConfig,
    SystemModel,
    analyze,
    busy_idle_profile,
    days,
    validity_report,
)


def evaluate(label: str, rate_per_second: float) -> None:
    profile = busy_idle_profile(busy_time=days(0.5), period=days(1))
    system = SystemModel(
        [Component("server", rate_per_second, profile)]
    )
    result = (
        analyze(system, label=label)
        .using("avf_sofr", "monte_carlo")
        .against("exact")
        .with_mc(MonteCarloConfig(trials=100_000, seed=42))
        .run()
    )
    comparison = result[0]

    print(f"=== {label} ===")
    print(f"AVF+SOFR:         {comparison.estimates['avf_sofr']}")
    print(f"first principles: {comparison.reference}")
    print(f"Monte Carlo:      {comparison.estimates['monte_carlo']}")
    print(f"AVF+SOFR error vs exact: {comparison.error('avf_sofr'):+.2%}")
    print(validity_report(system).summary())
    print()


def main() -> None:
    # Terrestrial: ~1 raw error/year for a 12.5MB component (N = 1e8
    # bits at the paper's 1e-8 errors/year/bit baseline).
    evaluate("terrestrial (N*S = 1e8)", 1e8 * 1e-8 / (365.25 * 86400))
    # Accelerated test / space: 2000x the baseline rate. The AVF step's
    # uniformity assumption now fails visibly (Section 3.1.2).
    evaluate("accelerated (N*S = 2e11)", 2e11 * 1e-8 / (365.25 * 86400))


if __name__ == "__main__":
    main()
