"""The analysis service end to end, inside one process.

Everything ``repro-serve`` does, demonstrated without leaving Python:
a :class:`~repro.service.BackgroundServer` hosts the estimator stack on
an ephemeral port, two "tenants" submit the *same* cluster sweep
concurrently (plus one deliberately different job), and the script
shows the service's three contracts in action:

1. **Request dedup** — the duplicate submission coalesces onto the
   first tenant's running job instead of re-estimating; the response
   metadata says so, and the engine runs the sweep once.
2. **Live progress** — the job's SSE feed replays the engine's
   documented ProgressEvent stream (point-start / chunk / point-done
   ...), the same events a local ``--progress`` run prints.
3. **Bit-identical results** — the ResultSet fetched over HTTP equals,
   byte for byte, what ``evaluate_design_space`` returns in-process
   for the same spec: the server adds scheduling, never numerics.

The standalone equivalent::

    repro-serve --port 8321 --cache-dir /tmp/repro-cache &
    curl -d @job.json http://127.0.0.1:8321/v1/jobs
    curl http://127.0.0.1:8321/v1/jobs/job-1/events   # SSE

Run:  python examples/analysis_server.py
"""

import json
import threading

from repro import Component, MonteCarloConfig, StoppingRule, SystemModel
from repro.service import BackgroundServer, JobSpec, ServiceClient
from repro.units import SECONDS_PER_DAY
from repro.workloads import day_workload

#: ~2 raw errors/day/node on the diurnal workload.
RATE_PER_SECOND = 2.0 / SECONDS_PER_DAY

CLUSTER_SIZES = (8, 100, 1000)

MC = MonteCarloConfig(
    trials=8_000,
    seed=5,
    chunks=8,
    stopping=StoppingRule(target_rel_stderr=0.05),
)


def build_spec() -> JobSpec:
    profile = day_workload()
    space = tuple(
        (
            f"C={size}",
            SystemModel(
                [
                    Component(
                        "node", RATE_PER_SECOND, profile,
                        multiplicity=size,
                    )
                ]
            ),
        )
        for size in CLUSTER_SIZES
    )
    return JobSpec(space=space, methods=("sofr_only",), mc=MC)


def main() -> None:
    spec = build_spec()
    print(f"job fingerprint: {spec.content_fingerprint[:16]}...")
    print(f"admission cost:  {spec.trial_cost()} trials")

    with BackgroundServer(workers=2) as server:
        print(f"analysis server listening on {server.address}\n")
        alice = ServiceClient(server.address, tenant="alice")
        bob = ServiceClient(server.address, tenant="bob")

        # Two tenants race to submit the identical sweep.
        submissions = {}

        def submit(name, client):
            submissions[name] = client.submit(spec)

        threads = [
            threading.Thread(target=submit, args=("alice", alice)),
            threading.Thread(target=submit, args=("bob", bob)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        job_ids = {s["job"]["id"] for s in submissions.values()}
        coalesced = sum(s["coalesced"] for s in submissions.values())
        assert len(job_ids) == 1 and coalesced == 1
        job_id = job_ids.pop()
        print(
            f"both tenants share {job_id}: one submission coalesced "
            "onto the other's run (request dedup)"
        )

        # Follow the engine's progress over SSE while the job runs.
        print("\nSSE progress stream:")
        shown = 0
        for name, payload in alice.events(job_id):
            if name == "done":
                print(f"  done: state={payload['state']}")
                break
            if shown < 8 or payload["kind"] != "chunk":
                detail = {
                    k: v
                    for k, v in payload.items()
                    if k not in ("label", "kind")
                }
                print(f"  {payload['label']:>7} {payload['kind']:<12}"
                      f" {detail}")
                shown += 1

        served = alice.job(job_id)["result"]

        # The same spec, run directly in this process.
        direct = spec.run()
        identical = json.dumps(served, sort_keys=True) == json.dumps(
            direct.to_dict(), sort_keys=True
        )
        assert identical
        print(
            "\nHTTP result is bit-identical to the direct "
            "in-process run"
        )

        # A genuinely different job (new seed) is NOT deduplicated.
        other = JobSpec(
            space=spec.space,
            methods=spec.methods,
            mc=MonteCarloConfig(trials=4_000, seed=6, chunks=4),
        )
        fresh = bob.submit(other)
        assert not fresh["coalesced"]
        bob.wait(fresh["job"]["id"])

        fleet = alice.fleet()
        print(
            f"\nfleet: {fleet['submissions']} submissions, "
            f"{fleet['coalesced']} coalesced, jobs={fleet['jobs']}"
        )
        print(f"estimate cache: {fleet['cache']}")
        spent = fleet["quota"]["tenants"]
        print(
            "per-tenant trial ledger: "
            + ", ".join(
                f"{tenant}={entry['spent']}"
                for tenant, entry in sorted(spent.items())
            )
        )
    print("\nserver drained and stopped cleanly")


if __name__ == "__main__":
    main()
