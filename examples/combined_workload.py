"""Section-4.2 walkthrough: the `combined` two-benchmark workload.

Builds the paper's `combined` workload — two SPEC benchmarks
concatenated into a 24-hour loop, each half cycling one benchmark's
simulator-derived masking trace — and shows how the two-time-scale
structure defeats the AVF step at high raw error rates while SoftArch
stays exact.

Run:  python examples/combined_workload.py
"""

from repro import MonteCarloConfig
from repro.core import (
    Component,
    avf_mttf,
    exact_component_mttf,
    monte_carlo_component_mttf,
    softarch_component_mttf,
)
from repro.harness.spec_setup import processor_profile
from repro.units import SECONDS_PER_DAY
from repro.workloads import combined_workload


def main() -> None:
    print("building masking traces for gzip and swim ...")
    gzip_profile = processor_profile("gzip")
    swim_profile = processor_profile("swim")
    workload = combined_workload(gzip_profile, swim_profile)
    print(
        f"combined workload: period 24h, gzip half AVF "
        f"{gzip_profile.avf:.3f}, swim half AVF {swim_profile.avf:.3f}, "
        f"overall AVF {workload.avf:.3f}"
    )
    print()
    header = (
        f"{'N x S':>8s} {'AVF MTTF (d)':>13s} {'exact (d)':>11s} "
        f"{'SoftArch (d)':>13s} {'MC (d)':>10s} {'AVF error':>10s}"
    )
    print(header)
    print("-" * len(header))
    for n_times_s in (1e8, 1e10, 1e11, 1e12):
        rate = n_times_s * 1e-8 / (8760 * 3600)  # baseline/bit/year
        avf_estimate = avf_mttf(rate, workload)
        exact = exact_component_mttf(rate, workload)
        softarch = softarch_component_mttf(rate, workload)
        monte = monte_carlo_component_mttf(
            Component("proc", rate, workload),
            MonteCarloConfig(trials=60_000, seed=11),
        )
        error = (avf_estimate - exact) / exact
        print(
            f"{n_times_s:>8.0e} {avf_estimate / SECONDS_PER_DAY:>13.4g} "
            f"{exact / SECONDS_PER_DAY:>11.4g} "
            f"{softarch / SECONDS_PER_DAY:>13.4g} "
            f"{monte.mttf_seconds / SECONDS_PER_DAY:>10.4g} "
            f"{error:>+10.2%}"
        )
    print()
    print(
        "The AVF step underestimates the MTTF here (negative error): "
        "failures concentrate in the more-vulnerable benchmark's half "
        "of the loop, while the AVF averages vulnerability across both "
        "halves — Section 5.2's 'AVF may either over- or under-estimate "
        "MTTF'. SoftArch and Monte Carlo agree with first principles "
        "throughout."
    )


if __name__ == "__main__":
    main()
