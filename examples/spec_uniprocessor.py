"""Section-5.1 walkthrough: a POWER4-like core running SPEC-like code.

Synthesizes a SPEC CPU2000-style instruction trace, runs it through the
cycle-level simulator to obtain the masking trace, then estimates the
MTTF of the paper's four components (integer unit, FP unit, decode
unit, register file) with the AVF step, Monte Carlo, first principles,
and SoftArch — reproducing the paper's finding that all methods agree
for today's uniprocessors.

Run:  python examples/spec_uniprocessor.py [benchmark] [instructions]
"""

import sys

from repro import MonteCarloConfig, SECONDS_PER_YEAR
from repro.core import (
    Component,
    avf_mttf,
    exact_component_mttf,
    monte_carlo_component_mttf,
    softarch_component_mttf,
)
from repro.microarch import MachineConfig, simulate
from repro.ser import paper_unit_rate_per_second
from repro.workloads import spec_benchmark, synthesize_trace

COMPONENTS = ("int_unit", "fp_unit", "decode_unit", "register_file")


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000

    print(f"synthesizing {instructions} instructions of {benchmark!r} ...")
    trace = synthesize_trace(
        spec_benchmark(benchmark), instructions, seed=0
    )
    print("simulating on the Table-1 POWER4-like configuration ...")
    result = simulate(trace, MachineConfig.power4_like(), workload=benchmark)
    print()
    print(result.stats.summary())
    print()

    masking = result.masking_trace
    header = (
        f"{'component':15s} {'AVF':>7s} {'AVF MTTF':>12s} "
        f"{'exact MTTF':>12s} {'SoftArch':>12s} {'MC':>12s} {'err':>8s}"
    )
    print(header)
    print("-" * len(header))
    for name in COMPONENTS:
        rate = paper_unit_rate_per_second(name)
        profile = masking.profile(name)
        component = Component(name, rate, profile)
        avf_estimate = avf_mttf(rate, profile)
        exact = exact_component_mttf(rate, profile)
        softarch = softarch_component_mttf(rate, profile)
        monte = monte_carlo_component_mttf(
            component, MonteCarloConfig(trials=50_000, seed=7)
        )
        error = (avf_estimate - exact) / exact
        print(
            f"{name:15s} {profile.avf:7.4f} "
            f"{avf_estimate / SECONDS_PER_YEAR:12.4g} "
            f"{exact / SECONDS_PER_YEAR:12.4g} "
            f"{softarch / SECONDS_PER_YEAR:12.4g} "
            f"{monte.mttf_years:12.4g} {error:+8.4%}"
        )
    print()
    print(
        "All methods agree to within Monte-Carlo noise — the paper's "
        "Section 5.1 result: AVF+SOFR is sound for today's "
        "uniprocessors running SPEC-like workloads (MTTFs in years)."
    )


if __name__ == "__main__":
    main()
