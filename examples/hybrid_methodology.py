"""The paper's conclusion, operationalised: a hybrid methodology.

The paper ends by motivating "future work to determine the best
combination of methodologies". This example demonstrates the library's
hybrid estimator, which picks the cheapest method whose assumptions
hold at each configuration — the plain AVF step in the safe regime, the
first-order phase-skew correction in the caution regime, and exact
first principles where the assumptions break — and compares all three
against ground truth across the full severity sweep.

Run:  python examples/hybrid_methodology.py
"""

from repro.core import (
    Component,
    SystemModel,
    avf_sofr_mttf,
    first_principles_mttf,
    hybrid_system_mttf,
)
from repro.units import SECONDS_PER_DAY
from repro.workloads import day_workload


def main() -> None:
    profile = day_workload()
    header = (
        f"{'cluster':>8s} {'raw/node/day':>13s} {'regime':>12s} "
        f"{'method chosen':>26s} {'AVF+SOFR err':>13s} {'hybrid err':>11s}"
    )
    print(header)
    print("-" * len(header))
    for nodes, errors_per_day in (
        (2, 1e-6),
        (100, 1e-4),
        (100, 3e-3),
        (5_000, 3e-3),
        (50_000, 0.1),
    ):
        rate = errors_per_day / SECONDS_PER_DAY
        system = SystemModel(
            [Component("node", rate, profile, multiplicity=nodes)]
        )
        exact = first_principles_mttf(system).mttf_seconds
        plain = avf_sofr_mttf(system).mttf_seconds
        hybrid = hybrid_system_mttf(system)
        plain_err = (plain - exact) / exact
        hybrid_err = (hybrid.estimate.mttf_seconds - exact) / exact
        print(
            f"{nodes:>8d} {errors_per_day:>13.1e} "
            f"{hybrid.regime.value:>12s} "
            f"{hybrid.estimate.method:>26s} {plain_err:>+13.2%} "
            f"{hybrid_err:>+11.4%}"
        )
    print()
    print(
        "The hybrid estimator stays within a fraction of a percent of "
        "first principles everywhere, paying the exact-computation cost "
        "only where the AVF+SOFR assumptions actually fail — the "
        "'best combination of methodologies' the paper calls for."
    )


if __name__ == "__main__":
    main()
